//! Live schema migration: impact analysis over the dirty region.
//!
//! [`plan`] answers "what would migrating this graph from schema `old`
//! to schema `new` do?" *without* a full revalidation. The insight is
//! the same rule-dependency analysis the incremental engine applies to
//! graph deltas, turned around for *schema* deltas: a
//! [`SchemaChange`] can only flip a rule's truth at anchors whose
//! inputs mention the changed declaration. Concretely:
//!
//! * a change naming type `T` affects nodes whose label is `⊑ T` (in
//!   either schema — removal is judged by the old subtype relation,
//!   addition by the new one) and, through the edge rules, the edges
//!   incident to them;
//! * a change to a relationship field additionally affects nodes below
//!   the field's *target* base type: DS3 and DS4 anchor violations at
//!   the target — and a DS4 violation sits at a target with *no*
//!   incoming edge of the label, unreachable by edge traversal from the
//!   source side;
//! * `@key` constraints group nodes across the whole site, so the
//!   affected label set is closed under key sites: if any affected
//!   label sits below a key's site, every label below that site joins
//!   the region (to a fixpoint, since joining can reach further keys).
//!   This is what makes running DS7 [`Ds7Plan::Inline`] over the dirty
//!   scope sound — every key group that intersects the region is
//!   entirely inside it.
//!
//! The dirty region `D` (nodes with affected labels) ∪ `L` (incident
//! edges) is then validated twice through the shared rule kernels —
//! once per schema — and the multiset difference of the two runs is
//! the plan's violation preview: exact for this graph, at a cost
//! proportional to the region instead of the graph (experiment E4m).
//!
//! The same region machinery seeds the incremental engine's dual-schema
//! window ([`IncrementalEngine::begin_migration`]): the candidate
//! side's violation set is `(old violations − region-anchored) ∪
//! (region run under the candidate)`, because outside the region the
//! two schemas decide every rule identically.
//!
//! [`IncrementalEngine::begin_migration`]: crate::IncrementalEngine::begin_migration

use std::collections::BTreeSet;
use std::fmt;

use pgraph::{EdgeId, NodeId, PropertyGraph, SymbolTable};

use crate::diff::{self, Compat, SchemaChange};
use crate::pgschema::PgSchema;
use crate::report::{self, ValidationReport, Violation};
use crate::rules::partial::PartialCols;
use crate::rules::symschema::SymSchema;
use crate::rules::{self, Ds7Plan, Scope, Sink};
use crate::ValidationOptions;

/// One schema change with the node labels it can affect in this graph.
#[derive(Debug, Clone)]
pub struct ChangeImpact {
    /// The change, as reported by [`diff::diff`].
    pub change: SchemaChange,
    /// Labels present in the graph whose nodes the change can newly
    /// violate (or newly justify), sorted.
    pub affected_labels: Vec<String>,
}

/// The result of [`plan`]: per-change impact, the dirty region's size,
/// and an exact violation preview for this graph.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// Every change with its affected labels, diff order.
    pub changes: Vec<ChangeImpact>,
    /// Nodes in the dirty region (affected labels, after key closure).
    pub dirty_nodes: usize,
    /// Live edges incident to the dirty region.
    pub dirty_edges: usize,
    /// `|V| + |E|` of the graph, for comparison.
    pub elements_total: usize,
    /// Violations the new schema introduces on this graph, canonical
    /// order.
    pub added: Vec<Violation>,
    /// Violations of the old schema that the new schema resolves,
    /// canonical order.
    pub removed: Vec<Violation>,
}

impl MigrationPlan {
    /// True iff migrating introduces no violation *on this graph* —
    /// stronger than the diff's static verdict (a statically breaking
    /// change is compatible with an instance that has no affected data).
    pub fn compatible(&self) -> bool {
        self.added.is_empty()
    }

    /// Changes whose static classification is breaking.
    pub fn breaking_changes(&self) -> usize {
        self.changes
            .iter()
            .filter(|c| c.change.compat() == Compat::Breaking)
            .count()
    }

    /// Renders the plan as a JSON document, following the report JSON
    /// conventions (`pgschema migrate plan --json`, the server's
    /// `action=plan` response).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"compatible\": {}, \"dirty_nodes\": {}, \"dirty_edges\": {}, \
             \"elements_total\": {}, \"changes\": [",
            self.compatible(),
            self.dirty_nodes,
            self.dirty_edges,
            self.elements_total
        );
        for (i, c) in self.changes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let compat = match c.change.compat() {
                Compat::Compatible => "compatible",
                Compat::Breaking => "breaking",
            };
            out.push_str(&format!(
                "{{\"change\": \"{}\", \"compat\": \"{compat}\", \"affected_labels\": [",
                report::esc(&c.change.describe())
            ));
            for (j, l) in c.affected_labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", report::esc(l)));
            }
            out.push_str("]}");
        }
        out.push_str("], \"violations_added\": [");
        for (i, v) in self.added.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&report::violation_json(v));
        }
        out.push_str("], \"violations_removed\": [");
        for (i, v) in self.removed.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&report::violation_json(v));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for MigrationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.changes.is_empty() {
            writeln!(f, "schemas are equivalent; nothing to migrate")?;
            return Ok(());
        }
        writeln!(f, "{} change(s):", self.changes.len())?;
        for c in &self.changes {
            write!(f, "  {}", c.change)?;
            if c.affected_labels.is_empty() {
                writeln!(f, " — no nodes affected")?;
            } else {
                writeln!(f, " — affects label(s): {}", c.affected_labels.join(", "))?;
            }
        }
        writeln!(
            f,
            "region: {} node(s) + {} incident edge(s) of {} element(s)",
            self.dirty_nodes, self.dirty_edges, self.elements_total
        )?;
        for v in &self.added {
            writeln!(f, "  + {v}")?;
        }
        for v in &self.removed {
            writeln!(f, "  - {v}")?;
        }
        if self.compatible() {
            writeln!(
                f,
                "verdict: compatible — no new violations on this graph \
                 ({} resolved)",
                self.removed.len()
            )?;
        } else {
            writeln!(
                f,
                "verdict: BREAKING — {} new violation(s) on this graph",
                self.added.len()
            )?;
        }
        Ok(())
    }
}

/// The dirty region a schema diff maps to: nodes with affected labels
/// and the live edges incident to them.
pub(crate) struct Region {
    /// Nodes whose label is in the affected set.
    pub(crate) nodes: BTreeSet<NodeId>,
    /// Live edges with at least one endpoint in `nodes`.
    pub(crate) edges: BTreeSet<EdgeId>,
}

/// The distinct node labels present in the graph.
pub(crate) fn graph_labels(g: &PropertyGraph) -> BTreeSet<String> {
    g.nodes().map(|n| n.label().to_owned()).collect()
}

/// The named type a change hangs off.
fn change_type(c: &SchemaChange) -> &str {
    match c {
        SchemaChange::TypeAdded { name } | SchemaChange::TypeRemoved { name } => name,
        SchemaChange::FieldAdded { ty, .. }
        | SchemaChange::FieldRemoved { ty, .. }
        | SchemaChange::FieldTypeChanged { ty, .. }
        | SchemaChange::ConstraintAdded { ty, .. }
        | SchemaChange::ConstraintRemoved { ty, .. }
        | SchemaChange::KeyAdded { ty, .. }
        | SchemaChange::KeyRemoved { ty, .. }
        | SchemaChange::EdgePropChanged { ty, .. } => ty,
    }
}

/// The field a change names, when it names one.
fn change_field(c: &SchemaChange) -> Option<&str> {
    match c {
        SchemaChange::FieldAdded { field, .. }
        | SchemaChange::FieldRemoved { field, .. }
        | SchemaChange::FieldTypeChanged { field, .. }
        | SchemaChange::ConstraintAdded { field, .. }
        | SchemaChange::ConstraintRemoved { field, .. }
        | SchemaChange::EdgePropChanged { field, .. } => Some(field),
        SchemaChange::TypeAdded { .. }
        | SchemaChange::TypeRemoved { .. }
        | SchemaChange::KeyAdded { .. }
        | SchemaChange::KeyRemoved { .. } => None,
    }
}

/// Labels of `all` that are `⊑ ty_name` under `s` (no-op when the name
/// is not a type of `s`).
fn labels_under<'l>(s: &PgSchema, ty_name: &str, all: &'l BTreeSet<String>) -> Vec<&'l String> {
    let t = s.label_type(ty_name);
    all.iter()
        .filter(|l| t.is_some_and(|t| s.label_subtype(l, t)))
        .collect()
}

/// Maps each change of `sdiff` to the graph labels it can affect, and
/// returns the union closed under key sites (see module docs).
pub(crate) fn impacts(
    old: &PgSchema,
    new: &PgSchema,
    sdiff: &diff::SchemaDiff,
    all_labels: &BTreeSet<String>,
) -> (Vec<ChangeImpact>, BTreeSet<String>) {
    let mut affected: BTreeSet<String> = BTreeSet::new();
    let mut changes = Vec::with_capacity(sdiff.changes.len());
    for change in &sdiff.changes {
        let ty = change_type(change);
        let mut labels: BTreeSet<String> = BTreeSet::new();
        for s in [old, new] {
            labels.extend(labels_under(s, ty, all_labels).into_iter().cloned());
        }
        // A changed relationship field also reaches the *targets* of its
        // edges (DS3/DS4 anchor there; DS4 at targets with no incoming
        // edge at all, which edge traversal from the region would miss).
        if let Some(field) = change_field(change) {
            for s in [old, new] {
                if let Some(rel) = s.relationship(ty, field) {
                    labels.extend(
                        all_labels
                            .iter()
                            .filter(|l| s.label_subtype(l, rel.target_base))
                            .cloned(),
                    );
                }
            }
        }
        affected.extend(labels.iter().cloned());
        changes.push(ChangeImpact {
            change: change.clone(),
            affected_labels: labels.into_iter().collect(),
        });
    }
    // Key-site closure: DS7 compares all nodes below a site, so the
    // region must hold whole sites. Joining a site can put labels below
    // further sites, hence the fixpoint loop (bounded by #labels).
    let mut grew = true;
    while grew {
        grew = false;
        for s in [old, new] {
            for key in s.keys() {
                let site: Vec<&String> = all_labels
                    .iter()
                    .filter(|l| s.label_subtype(l, key.site))
                    .collect();
                if site.iter().any(|l| affected.contains(*l))
                    && !site.iter().all(|l| affected.contains(*l))
                {
                    affected.extend(site.into_iter().cloned());
                    grew = true;
                }
            }
        }
    }
    (changes, affected)
}

/// True when `c` can change the verdict of a rule that reads edges.
///
/// Attribute-level changes and `@key` changes read node properties
/// only: the rules they can flip (DS5, DS6 on attributes, SS/DS7 on
/// keys) anchor at nodes and never consult adjacency. For those, the
/// *diff* of two region runs over an edge-free subgraph is still exact —
/// every edge-reading rule computes the same answer on both sides and
/// cancels. Type-level changes and anything naming a relationship field
/// (in either schema) keep the incident edges.
pub(crate) fn change_needs_edges(old: &PgSchema, new: &PgSchema, c: &SchemaChange) -> bool {
    match c {
        SchemaChange::KeyAdded { .. } | SchemaChange::KeyRemoved { .. } => false,
        SchemaChange::TypeAdded { .. } | SchemaChange::TypeRemoved { .. } => true,
        _ => {
            let ty = change_type(c);
            let field = change_field(c).expect("field-level change names a field");
            [old, new]
                .iter()
                .any(|s| s.relationship(ty, field).is_some())
        }
    }
}

/// Materialises the dirty region: nodes with affected labels plus
/// (when `with_edges`) their incident live edges.
pub(crate) fn region_of(
    g: &PropertyGraph,
    affected: &BTreeSet<String>,
    with_edges: bool,
) -> Region {
    let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
    for n in g.nodes() {
        if affected.contains(n.label()) {
            nodes.insert(n.id);
        }
    }
    let mut edges: BTreeSet<EdgeId> = BTreeSet::new();
    if with_edges && !nodes.is_empty() {
        for e in g.edges() {
            if nodes.contains(&e.source()) || nodes.contains(&e.target()) {
                edges.insert(e.id);
            }
        }
    }
    Region { nodes, edges }
}

/// Runs the rule kernels over the region under one schema, returning
/// the canonical (sorted, deduped) violations anchored there. DS7 runs
/// inline — sound because the region holds whole key sites.
pub(crate) fn region_run(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
    region: &Region,
) -> Vec<Violation> {
    // The preview must be complete to be diffable, and metrics belong to
    // the engines, not the planner.
    let mut options = *options;
    options.max_violations = None;
    options.collect_metrics = false;
    // Region strings are interned before the schema is compiled so the
    // SymSchema's row table covers every graph-side symbol.
    let mut symbols = SymbolTable::new();
    let pc = PartialCols::build(g, &region.nodes, &region.edges, &mut symbols);
    let ss = SymSchema::build(s, &mut symbols);
    let scope = Scope::dirty(g, s, &ss, &symbols, &pc, &region.nodes);
    let mut report = ValidationReport::default();
    let mut sink = Sink::new(&mut report, false);
    rules::run(&scope, &options, &mut sink, Ds7Plan::Inline);
    sink.finish();
    let mut v = report.take_violations();
    v.sort();
    v.dedup();
    v
}

/// Splits two sorted, deduped violation slices into `(new \ old,
/// old \ new)` — the introduced and resolved violations.
pub(crate) fn diff_violations(
    old: &[Violation],
    new: &[Violation],
) -> (Vec<Violation>, Vec<Violation>) {
    let (mut i, mut j) = (0, 0);
    let (mut added, mut removed) = (Vec::new(), Vec::new());
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                removed.push(old[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(new[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&old[i..]);
    added.extend_from_slice(&new[j..]);
    (added, removed)
}

/// Computes the migration plan for taking `g` from `old` to `new`: the
/// per-change impact and an exact violation preview, at a cost
/// proportional to the dirty region rather than the graph.
pub fn plan(
    g: &PropertyGraph,
    old: &PgSchema,
    new: &PgSchema,
    options: &ValidationOptions,
) -> MigrationPlan {
    let sdiff = diff::diff(old, new);
    let all_labels = graph_labels(g);
    let (changes, affected) = impacts(old, new, &sdiff, &all_labels);
    // An edge-free region is sound here (not in the dual-schema window,
    // which needs the candidate side's *absolute* violation set): the
    // plan only reports the diff of two runs over the same subgraph, so
    // rules the change cannot touch cancel out.
    let with_edges = sdiff
        .changes
        .iter()
        .any(|c| change_needs_edges(old, new, c));
    let region = region_of(g, &affected, with_edges);
    let old_v = region_run(g, old, options, &region);
    let new_v = region_run(g, new, options, &region);
    let (added, removed) = diff_violations(&old_v, &new_v);
    MigrationPlan {
        changes,
        dirty_nodes: region.nodes.len(),
        dirty_edges: region.edges.len(),
        elements_total: g.node_count() + g.edge_count(),
        added,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, Engine};
    use pgraph::{GraphBuilder, Value};

    fn parse(sdl: &str) -> PgSchema {
        PgSchema::parse(sdl).unwrap()
    }

    const OLD: &str = r#"
        type User @key(fields: ["login"]) {
            login: String! @required
            follows: [User]
        }
        type Post {
            title: String!
            author: User! @uniqueForTarget
        }
    "#;

    fn sample() -> PropertyGraph {
        GraphBuilder::new()
            .node("u1", "User")
            .prop("u1", "login", "alice")
            .node("u2", "User")
            .prop("u2", "login", "bob")
            .node("p", "Post")
            .prop("p", "title", "hello")
            .edge("u1", "u2", "follows")
            .edge("p", "u1", "author")
            .build()
            .unwrap()
    }

    /// The plan's seeding identity: `(full_old − region) ∪ region_new`
    /// must equal a full validation under the new schema — the property
    /// the dual-schema window's fast seed relies on.
    fn assert_region_sound(g: &PropertyGraph, old: &PgSchema, new: &PgSchema) {
        let options = ValidationOptions::default();
        let sdiff = diff::diff(old, new);
        let all_labels = graph_labels(g);
        let (_, affected) = impacts(old, new, &sdiff, &all_labels);
        let region = region_of(g, &affected, true);
        let full_old = validate(g, old, &options);
        let full_new = validate(g, new, &options);
        let fresh = region_run(g, new, &options, &region);
        let mut seeded: Vec<Violation> = full_old
            .violations()
            .iter()
            .filter(|v| !anchored_in(v, &region))
            .cloned()
            .collect();
        seeded.extend(fresh);
        seeded.sort();
        seeded.dedup();
        assert_eq!(
            seeded,
            full_new.violations(),
            "region seed diverged from full revalidation"
        );
    }

    fn anchored_in(v: &Violation, region: &Region) -> bool {
        let (n, e, pair) = crate::incremental::anchors(v);
        n.is_some_and(|n| region.nodes.contains(&n))
            || e.is_some_and(|e| region.edges.contains(&e))
            || pair.is_some_and(|(a, b)| region.nodes.contains(&a) || region.nodes.contains(&b))
    }

    #[test]
    fn identical_schemas_make_an_empty_plan() {
        let old = parse(OLD);
        let new = parse(OLD);
        let g = sample();
        let p = plan(&g, &old, &new, &ValidationOptions::default());
        assert!(p.changes.is_empty());
        assert_eq!(p.dirty_nodes, 0);
        assert_eq!(p.dirty_edges, 0);
        assert!(p.compatible());
    }

    #[test]
    fn compatible_change_previews_clean() {
        let old = parse(OLD);
        // New type + new optional field: nothing existing can break.
        let new = parse(
            r#"
            type User @key(fields: ["login"]) {
                login: String! @required
                bio: String
                follows: [User]
            }
            type Post {
                title: String!
                author: User! @uniqueForTarget
            }
            type Tag { name: String! }
        "#,
        );
        let g = sample();
        let p = plan(&g, &old, &new, &ValidationOptions::default());
        assert!(!p.changes.is_empty());
        assert!(p.compatible(), "added: {:?}", p.added);
        assert!(p.removed.is_empty());
        assert_region_sound(&g, &old, &new);
    }

    #[test]
    fn attribute_only_plans_skip_incident_edges() {
        let old = parse(OLD);
        // `nick` is an attribute in both schemas, so the region carries
        // no edges — and the preview still equals the full-validation
        // diff (edge-reading rules compute identically on both sides
        // and cancel).
        let new = parse(
            r#"
            type User @key(fields: ["login"]) {
                login: String! @required
                nick: String @required
                follows: [User]
            }
            type Post {
                title: String!
                author: User! @uniqueForTarget
            }
        "#,
        );
        let g = sample();
        let options = ValidationOptions::default();
        let p = plan(&g, &old, &new, &options);
        assert!(p.dirty_nodes > 0);
        assert_eq!(p.dirty_edges, 0, "attribute-only change needs no edges");
        let full_old = validate(&g, &old, &options);
        let full_new = validate(&g, &new, &options);
        let (added, removed) = diff_violations(full_old.violations(), full_new.violations());
        assert_eq!(p.added, added);
        assert_eq!(p.removed, removed);
        assert!(!p.added.is_empty(), "a missing nick violates DS5");
    }

    #[test]
    fn key_addition_previews_the_collisions() {
        let old = parse(OLD);
        // Keying Post.title collides nothing; keying User by a constant
        // property would — instead, force a collision by keying on a
        // property both users share (none), so craft one: key on `tier`.
        let new = parse(
            r#"
            type User @key(fields: ["login"]) @key(fields: ["tier"]) {
                login: String! @required
                tier: Int
                follows: [User]
            }
            type Post {
                title: String!
                author: User! @uniqueForTarget
            }
        "#,
        );
        let mut g = sample();
        // Both users lack `tier` → tuples agree → DS7 pair.
        let p = plan(&g, &old, &new, &ValidationOptions::default());
        assert!(!p.compatible());
        assert_eq!(p.added.len(), 1);
        assert!(matches!(p.added[0], Violation::KeyViolated { .. }));
        assert_region_sound(&g, &old, &new);
        // Distinct tiers migrate cleanly.
        let ids: Vec<_> = g.node_ids().collect();
        g.set_node_property(ids[0], "tier", Value::Int(1));
        g.set_node_property(ids[1], "tier", Value::Int(2));
        let p = plan(&g, &old, &new, &ValidationOptions::default());
        assert!(p.compatible());
        assert_region_sound(&g, &old, &new);
    }

    #[test]
    fn type_removal_affects_only_its_label() {
        let old = parse(OLD);
        let new = parse(
            r#"
            type User @key(fields: ["login"]) {
                login: String! @required
                follows: [User]
            }
        "#,
        );
        let g = sample();
        let p = plan(&g, &old, &new, &ValidationOptions::default());
        assert!(!p.compatible());
        // The Post node loses justification; the author edge becomes
        // unjustified and mistyped-at-best; User nodes stay clean but
        // u1 sits in the region as the author edge's target.
        assert!(p
            .added
            .iter()
            .any(|v| matches!(v, Violation::UnjustifiedNode { .. })));
        let removed_ty = p
            .changes
            .iter()
            .find(|c| matches!(c.change, SchemaChange::TypeRemoved { .. }))
            .unwrap();
        assert_eq!(removed_ty.affected_labels, vec!["Post".to_owned()]);
        assert_region_sound(&g, &old, &new);
    }

    #[test]
    fn constraint_tightening_reaches_targets() {
        let old = parse(OLD);
        // @requiredForTarget on Post.author: every User now needs an
        // incoming author edge — u2 has none, and DS4 anchors *at u2*,
        // which no edge from a Post reaches. The field wrapper is
        // relaxed to bare `User` because DS3/DS4 bind targets via
        // `λ(v) ⊑ type(t,f)` and a bare label never sits below `User!`.
        let new = parse(
            r#"
            type User @key(fields: ["login"]) {
                login: String! @required
                follows: [User]
            }
            type Post {
                title: String!
                author: User @uniqueForTarget @requiredForTarget
            }
        "#,
        );
        let g = sample();
        let p = plan(&g, &old, &new, &ValidationOptions::default());
        assert!(!p.compatible());
        assert!(p
            .added
            .iter()
            .any(|v| matches!(v, Violation::RequiredForTargetViolated { .. })));
        assert_region_sound(&g, &old, &new);
    }

    #[test]
    fn relaxation_previews_resolved_violations() {
        // Old requires `login`; the graph is missing one → violation.
        // Dropping @required resolves it.
        let old = parse(OLD);
        let new = parse(
            r#"
            type User @key(fields: ["login"]) {
                login: String!
                follows: [User]
            }
            type Post {
                title: String!
                author: User! @uniqueForTarget
            }
        "#,
        );
        let mut g = sample();
        let u1 = g.node_ids().next().unwrap();
        g.remove_node_property(u1, "login");
        let p = plan(&g, &old, &new, &ValidationOptions::default());
        assert!(p.compatible());
        assert_eq!(p.removed.len(), 1);
        assert!(matches!(
            p.removed[0],
            Violation::RequiredPropertyMissing { .. }
        ));
        assert_region_sound(&g, &old, &new);
    }

    #[test]
    fn region_excludes_untouched_types() {
        // A third, untouched type must stay out of the region.
        let old = parse(
            r#"
            type User { login: String! }
            type Island { x: Int }
        "#,
        );
        let new = parse(
            r#"
            type User { login: String! @required }
            type Island { x: Int }
        "#,
        );
        let g = GraphBuilder::new()
            .node("u", "User")
            .prop("u", "login", "alice")
            .node("i1", "Island")
            .node("i2", "Island")
            .build()
            .unwrap();
        let p = plan(&g, &old, &new, &ValidationOptions::default());
        assert_eq!(p.dirty_nodes, 1, "only the User node is affected");
        assert_region_sound(&g, &old, &new);
    }

    #[test]
    fn plan_respects_family_selection() {
        let old = parse(OLD);
        let new = parse(
            r#"
            type User @key(fields: ["login"]) @key(fields: ["tier"]) {
                login: String! @required
                tier: Int
                follows: [User]
            }
            type Post {
                title: String!
                author: User! @uniqueForTarget
            }
        "#,
        );
        let g = sample();
        // Without the directives family, the DS7 collision is not checked.
        let weak_only = ValidationOptions::builder()
            .engine(Engine::Indexed)
            .families(true, false, true)
            .build();
        let p = plan(&g, &old, &new, &weak_only);
        assert!(p.compatible());
    }

    #[test]
    fn plan_json_is_well_formed() {
        let old = parse(OLD);
        let new = parse(
            r#"
            type User @key(fields: ["login"]) {
                login: String! @required
                follows: [User]
            }
        "#,
        );
        let g = sample();
        let p = plan(&g, &old, &new, &ValidationOptions::default());
        let json = p.to_json();
        assert!(json.starts_with("{\"compatible\": false"));
        assert!(json.contains("\"changes\": ["));
        assert!(json.contains("\"compat\": \"breaking\""));
        assert!(json.contains("\"violations_added\": [{\"rule\""));
    }
}
