//! The daemon itself: listener, worker pool, routing and request
//! logging. See the crate docs for the architecture overview and the
//! route table.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pg_schema::{validate, Engine, PgSchema, ValidationOptions};
use pg_store::{FsyncPolicy, Store};
use pgraph::json::{self, Json};

use crate::http::{self, push_json_string, ReadOutcome, Request, Response};
use crate::metrics::{Metrics, RenderGauges};
use crate::pool::BoundedQueue;
use crate::registry::{Lookup, RemoveOutcome, SessionRegistry};

/// How workers poll the shutdown flag while waiting on an idle
/// keep-alive connection, and how the accept loop sleeps when idle.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Shape of the per-request log lines (`--log-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `method=… path=… status=… micros=… engine=…` key-value text.
    #[default]
    Text,
    /// One JSON object per line.
    Json,
    /// No request logging (load-test runs).
    Off,
}

impl LogFormat {
    /// Parses the `--log-format` flag value.
    pub fn from_name(name: &str) -> Option<LogFormat> {
        match name {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            "off" => Some(LogFormat::Off),
            _ => None,
        }
    }
}

/// Daemon configuration (the `serve` subcommand's flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Accept-queue capacity; connections beyond it are shed with `503`.
    pub queue_depth: usize,
    /// Request-log shape.
    pub log_format: LogFormat,
    /// Durable session storage (`--data-dir`). `None` keeps the daemon
    /// purely in-memory, exactly as before the store existed.
    pub data_dir: Option<PathBuf>,
    /// When to fsync WAL appends (`--fsync`).
    pub fsync: FsyncPolicy,
    /// Compact the store once the live WAL exceeds this many bytes
    /// (`--compact-after-bytes`; 0 disables automatic compaction).
    pub compact_after_bytes: u64,
    /// LRU bound on live sessions (`--max-sessions`).
    pub max_sessions: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_owned(),
            threads: 8,
            queue_depth: 64,
            log_format: LogFormat::Text,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            compact_after_bytes: 8 << 20,
            max_sessions: None,
        }
    }
}

/// Shared state every worker sees.
struct Ctx {
    metrics: Metrics,
    registry: SessionRegistry,
    queue: BoundedQueue<TcpStream>,
    log_format: LogFormat,
    compact_after_bytes: u64,
}

/// A bound, not-yet-running daemon. [`bind`](Server::bind) first, read
/// [`local_addr`](Server::local_addr) (tests bind port 0), then
/// [`run`](Server::run) until the shutdown flag flips.
pub struct Server {
    listener: TcpListener,
    threads: usize,
    ctx: Ctx,
}

impl Server {
    /// Binds the listener. The listener is switched to nonblocking so
    /// the accept loop can interleave accepts with shutdown polling —
    /// glibc installs SA_RESTART handlers, so a blocking `accept(2)`
    /// would sleep straight through SIGTERM.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let registry = match &config.data_dir {
            None => SessionRegistry::in_memory(config.max_sessions),
            Some(dir) => {
                let (store, recovered) = Store::open(dir.clone(), config.fsync)?;
                let info = &recovered.info;
                if config.log_format != LogFormat::Off {
                    eprintln!(
                        "store: recovered {} session(s) from {} (snapshot generation {:?}, \
                         {} record(s) replayed{})",
                        recovered.sessions.len(),
                        dir.display(),
                        info.snapshot_generation,
                        info.records_replayed,
                        match &info.truncated {
                            Some(t) => format!(
                                ", torn tail truncated at {} offset {}",
                                t.segment.display(),
                                t.offset
                            ),
                            None => String::new(),
                        }
                    );
                }
                let options = ValidationOptions::builder().collect_metrics(true).build();
                SessionRegistry::with_store(
                    Arc::new(store),
                    recovered,
                    &options,
                    config.max_sessions,
                )?
            }
        };
        Ok(Server {
            listener,
            threads: config.threads.max(1),
            ctx: Ctx {
                metrics: Metrics::new(),
                registry,
                queue: BoundedQueue::new(config.queue_depth),
                log_format: config.log_format,
                compact_after_bytes: config.compact_after_bytes,
            },
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` becomes true, then drains: the accept
    /// loop stops, queued connections are still served, and each worker
    /// finishes its in-flight request before exiting. Returns once every
    /// worker has exited.
    pub fn run(self, shutdown: &AtomicBool) -> io::Result<()> {
        let ctx = &self.ctx;
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(move || {
                    while let Some(stream) = ctx.queue.pop() {
                        serve_connection(ctx, stream, shutdown);
                    }
                });
            }

            while !shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Err(stream) = ctx.queue.try_push(stream) {
                            shed(ctx, stream);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            // Drain: no new connections, wake idle workers, serve what
            // is queued, exit.
            ctx.queue.close();
        });
        // Under `--fsync interval|never`, acknowledged appends may still
        // sit in OS buffers — a graceful shutdown flushes them.
        self.ctx.registry.sync_store()?;
        Ok(())
    }
}

/// Answers a connection the queue has no room for: `503` with a
/// `Retry-After` hint, written from the accept thread, then close.
fn shed(ctx: &Ctx, mut stream: TcpStream) {
    ctx.metrics.record_shed();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let response =
        Response::error(503, "accept queue full, retry shortly").with_header("retry-after", "1");
    let _ = response.write_to(&mut stream, true);
    ctx.metrics.record_request("(shed)", 503, 0);
    log_request(ctx.log_format, "-", "(shed)", 503, 0, None);
}

/// One worker's keep-alive loop over a single connection.
fn serve_connection(ctx: &Ctx, mut stream: TcpStream, shutdown: &AtomicBool) {
    if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    // The read timeout is the worker's shutdown poll: an idle keep-alive
    // connection wakes every tick to check the flag.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut buf = Vec::new();
    loop {
        match http::read_request(&mut stream, &mut buf) {
            Ok(ReadOutcome::Request(request)) => {
                let started = Instant::now();
                let handled = route(ctx, &request);
                let close = request.wants_close() || shutdown.load(Ordering::Relaxed);
                let write_ok = handled.response.write_to(&mut stream, close).is_ok();
                let micros = started.elapsed().as_micros() as u64;
                ctx.metrics
                    .record_request(handled.route, handled.response.status, micros);
                log_request(
                    ctx.log_format,
                    &request.method,
                    &request.path,
                    handled.response.status,
                    micros,
                    handled.engine,
                );
                maybe_compact(ctx);
                if close || !write_ok {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::TimedOut) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let response = Response::error(400, &e.to_string());
                let _ = response.write_to(&mut stream, true);
                ctx.metrics.record_request("(bad-request)", 400, 0);
                log_request(ctx.log_format, "-", "(bad-request)", 400, 0, None);
                return;
            }
            Err(_) => return,
        }
    }
}

/// A routed response plus its labels for metrics and the request log.
struct Handled {
    route: &'static str,
    response: Response,
    engine: Option<&'static str>,
}

impl Handled {
    fn plain(route: &'static str, response: Response) -> Handled {
        Handled {
            route,
            response,
            engine: None,
        }
    }
}

fn route(ctx: &Ctx, request: &Request) -> Handled {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => Handled::plain("/healthz", Response::text(200, "ok\n")),
        ("GET", "/metrics") => Handled::plain(
            "/metrics",
            Response::text(
                200,
                ctx.metrics.render(&RenderGauges {
                    queue_depth: ctx.queue.depth(),
                    sessions_live: ctx.registry.len(),
                    sessions_recovered: ctx.registry.recovered_total(),
                    sessions_evicted: ctx.registry.evicted_total(),
                    store: ctx.registry.store().map(|s| s.stats()),
                }),
            ),
        ),
        ("POST", "/validate") => handle_validate(ctx, request),
        ("POST", "/sessions") => handle_create_session(ctx, request),
        (_, "/healthz" | "/metrics" | "/validate" | "/sessions") => Handled::plain(
            path_template(path),
            Response::error(405, "method not allowed"),
        ),
        _ => match parse_session_path(path) {
            Some((id, tail)) => route_session(ctx, request, id, tail),
            None => Handled::plain("(unknown)", Response::error(404, "no such route")),
        },
    }
}

fn path_template(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/validate" => "/validate",
        "/sessions" => "/sessions",
        _ => "(unknown)",
    }
}

/// Splits `/sessions/{id}` or `/sessions/{id}/{tail}`.
fn parse_session_path(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/sessions/")?;
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    Some((id.parse().ok()?, tail))
}

fn route_session(ctx: &Ctx, request: &Request, id: u64, tail: &str) -> Handled {
    match (request.method.as_str(), tail) {
        ("POST", "deltas") => handle_delta(ctx, request, id),
        ("GET", "report") => handle_report(ctx, id),
        ("GET", "graph") => handle_graph(ctx, id),
        ("POST", "compact") => handle_compact(ctx, id),
        ("DELETE", "") => handle_delete(ctx, id),
        ("POST" | "GET" | "DELETE", "deltas" | "report" | "graph" | "compact" | "") => {
            Handled::plain("(unknown)", Response::error(405, "method not allowed"))
        }
        _ => Handled::plain("(unknown)", Response::error(404, "no such route")),
    }
}

fn handle_delete(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}";
    let response = match ctx.registry.remove(id) {
        Ok(RemoveOutcome::Removed(wal_micros)) => {
            if let Some(micros) = wal_micros {
                ctx.metrics.record_wal_append(micros);
            }
            Response::json(200, "{\"deleted\":true}")
        }
        Ok(RemoveOutcome::Evicted) => Response::error(410, "session evicted"),
        Ok(RemoveOutcome::Missing) => Response::error(404, "no such session"),
        Err(e) => Response::error(500, &format!("wal append failed: {e}")),
    };
    Handled::plain(ROUTE, response)
}

/// Compacts the store (snapshot + drop superseded WAL segments). The
/// route is addressed to a session for symmetry with the rest of the
/// session API, but compaction covers the whole store.
fn handle_compact(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/compact";
    let response = match ctx.registry.get(id) {
        Lookup::Missing => Response::error(404, "no such session"),
        Lookup::Evicted => Response::error(410, "session evicted"),
        Lookup::Found(_) if ctx.registry.store().is_none() => {
            Response::error(409, "server is running without --data-dir")
        }
        Lookup::Found(_) => match ctx.registry.compact() {
            Ok(Some(outcome)) => Response::json(
                200,
                format!(
                    "{{\"compacted\":true,\"generation\":{},\"sessions\":{},\
                     \"segments_removed\":{},\"snapshot_bytes\":{}}}",
                    outcome.generation,
                    outcome.sessions,
                    outcome.segments_removed,
                    outcome.snapshot_bytes
                ),
            ),
            Ok(None) => Response::error(409, "compaction already in progress"),
            Err(e) => Response::error(500, &format!("compaction failed: {e}")),
        },
    };
    Handled::plain(ROUTE, response)
}

/// Compacts in the background of the request that tipped the WAL over
/// the configured size threshold (after its response has been written).
fn maybe_compact(ctx: &Ctx) {
    let Some(store) = ctx.registry.store() else {
        return;
    };
    if ctx.compact_after_bytes == 0 || store.wal_size_bytes() < ctx.compact_after_bytes {
        return;
    }
    match ctx.registry.compact() {
        Ok(Some(outcome)) => {
            if ctx.log_format != LogFormat::Off {
                eprintln!(
                    "store: auto-compacted to generation {} ({} session(s), {} segment(s) removed)",
                    outcome.generation, outcome.sessions, outcome.segments_removed
                );
            }
        }
        Ok(None) => {} // another worker is already compacting
        Err(e) => {
            if ctx.log_format != LogFormat::Off {
                eprintln!("store: auto-compaction failed: {e}");
            }
        }
    }
}

/// Decodes the `{"schema": <sdl string>, "graph": <graph document>}`
/// envelope shared by `POST /validate` and `POST /sessions`. The raw SDL
/// text rides along because durable sessions persist it verbatim.
fn parse_envelope(body: &[u8]) -> Result<(PgSchema, pgraph::PropertyGraph, String), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let sdl = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field \"schema\"".to_owned())?;
    let schema = PgSchema::parse(sdl).map_err(|e| format!("schema: {e}"))?;
    let graph_value = doc
        .get("graph")
        .ok_or_else(|| "missing field \"graph\"".to_owned())?;
    let graph = json::graph_from_value(graph_value).map_err(|e| format!("graph: {e}"))?;
    Ok((schema, graph, sdl.to_owned()))
}

fn handle_validate(ctx: &Ctx, request: &Request) -> Handled {
    let engine = match request.query_param("engine") {
        None => Engine::Indexed,
        Some(name) => match Engine::from_name(name) {
            Some(engine) => engine,
            None => {
                return Handled::plain(
                    "/validate",
                    Response::error(400, &format!("unknown engine {name:?}")),
                )
            }
        },
    };
    let (schema, graph, _sdl) = match parse_envelope(&request.body) {
        Ok(parts) => parts,
        Err(message) => return Handled::plain("/validate", Response::error(400, &message)),
    };
    let options = ValidationOptions::builder()
        .engine(engine)
        .collect_metrics(true)
        .build();
    let report = validate(&graph, &schema, &options);
    ctx.metrics.record_validation(engine, report.metrics());
    Handled {
        route: "/validate",
        response: Response::json(200, report.to_json()),
        engine: Some(engine.name()),
    }
}

fn handle_create_session(ctx: &Ctx, request: &Request) -> Handled {
    let (schema, graph, sdl) = match parse_envelope(&request.body) {
        Ok(parts) => parts,
        Err(message) => return Handled::plain("/sessions", Response::error(400, &message)),
    };
    let options = ValidationOptions::builder().collect_metrics(true).build();
    let created = match ctx.registry.create(graph, Arc::new(schema), &sdl, &options) {
        Ok(created) => created,
        Err(e) => {
            return Handled::plain(
                "/sessions",
                Response::error(500, &format!("failed to persist session: {e}")),
            )
        }
    };
    if let Some(micros) = created.wal_micros {
        ctx.metrics.record_wal_append(micros);
    }
    let report = created
        .slot
        .session
        .lock()
        .unwrap()
        .engine()
        .expect("a freshly created session is hydrated")
        .report();
    ctx.metrics
        .record_validation(Engine::Incremental, report.metrics());
    let body = format!(
        "{{\"session\":{},\"report\":{}}}",
        created.id,
        report.to_json()
    );
    Handled {
        route: "/sessions",
        response: Response::json(201, body),
        engine: Some("incremental"),
    }
}

fn handle_delta(ctx: &Ctx, request: &Request, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/deltas";
    let delta = match std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_owned())
        .and_then(|text| json::delta_from_json(text).map_err(|e| e.to_string()))
    {
        Ok(delta) => delta,
        Err(message) => return Handled::plain(ROUTE, Response::error(400, &message)),
    };
    let slot = match ctx.registry.get(id) {
        Lookup::Found(slot) => slot,
        Lookup::Evicted => return Handled::plain(ROUTE, Response::error(410, "session evicted")),
        Lookup::Missing => return Handled::plain(ROUTE, Response::error(404, "no such session")),
    };
    let mut session = slot.session.lock().unwrap();
    let applied = match session.engine() {
        Ok(engine) => engine.apply(&delta),
        Err(message) => return Handled::plain(ROUTE, Response::error(500, &message)),
    };
    // Log the delta whether or not it applied cleanly: a failed apply
    // still leaves its deterministic partial effects on the graph (the
    // engine reseeds around them), and replay reproduces exactly those.
    match ctx.registry.log_delta(id, &mut session, &delta) {
        Ok(Some(micros)) => ctx.metrics.record_wal_append(micros),
        Ok(None) => {}
        Err(e) => {
            return Handled::plain(
                ROUTE,
                Response::error(500, &format!("wal append failed: {e}")),
            )
        }
    }
    match applied {
        Ok(outcome) => {
            session.deltas_applied += 1;
            let report = session.engine().expect("session is hydrated").report();
            let deltas_applied = session.deltas_applied;
            drop(session);
            ctx.metrics
                .record_validation(Engine::Incremental, report.metrics());
            let body = format!(
                "{{\"outcome\":{{\"elements_rechecked\":{},\"elements_total\":{},\
                 \"violations_added\":{},\"violations_removed\":{}}},\
                 \"deltas_applied\":{},\"report\":{}}}",
                outcome.elements_rechecked,
                outcome.elements_total,
                outcome.violations_added,
                outcome.violations_removed,
                deltas_applied,
                report.to_json()
            );
            Handled {
                route: ROUTE,
                response: Response::json(200, body),
                engine: Some("incremental"),
            }
        }
        // The delta named elements the session's graph does not have:
        // the state is untouched (the engine reseeds), report the
        // conflict to the client.
        Err(e) => Handled::plain(ROUTE, Response::error(409, &e.to_string())),
    }
}

fn handle_report(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/report";
    match ctx.registry.get(id) {
        Lookup::Found(slot) => {
            // Recovered sessions hydrate here: their first report is a
            // full revalidation through the incremental engine's seeding
            // pass.
            let report = match slot.session.lock().unwrap().engine() {
                Ok(engine) => engine.report(),
                Err(message) => return Handled::plain(ROUTE, Response::error(500, &message)),
            };
            Handled {
                route: ROUTE,
                response: Response::json(200, report.to_json()),
                engine: Some("incremental"),
            }
        }
        Lookup::Evicted => Handled::plain(ROUTE, Response::error(410, "session evicted")),
        Lookup::Missing => Handled::plain(ROUTE, Response::error(404, "no such session")),
    }
}

fn handle_graph(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/graph";
    match ctx.registry.get(id) {
        // The graph is served without hydrating — dormant sessions keep
        // their recovery cheap until something asks for a report.
        Lookup::Found(slot) => {
            let body = json::to_json(slot.session.lock().unwrap().graph());
            Handled::plain(ROUTE, Response::json(200, body))
        }
        Lookup::Evicted => Handled::plain(ROUTE, Response::error(410, "session evicted")),
        Lookup::Missing => Handled::plain(ROUTE, Response::error(404, "no such session")),
    }
}

/// Writes the one-line request log to stderr.
fn log_request(
    format: LogFormat,
    method: &str,
    path: &str,
    status: u16,
    micros: u64,
    engine: Option<&'static str>,
) {
    let line = match format {
        LogFormat::Off => return,
        LogFormat::Text => format!(
            "method={method} path={path} status={status} micros={micros} engine={}",
            engine.unwrap_or("-")
        ),
        LogFormat::Json => {
            let mut line = String::with_capacity(96);
            line.push_str("{\"method\":");
            push_json_string(&mut line, method);
            line.push_str(",\"path\":");
            push_json_string(&mut line, path);
            line.push_str(&format!(
                ",\"status\":{status},\"micros\":{micros},\"engine\":"
            ));
            match engine {
                Some(engine) => push_json_string(&mut line, engine),
                None => line.push_str("null"),
            }
            line.push('}');
            line
        }
    };
    let stderr = io::stderr();
    let mut out = stderr.lock();
    let _ = writeln!(out, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_paths_parse() {
        assert_eq!(
            parse_session_path("/sessions/7/deltas"),
            Some((7, "deltas"))
        );
        assert_eq!(parse_session_path("/sessions/12"), Some((12, "")));
        assert_eq!(parse_session_path("/sessions/x/report"), None);
        assert_eq!(parse_session_path("/metrics"), None);
    }

    #[test]
    fn log_formats_parse() {
        assert_eq!(LogFormat::from_name("text"), Some(LogFormat::Text));
        assert_eq!(LogFormat::from_name("json"), Some(LogFormat::Json));
        assert_eq!(LogFormat::from_name("off"), Some(LogFormat::Off));
        assert_eq!(LogFormat::from_name("xml"), None);
    }
}
