//! # pg-bench — benchmark harness
//!
//! Two entry points:
//!
//! * Criterion micro-benchmarks under `benches/` (one per experiment in
//!   EXPERIMENTS.md), run via `cargo bench`;
//! * the `experiments` binary (`cargo run --release -p pg-bench --bin
//!   experiments`), which regenerates the *tables* of EXPERIMENTS.md —
//!   scaling series with fitted growth exponents, the SAT phase
//!   transition, the satisfiability verdicts for the §6.2 diagrams, and
//!   the violation-detection matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tables;

use std::time::{Duration, Instant};

/// Runs `f` `iters` times and returns the median wall-clock duration.
pub fn time_median<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0);
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// growth exponent of a scaling series.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return f64::NAN;
    }
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.max(1e-12).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Formats a duration in adaptive units for table cells.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_linear_series_is_one() {
        let pts: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fit_exponent(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponent_of_quadratic_series_is_two() {
        let pts: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 0.5 * (i * i) as f64)).collect();
        assert!((fit_exponent(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_series() {
        assert!(fit_exponent(&[]).is_nan());
        assert!(fit_exponent(&[(1.0, 1.0)]).is_nan());
    }

    #[test]
    fn median_timing_runs() {
        let d = time_median(5, || (0..1000).sum::<u64>());
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(fmt_duration(Duration::from_micros(2)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
