//! Random k-SAT generation for the phase-transition benchmark (E4).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::cnf::{Cnf, Lit};

/// Parameters of a uniform random k-SAT instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsatParams {
    /// Number of propositional variables.
    pub num_vars: usize,
    /// Number of clauses.
    pub num_clauses: usize,
    /// Literals per clause (k = 3 for the classic phase transition at
    /// clause/variable ratio ≈ 4.27).
    pub k: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl KsatParams {
    /// Convenience: 3-SAT at a given clause/variable ratio.
    pub fn three_sat(num_vars: usize, ratio: f64, seed: u64) -> Self {
        KsatParams {
            num_vars,
            num_clauses: (num_vars as f64 * ratio).round() as usize,
            k: 3,
            seed,
        }
    }
}

/// Draws a uniform random k-SAT formula: each clause picks `k` distinct
/// variables and independent random polarities.
pub fn random_ksat(params: &KsatParams) -> Cnf {
    assert!(params.k >= 1 && params.k <= params.num_vars.max(1));
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut cnf = Cnf::new(params.num_vars);
    let mut vars: Vec<usize> = (0..params.num_vars).collect();
    for _ in 0..params.num_clauses {
        vars.shuffle(&mut rng);
        let clause: Vec<Lit> = vars[..params.k]
            .iter()
            .map(|&v| {
                if rng.gen_bool(0.5) {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;

    #[test]
    fn generation_is_reproducible() {
        let p = KsatParams::three_sat(20, 4.0, 7);
        assert_eq!(random_ksat(&p), random_ksat(&p));
        let p2 = KsatParams { seed: 8, ..p };
        assert_ne!(random_ksat(&p), random_ksat(&p2));
    }

    #[test]
    fn clauses_have_k_distinct_vars() {
        let p = KsatParams {
            num_vars: 10,
            num_clauses: 50,
            k: 3,
            seed: 1,
        };
        let cnf = random_ksat(&p);
        assert_eq!(cnf.num_clauses(), 50);
        for c in cnf.clauses() {
            assert_eq!(c.len(), 3);
            let mut vars: Vec<usize> = c.iter().map(|l| l.var()).collect();
            vars.sort();
            vars.dedup();
            assert_eq!(vars.len(), 3, "duplicate variable in clause");
        }
    }

    #[test]
    fn low_ratio_instances_are_mostly_sat() {
        let mut sat = 0;
        for seed in 0..10 {
            let cnf = random_ksat(&KsatParams::three_sat(20, 1.0, seed));
            if solve(&cnf).is_some() {
                sat += 1;
            }
        }
        assert!(sat >= 9, "only {sat}/10 low-ratio instances were SAT");
    }

    #[test]
    fn high_ratio_instances_are_mostly_unsat() {
        let mut unsat = 0;
        for seed in 0..10 {
            let cnf = random_ksat(&KsatParams::three_sat(20, 8.0, seed));
            if solve(&cnf).is_none() {
                unsat += 1;
            }
        }
        assert!(
            unsat >= 9,
            "only {unsat}/10 high-ratio instances were UNSAT"
        );
    }

    #[test]
    fn ratio_controls_clause_count() {
        let p = KsatParams::three_sat(40, 4.27, 0);
        assert_eq!(p.num_clauses, 171);
    }
}
