//! Criterion benches for the front-end: SDL lexing/parsing, schema
//! building (Def. 4.1), and consistency checking (Defs. 4.3–4.5) — the
//! E8/E9 companions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_datagen::{SchemaGen, SchemaGenParams};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_sdl_parse");
    for num_types in [8usize, 32, 128] {
        let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(num_types, 5)).generate();
        group.throughput(Throughput::Bytes(sdl.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(num_types), &sdl, |b, s| {
            b.iter(|| gql_sdl::parse(s).unwrap())
        });
    }
    group.finish();
}

fn bench_build_and_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_schema_build_consistency");
    for num_types in [8usize, 32, 128] {
        let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(num_types, 5)).generate();
        let doc = gql_sdl::parse(&sdl).unwrap();
        group.bench_with_input(BenchmarkId::new("build", num_types), &doc, |b, d| {
            b.iter(|| gql_schema::build_schema(d).unwrap())
        });
        let schema = gql_schema::build_schema(&doc).unwrap();
        group.bench_with_input(
            BenchmarkId::new("consistency", num_types),
            &schema,
            |b, s| b.iter(|| gql_schema::consistency::check(s)),
        );
    }
    group.finish();
}

fn bench_print_roundtrip(c: &mut Criterion) {
    let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(32, 5)).generate();
    let doc = gql_sdl::parse(&sdl).unwrap();
    c.bench_function("E8_sdl_print", |b| b.iter(|| gql_sdl::print_document(&doc)));
}

/// E5f: the same bilingual schema compiled to a `PgSchema` through each
/// frontend. The corpus generator emits SDL inside the PG-Schema
/// fragment, so the PG-Schema input is its exact rendering and both
/// paths produce the same schema.
fn bench_second_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5f_frontend_compile");
    for seed in [1u64, 7, 42] {
        let sdl = pg_pgschema::corpus::corpus_sdl(seed);
        let doc = gql_sdl::parse(&sdl).unwrap();
        let pgs =
            pg_pgschema::print_pgschema(&doc, "Corpus", pg_pgschema::TypeMode::Strict).unwrap();
        group.throughput(Throughput::Bytes(sdl.len() as u64));
        group.bench_with_input(BenchmarkId::new("sdl", seed), &sdl, |b, s| {
            b.iter(|| pg_schema::PgSchema::parse(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pgschema", seed), &pgs, |b, s| {
            b.iter(|| pg_pgschema::compile(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("translate", seed), &doc, |b, d| {
            b.iter(|| {
                pg_pgschema::print_pgschema(d, "Corpus", pg_pgschema::TypeMode::Strict).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_build_and_consistency,
    bench_print_roundtrip,
    bench_second_frontend
);
criterion_main!(benches);
