//! Emitting a built [`Schema`] back as an SDL document.
//!
//! [`schema_to_document`] reconstructs an `ast::Document` from the formal
//! model — the canonical normalised form of a schema: built-in scalars
//! and directive declarations are omitted, definitions appear in intern
//! order, ignored constructs (input types, schema blocks) are gone.
//! Rebuilding the emitted document yields an equal [`Schema`]
//! (round-trip tested), which makes the emitter a normaliser:
//! `parse → build → emit → print` is a canonical form for SDL text.

use gql_sdl::ast;
use gql_sdl::{Pos, Span};
use pgraph::Value;

use crate::model::*;
use crate::wrap::Wrap;

fn span() -> Span {
    Span::at(Pos::start())
}

/// Reconstructs the SDL document of a schema (see module docs).
pub fn schema_to_document(schema: &Schema) -> ast::Document {
    let mut definitions = Vec::new();
    for id in schema.type_ids() {
        let info = schema.type_info(id);
        // Skip built-in scalars.
        if BuiltinScalar::ALL.iter().any(|b| b.name() == info.name) {
            continue;
        }
        let def = match &info.kind {
            TypeKind::Scalar(ScalarInfo::Builtin(_)) => continue,
            TypeKind::Scalar(ScalarInfo::Custom) => ast::TypeDef::Scalar(ast::ScalarTypeDef {
                description: None,
                name: info.name.clone(),
                directives: emit_directives(&info.directives),
                span: span(),
            }),
            TypeKind::Scalar(ScalarInfo::Enum(values)) => ast::TypeDef::Enum(ast::EnumTypeDef {
                description: None,
                name: info.name.clone(),
                directives: emit_directives(&info.directives),
                values: values
                    .iter()
                    .map(|v| ast::EnumValueDef {
                        description: None,
                        name: v.clone(),
                        directives: Vec::new(),
                    })
                    .collect(),
                span: span(),
            }),
            TypeKind::Object(obj) => ast::TypeDef::Object(ast::ObjectTypeDef {
                description: None,
                name: info.name.clone(),
                implements: obj
                    .implements
                    .iter()
                    .map(|&t| schema.type_name(t).to_owned())
                    .collect(),
                directives: emit_directives(&info.directives),
                fields: emit_fields(schema, &obj.fields),
                span: span(),
            }),
            TypeKind::Interface(iface) => ast::TypeDef::Interface(ast::InterfaceTypeDef {
                description: None,
                name: info.name.clone(),
                directives: emit_directives(&info.directives),
                fields: emit_fields(schema, &iface.fields),
                span: span(),
            }),
            TypeKind::Union(members) => ast::TypeDef::Union(ast::UnionTypeDef {
                description: None,
                name: info.name.clone(),
                directives: emit_directives(&info.directives),
                members: members
                    .iter()
                    .map(|&t| schema.type_name(t).to_owned())
                    .collect(),
                span: span(),
            }),
        };
        definitions.push(ast::Definition::Type(def));
    }
    ast::Document { definitions }
}

fn emit_fields(schema: &Schema, fields: &[FieldInfo]) -> Vec<ast::FieldDef> {
    fields
        .iter()
        .map(|f| ast::FieldDef {
            description: None,
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| ast::InputValueDef {
                    description: None,
                    name: a.name.clone(),
                    ty: emit_type(schema, &a.ty),
                    default: a.default.as_ref().map(value_to_const),
                    directives: emit_directives(&a.directives),
                    span: span(),
                })
                .collect(),
            ty: emit_type(schema, &f.ty),
            directives: emit_directives(&f.directives),
            span: span(),
        })
        .collect()
}

fn emit_type(schema: &Schema, ty: &crate::WrappedType) -> ast::Type {
    let named = ast::Type::Named(schema.type_name(ty.base).to_owned());
    match ty.wrap {
        Wrap::Bare => named,
        Wrap::NonNull => ast::Type::NonNull(Box::new(named)),
        Wrap::List {
            inner_non_null,
            outer_non_null,
        } => {
            let inner = if inner_non_null {
                ast::Type::NonNull(Box::new(named))
            } else {
                named
            };
            let list = ast::Type::List(Box::new(inner));
            if outer_non_null {
                ast::Type::NonNull(Box::new(list))
            } else {
                list
            }
        }
    }
}

fn emit_directives(directives: &[AppliedDirective]) -> Vec<ast::DirectiveUse> {
    directives
        .iter()
        .map(|d| ast::DirectiveUse {
            name: d.name.clone(),
            args: d
                .args
                .iter()
                .map(|(k, v)| (k.clone(), value_to_const(v)))
                .collect(),
            span: span(),
        })
        .collect()
}

fn value_to_const(v: &Value) -> ast::ConstValue {
    match v {
        Value::Int(i) => ast::ConstValue::Int(*i),
        Value::Float(f) => ast::ConstValue::Float(*f),
        Value::String(s) => ast::ConstValue::String(s.clone()),
        Value::Bool(b) => ast::ConstValue::Bool(*b),
        Value::Id(s) => ast::ConstValue::String(s.clone()),
        Value::Enum(n) => ast::ConstValue::Enum(n.clone()),
        Value::List(items) => ast::ConstValue::List(items.iter().map(value_to_const).collect()),
        Value::Null => ast::ConstValue::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_schema;

    fn roundtrip(src: &str) -> (Schema, Schema) {
        let original = build_schema(&gql_sdl::parse(src).unwrap()).unwrap();
        let emitted = gql_sdl::print_document(&schema_to_document(&original));
        let rebuilt = build_schema(&gql_sdl::parse(&emitted).unwrap())
            .unwrap_or_else(|e| panic!("emitted SDL does not rebuild: {e:?}\n{emitted}"));
        (original, rebuilt)
    }

    #[test]
    fn roundtrip_preserves_the_schema() {
        let (a, b) = roundtrip(
            r#"
            type UserSession {
                id: ID! @required
                user(certainty: Float! comment: String = "n/a"): User! @required
            }
            type User @key(fields: ["id"]) {
                id: ID! @required
                nicknames: [String!]!
            }
            scalar Time
            enum Unit { METER FEET }
            interface Named { name: String }
            union Subject = User
            "#,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn builtins_are_not_emitted() {
        let schema = build_schema(&gql_sdl::parse("type T { x: Int }").unwrap()).unwrap();
        let doc = schema_to_document(&schema);
        assert_eq!(doc.definitions.len(), 1);
        let printed = gql_sdl::print_document(&doc);
        assert!(!printed.contains("scalar Int"));
    }

    #[test]
    fn normalisation_is_idempotent() {
        let src = "type B { x: Int }\ntype A { b: [B!]! @distinct }";
        let s1 = build_schema(&gql_sdl::parse(src).unwrap()).unwrap();
        let once = gql_sdl::print_document(&schema_to_document(&s1));
        let s2 = build_schema(&gql_sdl::parse(&once).unwrap()).unwrap();
        let twice = gql_sdl::print_document(&schema_to_document(&s2));
        assert_eq!(once, twice);
    }

    #[test]
    fn interfaces_and_unions_survive() {
        let (a, b) = roundtrip(
            r#"
            interface Food { name: String! }
            type Pizza implements Food { name: String! }
            type Pasta implements Food { name: String! }
            union Meal = Pizza | Pasta
            "#,
        );
        assert_eq!(a, b);
        let meal = b.type_id("Meal").unwrap();
        assert_eq!(b.union_members(meal).len(), 2);
        let food = b.type_id("Food").unwrap();
        assert_eq!(b.implementors(food).len(), 2);
    }
}
