//! Property tests for the Property Graph substrate: JSON round-trips,
//! compaction invariants, index/scan agreement, and columnar/snapshot
//! round-trips (tombstoned id space preserved bit for bit).

use pgraph::index::GraphIndex;
use pgraph::{json, snapshot, ColumnarGraph, NodeId, PropertyGraph, Value};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[ -~]{0,10}".prop_map(Value::String),
        any::<bool>().prop_map(Value::Bool),
        "[a-z0-9-]{1,8}".prop_map(Value::Id),
        "[A-Z]{1,6}".prop_map(Value::Enum),
        Just(Value::Null),
    ];
    leaf.prop_recursive(2, 12, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

#[derive(Debug, Clone)]
struct GraphSpec {
    labels: Vec<String>,
    edges: Vec<(usize, usize, String)>,
    node_props: Vec<(usize, String, Value)>,
    edge_props: Vec<(usize, String, Value)>,
    removals: Vec<usize>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (1usize..12).prop_flat_map(|n| {
        (
            prop::collection::vec("[A-Z][a-z]{0,5}", n..=n),
            prop::collection::vec((0..n, 0..n, "[a-z]{1,6}".prop_map(String::from)), 0..20),
            prop::collection::vec((0..n, "[a-z]{1,5}".prop_map(String::from), value()), 0..10),
            prop::collection::vec(
                (0..20usize, "[a-z]{1,5}".prop_map(String::from), value()),
                0..6,
            ),
            prop::collection::vec(0..n, 0..3),
        )
            .prop_map(
                |(labels, edges, node_props, edge_props, removals)| GraphSpec {
                    labels,
                    edges,
                    node_props,
                    edge_props,
                    removals,
                },
            )
    })
}

fn build(spec: &GraphSpec) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let nodes: Vec<NodeId> = spec.labels.iter().map(|l| g.add_node(l.clone())).collect();
    let mut edges = Vec::new();
    for (s, t, label) in &spec.edges {
        edges.push(g.add_edge(nodes[*s], nodes[*t], label.clone()).unwrap());
    }
    for (n, key, v) in &spec.node_props {
        g.set_node_property(nodes[*n], key.clone(), v.clone());
    }
    for (e, key, v) in &spec.edge_props {
        if let Some(&id) = edges.get(*e) {
            g.set_edge_property(id, key.clone(), v.clone());
        }
    }
    for &r in &spec.removals {
        let _ = g.remove_node(nodes[r]);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_roundtrip_is_identity_after_compaction(spec in graph_spec()) {
        let g = build(&spec).compacted();
        let text = json::to_json(&g);
        let back = json::from_json(&text).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn compaction_preserves_counts_and_multisets(spec in graph_spec()) {
        let g = build(&spec);
        let c = g.compacted();
        prop_assert_eq!(g.node_count(), c.node_count());
        prop_assert_eq!(g.edge_count(), c.edge_count());
        let mut a: Vec<String> = g.nodes().map(|n| n.label().to_owned()).collect();
        let mut b: Vec<String> = c.nodes().map(|n| n.label().to_owned()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn index_agrees_with_scans(spec in graph_spec()) {
        let g = build(&spec);
        let ix = GraphIndex::build(&g);
        for v in g.node_ids() {
            let label = g.node_label(v).unwrap();
            prop_assert!(ix.nodes_with_label(label).contains(&v));
            // Per-label out-edge groups must partition the out-edges.
            let scan: usize = g.out_edges(v).count();
            let mut labels: Vec<String> =
                g.out_edges(v).map(|e| e.label().to_owned()).collect();
            labels.sort();
            labels.dedup();
            let grouped: usize = labels
                .iter()
                .map(|l| ix.out_edges_labelled(v, l).len())
                .sum();
            prop_assert_eq!(scan, grouped);
        }
    }

    #[test]
    fn removing_nodes_removes_incident_edges(spec in graph_spec()) {
        let g = build(&spec);
        for e in g.edges() {
            prop_assert!(g.contains_node(e.source()));
            prop_assert!(g.contains_node(e.target()));
        }
    }

    #[test]
    fn columnar_freeze_thaw_is_identity(spec in graph_spec()) {
        // Not compacted: `removals` leave tombstoned node/edge slots,
        // and the columnar form must carry them so ids keep meaning the
        // same elements after a round-trip.
        let g = build(&spec);
        let cols = ColumnarGraph::freeze(&g);
        prop_assert_eq!(cols.live_node_count(), g.node_count());
        prop_assert_eq!(cols.live_edge_count(), g.edge_count());
        let back = cols.thaw();
        prop_assert_eq!(g.node_ids().collect::<Vec<_>>(), back.node_ids().collect::<Vec<_>>());
        prop_assert_eq!(g.edge_ids().collect::<Vec<_>>(), back.edge_ids().collect::<Vec<_>>());
        prop_assert_eq!(g, back);
    }

    #[test]
    fn snapshot_bytes_roundtrip_and_are_canonical(spec in graph_spec()) {
        let g = build(&spec);
        let bytes = snapshot::graph_to_snapshot_bytes(&g);
        let view = snapshot::SnapshotView::parse(&bytes).unwrap();
        let back = view.thaw().unwrap();
        prop_assert_eq!(g.node_ids().collect::<Vec<_>>(), back.node_ids().collect::<Vec<_>>());
        prop_assert_eq!(g.edge_ids().collect::<Vec<_>>(), back.edge_ids().collect::<Vec<_>>());
        prop_assert_eq!(&g, &back);
        // Freeze→encode is deterministic: re-encoding the thawed graph
        // reproduces the file bytes exactly, so snapshots of equal
        // graphs are byte-comparable.
        prop_assert_eq!(bytes, snapshot::graph_to_snapshot_bytes(&back));
    }

    #[test]
    fn stats_totals_are_consistent(spec in graph_spec()) {
        let g = build(&spec);
        let s = pgraph::stats::GraphStats::compute(&g);
        prop_assert_eq!(s.nodes, g.node_count());
        prop_assert_eq!(s.edges, g.edge_count());
        prop_assert_eq!(s.nodes_per_label.values().sum::<usize>(), s.nodes);
        prop_assert_eq!(s.edges_per_label.values().sum::<usize>(), s.edges);
    }
}
