//! The `valuesW` semantics of wrapped scalar types (paper §4.1).
//!
//! The paper defines, for `t ∈ Scalars ∪ W_Scalars`:
//!
//! 1. `valuesW(t) = values(t) ∪ {null}` for bare scalars,
//! 2. `valuesW(t!) = valuesW(t) \ {null}`,
//! 3. `valuesW([t]) = L(valuesW(t)) ∪ {null}` — finite lists over the
//!    element space, plus null.
//!
//! [`Schema::value_conforms`] decides membership `v ∈ valuesW(t)` without
//! materialising the (infinite) sets.

use pgraph::Value;

use crate::model::{BuiltinScalar, ScalarInfo, Schema};
use crate::wrap::{Wrap, WrappedType};

impl Schema {
    /// Decides `v ∈ valuesW(ty)`.
    ///
    /// Returns `false` whenever `ty`'s base is not a scalar (the paper's
    /// `valuesW` is only defined over `Scalars ∪ W_Scalars`).
    pub fn value_conforms(&self, v: &Value, ty: &WrappedType) -> bool {
        let Some(info) = self.scalar_info(ty.base) else {
            return false;
        };
        match ty.wrap {
            Wrap::Bare => v.is_null() || scalar_value_ok(v, info),
            Wrap::NonNull => !v.is_null() && scalar_value_ok(v, info),
            Wrap::List {
                inner_non_null,
                outer_non_null,
            } => {
                if v.is_null() {
                    return !outer_non_null;
                }
                let Some(items) = v.as_list() else {
                    return false;
                };
                items.iter().all(|item| {
                    if item.is_null() {
                        !inner_non_null
                    } else {
                        scalar_value_ok(item, info)
                    }
                })
            }
        }
    }
}

/// Decides `v ∈ values(t)` for a non-null, non-list value `v` and a named
/// scalar type `t`.
fn scalar_value_ok(v: &Value, info: &ScalarInfo) -> bool {
    match info {
        ScalarInfo::Builtin(b) => match b {
            // Spec §3.5.1: Int is a signed 32-bit integer.
            BuiltinScalar::Int => v
                .as_int()
                .is_some_and(|i| i >= i32::MIN as i64 && i <= i32::MAX as i64),
            // Spec §3.5.2: Float accepts integer input (coercion).
            BuiltinScalar::Float => matches!(v, Value::Float(_) | Value::Int(_)),
            BuiltinScalar::String => matches!(v, Value::String(_)),
            BuiltinScalar::Boolean => matches!(v, Value::Bool(_)),
            // Spec §3.5.5: ID serialises as String and accepts Int input.
            BuiltinScalar::Id => matches!(v, Value::Id(_) | Value::String(_) | Value::Int(_)),
        },
        // A custom scalar's value space is opaque; any atomic value is in
        // `values(t)` (lists and null are excluded — those arise only from
        // wrapping).
        ScalarInfo::Custom => !v.is_list() && !v.is_null(),
        ScalarInfo::Enum(symbols) => match v {
            Value::Enum(s) => symbols.iter().any(|x| x == s),
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_schema;

    fn schema() -> Schema {
        build_schema(
            &gql_sdl::parse("scalar Time enum LenUnit { METER FEET } type T { f: Int }").unwrap(),
        )
        .unwrap()
    }

    fn ty(s: &Schema, name: &str, wrap: Wrap) -> WrappedType {
        WrappedType {
            base: s.type_id(name).unwrap(),
            wrap,
        }
    }

    #[test]
    fn bare_scalars_admit_null() {
        let s = schema();
        let int = ty(&s, "Int", Wrap::Bare);
        assert!(s.value_conforms(&Value::Int(5), &int));
        assert!(s.value_conforms(&Value::Null, &int));
        assert!(!s.value_conforms(&Value::from("x"), &int));
    }

    #[test]
    fn non_null_excludes_null() {
        let s = schema();
        let int_nn = ty(&s, "Int", Wrap::NonNull);
        assert!(s.value_conforms(&Value::Int(5), &int_nn));
        assert!(!s.value_conforms(&Value::Null, &int_nn));
    }

    #[test]
    fn int_is_32_bit() {
        let s = schema();
        let int_nn = ty(&s, "Int", Wrap::NonNull);
        assert!(s.value_conforms(&Value::Int(i32::MAX as i64), &int_nn));
        assert!(!s.value_conforms(&Value::Int(i32::MAX as i64 + 1), &int_nn));
        assert!(!s.value_conforms(&Value::Int(i32::MIN as i64 - 1), &int_nn));
    }

    #[test]
    fn float_coerces_int() {
        let s = schema();
        let f = ty(&s, "Float", Wrap::NonNull);
        assert!(s.value_conforms(&Value::Float(1.5), &f));
        assert!(s.value_conforms(&Value::Int(2), &f));
        assert!(!s.value_conforms(&Value::from("2"), &f));
    }

    #[test]
    fn id_accepts_id_string_and_int() {
        let s = schema();
        let id = ty(&s, "ID", Wrap::NonNull);
        assert!(s.value_conforms(&Value::Id("u1".into()), &id));
        assert!(s.value_conforms(&Value::from("u1"), &id));
        assert!(s.value_conforms(&Value::Int(9), &id));
        assert!(!s.value_conforms(&Value::Bool(true), &id));
    }

    #[test]
    fn enum_values_must_be_symbols_of_the_type() {
        let s = schema();
        let unit = ty(&s, "LenUnit", Wrap::NonNull);
        assert!(s.value_conforms(&Value::Enum("METER".into()), &unit));
        assert!(!s.value_conforms(&Value::Enum("MILE".into()), &unit));
        assert!(!s.value_conforms(&Value::from("METER"), &unit));
    }

    #[test]
    fn custom_scalars_accept_any_atomic_value() {
        let s = schema();
        let time = ty(&s, "Time", Wrap::NonNull);
        assert!(s.value_conforms(&Value::from("2019-06-30T10:00:00Z"), &time));
        assert!(s.value_conforms(&Value::Int(1561888800), &time));
        assert!(!s.value_conforms(&Value::List(vec![]), &time));
        assert!(!s.value_conforms(&Value::Null, &time));
    }

    #[test]
    fn list_wrappings_follow_values_w() {
        let s = schema();
        let list = ty(
            &s,
            "String",
            Wrap::List {
                inner_non_null: false,
                outer_non_null: false,
            },
        );
        let list_inner_nn = ty(
            &s,
            "String",
            Wrap::List {
                inner_non_null: true,
                outer_non_null: false,
            },
        );
        let list_outer_nn = ty(
            &s,
            "String",
            Wrap::List {
                inner_non_null: false,
                outer_non_null: true,
            },
        );
        let with_null = Value::List(vec![Value::from("a"), Value::Null]);
        let clean = Value::List(vec![Value::from("a"), Value::from("b")]);
        let empty = Value::List(vec![]);
        assert!(s.value_conforms(&with_null, &list));
        assert!(!s.value_conforms(&with_null, &list_inner_nn));
        assert!(s.value_conforms(&clean, &list_inner_nn));
        assert!(s.value_conforms(&empty, &list_inner_nn)); // empty list OK
        assert!(s.value_conforms(&Value::Null, &list));
        assert!(!s.value_conforms(&Value::Null, &list_outer_nn));
        // A bare scalar is not a list value.
        assert!(!s.value_conforms(&Value::from("a"), &list));
    }

    #[test]
    fn wrong_element_types_fail_in_lists() {
        let s = schema();
        let list = ty(
            &s,
            "Int",
            Wrap::List {
                inner_non_null: true,
                outer_non_null: true,
            },
        );
        assert!(s.value_conforms(&Value::from(vec![1i64, 2]), &list));
        assert!(!s.value_conforms(&Value::List(vec![Value::Int(1), Value::from("x")]), &list));
    }

    #[test]
    fn object_typed_references_never_conform() {
        let s = schema();
        let t = ty(&s, "T", Wrap::Bare);
        assert!(!s.value_conforms(&Value::Int(1), &t));
        assert!(!s.value_conforms(&Value::Null, &t));
    }
}
