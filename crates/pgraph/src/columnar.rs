//! Columnar (struct-of-arrays) graph representation with CSR adjacency.
//!
//! [`PropertyGraph`] is the *mutable* element store: a `Vec` of per-element
//! structs whose properties live in `BTreeMap<String, Value>`. That shape
//! is right for deltas but wrong for validation, where the 15 rule kernels
//! are dominated by label comparisons, property lookups and neighbourhood
//! scans — every one of which pays pointer chasing and string hashing in
//! the map-shaped form.
//!
//! [`ColumnarGraph::freeze`] converts a graph into dense parallel columns:
//!
//! * labels and property keys become [`Sym`]s in one [`SymbolTable`];
//! * property values are deduplicated into a [`ValueTable`] and referred
//!   to by `u32` value ids;
//! * per-element property lists are flattened into `(start, keys, vals)`
//!   prefix-sum columns, sorted by key symbol so lookup is a binary
//!   search over a handful of `u32`s;
//! * adjacency is CSR (compressed sparse row) in **both** directions,
//!   each row sorted by `(label, neighbour, edge id)` so "edges of `v`
//!   labelled `l`" is a subslice and parallel-edge groups are contiguous
//!   runs;
//! * a label index CSR maps each label symbol to the sorted slice of
//!   live nodes carrying it.
//!
//! Tombstoned slots keep their label and properties in the columns (the
//! id space must round-trip exactly — see [`crate::binary`]) but are
//! excluded from the CSR and label indexes. The frozen form is immutable;
//! [`ColumnarGraph::thaw`] rebuilds an identical [`PropertyGraph`].
//!
//! The columns (not the derived CSR) are also the on-disk snapshot
//! layout — see [`crate::snapshot`].

use std::collections::HashMap;

use crate::graph::{EdgeData, NodeData, PropMap};
use crate::symbols::{Sym, SymbolTable};
use crate::{binary, EdgeId, NodeId, PropertyGraph, Value};

/// Interned property values, deduplicated two ways.
///
/// *Storage identity* is bit-exact: two values share a value id iff their
/// binary encodings are identical, so NaN payloads and `-0.0` survive a
/// round-trip untouched. *Comparison identity* follows [`Value`]'s `Eq`
/// (which canonicalises floats: every NaN is equal to every NaN, `-0.0 ==
/// 0.0`): [`ValueTable::eq_rep`] maps each value id to the id of the first
/// value in its equivalence class, so kernels that ask "do these two
/// properties agree?" (DS7) compare two `u32`s.
#[derive(Debug, Clone, Default)]
pub struct ValueTable {
    exact: Vec<Value>,
    eq_rep: Vec<u32>,
    by_bytes: HashMap<Vec<u8>, u32>,
    by_eq: HashMap<Value, u32>,
    scratch: Vec<u8>,
}

impl ValueTable {
    /// Interns a value, returning its (bit-exact) value id.
    pub fn intern(&mut self, v: &Value) -> u32 {
        self.scratch.clear();
        binary::encode_value(&mut self.scratch, v);
        if let Some(&id) = self.by_bytes.get(self.scratch.as_slice()) {
            return id;
        }
        let id = self.exact.len() as u32;
        self.by_bytes.insert(self.scratch.clone(), id);
        let rep = *self.by_eq.entry(v.clone()).or_insert(id);
        self.exact.push(v.clone());
        self.eq_rep.push(rep);
        id
    }

    /// The exact stored value behind an id.
    pub fn value(&self, id: u32) -> &Value {
        &self.exact[id as usize]
    }

    /// The representative id of `id`'s `Value`-equality class.
    pub fn eq_rep(&self, id: u32) -> u32 {
        self.eq_rep[id as usize]
    }

    /// Number of distinct (bit-exact) values.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// True when no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// All stored values in id order.
    pub fn values(&self) -> &[Value] {
        &self.exact
    }

    /// Rebuilds a table from decoded values (snapshot thaw): re-derives
    /// the equality classes, keyed by the values themselves.
    pub(crate) fn from_values(values: Vec<Value>) -> ValueTable {
        let mut t = ValueTable::default();
        for v in &values {
            t.scratch.clear();
            binary::encode_value(&mut t.scratch, v);
            let id = t.exact.len() as u32;
            t.by_bytes.insert(t.scratch.clone(), id);
            let rep = *t.by_eq.entry(v.clone()).or_insert(id);
            t.eq_rep.push(rep);
            t.exact.push(v.clone());
        }
        t
    }
}

/// The frozen, columnar form of a [`PropertyGraph`].
///
/// All columns are parallel to the raw id space (tombstones included);
/// derived CSR indexes cover live elements only. See the module docs for
/// the layout.
#[derive(Debug, Clone)]
pub struct ColumnarGraph {
    pub(crate) symbols: SymbolTable,
    pub(crate) values: ValueTable,

    pub(crate) node_alive: Vec<bool>,
    pub(crate) node_label: Vec<Sym>,
    pub(crate) node_prop_start: Vec<u32>,
    pub(crate) node_prop_keys: Vec<Sym>,
    pub(crate) node_prop_vals: Vec<u32>,

    pub(crate) edge_alive: Vec<bool>,
    pub(crate) edge_label: Vec<Sym>,
    pub(crate) edge_src: Vec<u32>,
    pub(crate) edge_dst: Vec<u32>,
    pub(crate) edge_prop_start: Vec<u32>,
    pub(crate) edge_prop_keys: Vec<Sym>,
    pub(crate) edge_prop_vals: Vec<u32>,

    // Derived — rebuilt on freeze/thaw, never serialised.
    out_start: Vec<u32>,
    out_edges: Vec<u32>,
    in_start: Vec<u32>,
    in_edges: Vec<u32>,
    label_start: Vec<u32>,
    label_nodes: Vec<u32>,
    labels_present: Vec<Sym>,

    live_nodes: usize,
    live_edges: usize,
}

impl ColumnarGraph {
    /// Freezes a graph into columns. Deterministic: symbols and value ids
    /// are assigned by one fixed walk (node slots in id order — label
    /// first, then property keys in name order — then edge slots), so the
    /// same graph always freezes to the same bytes.
    pub fn freeze(g: &PropertyGraph) -> ColumnarGraph {
        let mut symbols = SymbolTable::new();
        let mut values = ValueTable::default();

        let n = g.node_index_bound();
        let mut node_alive = Vec::with_capacity(n);
        let mut node_label = Vec::with_capacity(n);
        let mut node_prop_start = Vec::with_capacity(n + 1);
        let mut node_prop_keys = Vec::new();
        let mut node_prop_vals = Vec::new();
        node_prop_start.push(0);
        for data in &g.nodes {
            node_alive.push(data.alive);
            node_label.push(symbols.intern(&data.label));
            push_props(
                &data.props,
                &mut symbols,
                &mut values,
                &mut node_prop_keys,
                &mut node_prop_vals,
            );
            node_prop_start.push(node_prop_keys.len() as u32);
        }

        let m = g.edge_index_bound();
        let mut edge_alive = Vec::with_capacity(m);
        let mut edge_label = Vec::with_capacity(m);
        let mut edge_src = Vec::with_capacity(m);
        let mut edge_dst = Vec::with_capacity(m);
        let mut edge_prop_start = Vec::with_capacity(m + 1);
        let mut edge_prop_keys = Vec::new();
        let mut edge_prop_vals = Vec::new();
        edge_prop_start.push(0);
        for data in &g.edges {
            edge_alive.push(data.alive);
            edge_label.push(symbols.intern(&data.label));
            edge_src.push(data.src.index() as u32);
            edge_dst.push(data.dst.index() as u32);
            push_props(
                &data.props,
                &mut symbols,
                &mut values,
                &mut edge_prop_keys,
                &mut edge_prop_vals,
            );
            edge_prop_start.push(edge_prop_keys.len() as u32);
        }

        let mut cg = ColumnarGraph {
            symbols,
            values,
            node_alive,
            node_label,
            node_prop_start,
            node_prop_keys,
            node_prop_vals,
            edge_alive,
            edge_label,
            edge_src,
            edge_dst,
            edge_prop_start,
            edge_prop_keys,
            edge_prop_vals,
            out_start: Vec::new(),
            out_edges: Vec::new(),
            in_start: Vec::new(),
            in_edges: Vec::new(),
            label_start: Vec::new(),
            label_nodes: Vec::new(),
            labels_present: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
        };
        cg.rebuild_derived();
        cg
    }

    /// Assembles a graph from raw columns (snapshot thaw). The caller has
    /// already validated the columns; this only rebuilds derived indexes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_columns(
        symbols: SymbolTable,
        values: ValueTable,
        node_alive: Vec<bool>,
        node_label: Vec<Sym>,
        node_prop_start: Vec<u32>,
        node_prop_keys: Vec<Sym>,
        node_prop_vals: Vec<u32>,
        edge_alive: Vec<bool>,
        edge_label: Vec<Sym>,
        edge_src: Vec<u32>,
        edge_dst: Vec<u32>,
        edge_prop_start: Vec<u32>,
        edge_prop_keys: Vec<Sym>,
        edge_prop_vals: Vec<u32>,
    ) -> ColumnarGraph {
        let mut cg = ColumnarGraph {
            symbols,
            values,
            node_alive,
            node_label,
            node_prop_start,
            node_prop_keys,
            node_prop_vals,
            edge_alive,
            edge_label,
            edge_src,
            edge_dst,
            edge_prop_start,
            edge_prop_keys,
            edge_prop_vals,
            out_start: Vec::new(),
            out_edges: Vec::new(),
            in_start: Vec::new(),
            in_edges: Vec::new(),
            label_start: Vec::new(),
            label_nodes: Vec::new(),
            labels_present: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
        };
        cg.rebuild_derived();
        cg
    }

    /// (Re)builds the CSR adjacency and label indexes from the columns.
    fn rebuild_derived(&mut self) {
        self.live_nodes = self.node_alive.iter().filter(|&&a| a).count();
        self.live_edges = self.edge_alive.iter().filter(|&&a| a).count();
        let n = self.node_alive.len();

        // Out-CSR: live edge ids sorted by (src, label, dst, id); rows are
        // then label-runs, and within a label, target-runs (= parallel
        // edge groups).
        let mut out: Vec<u32> = (0..self.edge_alive.len() as u32)
            .filter(|&e| self.edge_alive[e as usize])
            .collect();
        out.sort_unstable_by_key(|&e| {
            let ix = e as usize;
            (self.edge_src[ix], self.edge_label[ix], self.edge_dst[ix], e)
        });
        self.out_start = prefix_counts(n, out.iter().map(|&e| self.edge_src[e as usize]));
        self.out_edges = out;

        let mut inc: Vec<u32> = (0..self.edge_alive.len() as u32)
            .filter(|&e| self.edge_alive[e as usize])
            .collect();
        inc.sort_unstable_by_key(|&e| {
            let ix = e as usize;
            (self.edge_dst[ix], self.edge_label[ix], self.edge_src[ix], e)
        });
        self.in_start = prefix_counts(n, inc.iter().map(|&e| self.edge_dst[e as usize]));
        self.in_edges = inc;

        // Label index: live node ids grouped by label symbol.
        let mut by_label: Vec<u32> = (0..n as u32)
            .filter(|&v| self.node_alive[v as usize])
            .collect();
        by_label.sort_unstable_by_key(|&v| (self.node_label[v as usize], v));
        self.label_start = prefix_counts(
            self.symbols.len(),
            by_label.iter().map(|&v| self.node_label[v as usize].0),
        );
        self.labels_present = {
            let mut syms: Vec<Sym> = by_label
                .iter()
                .map(|&v| self.node_label[v as usize])
                .collect();
            syms.dedup();
            syms
        };
        self.label_nodes = by_label;
    }

    /// Rebuilds the mutable [`PropertyGraph`] the columns were frozen
    /// from, `PartialEq`-identical to the original (tombstones included).
    pub fn thaw(&self) -> PropertyGraph {
        let nodes = (0..self.node_alive.len())
            .map(|ix| NodeData {
                label: self.symbols.resolve(self.node_label[ix]).to_owned(),
                props: self.props_map(
                    self.node_prop_start[ix],
                    self.node_prop_start[ix + 1],
                    &self.node_prop_keys,
                    &self.node_prop_vals,
                ),
                alive: self.node_alive[ix],
            })
            .collect();
        let edges = (0..self.edge_alive.len())
            .map(|ix| EdgeData {
                label: self.symbols.resolve(self.edge_label[ix]).to_owned(),
                src: NodeId::from_index(self.edge_src[ix] as usize),
                dst: NodeId::from_index(self.edge_dst[ix] as usize),
                props: self.props_map(
                    self.edge_prop_start[ix],
                    self.edge_prop_start[ix + 1],
                    &self.edge_prop_keys,
                    &self.edge_prop_vals,
                ),
                alive: self.edge_alive[ix],
            })
            .collect();
        PropertyGraph::from_raw_parts(nodes, edges)
    }

    fn props_map(&self, start: u32, end: u32, keys: &[Sym], vals: &[u32]) -> PropMap {
        let mut map = PropMap::new();
        for ix in start as usize..end as usize {
            map.insert(
                self.symbols.resolve(keys[ix]).to_owned(),
                self.values.value(vals[ix]).clone(),
            );
        }
        map
    }

    // ------------------------------------------------------------ access

    /// The intern table (labels, property keys).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable intern table — lets a schema be interned into the *same*
    /// symbol space after freezing (new symbols simply have no elements).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// The value pool.
    pub fn values(&self) -> &ValueTable {
        &self.values
    }

    /// Raw node slot count (tombstones included).
    pub fn node_slots(&self) -> usize {
        self.node_alive.len()
    }

    /// Raw edge slot count (tombstones included).
    pub fn edge_slots(&self) -> usize {
        self.edge_alive.len()
    }

    /// Live node count.
    pub fn live_node_count(&self) -> usize {
        self.live_nodes
    }

    /// Live edge count.
    pub fn live_edge_count(&self) -> usize {
        self.live_edges
    }

    /// Whether node slot `ix` is live.
    pub fn node_is_live(&self, ix: usize) -> bool {
        self.node_alive.get(ix).copied().unwrap_or(false)
    }

    /// Whether edge slot `ix` is live.
    pub fn edge_is_live(&self, ix: usize) -> bool {
        self.edge_alive.get(ix).copied().unwrap_or(false)
    }

    /// Label symbol of a node slot (live or tombstoned).
    pub fn node_label_sym(&self, n: NodeId) -> Sym {
        self.node_label[n.index()]
    }

    /// Label symbol of an edge slot.
    pub fn edge_label_sym(&self, e: EdgeId) -> Sym {
        self.edge_label[e.index()]
    }

    /// Source of an edge slot.
    pub fn edge_source(&self, e: EdgeId) -> NodeId {
        NodeId::from_index(self.edge_src[e.index()] as usize)
    }

    /// Target of an edge slot.
    pub fn edge_target(&self, e: EdgeId) -> NodeId {
        NodeId::from_index(self.edge_dst[e.index()] as usize)
    }

    /// Property key symbols of a node, sorted.
    pub fn node_prop_syms(&self, n: NodeId) -> &[Sym] {
        let (a, b) = self.node_prop_range(n);
        &self.node_prop_keys[a..b]
    }

    /// Property value ids of a node, parallel to
    /// [`node_prop_syms`](Self::node_prop_syms).
    pub fn node_prop_vids(&self, n: NodeId) -> &[u32] {
        let (a, b) = self.node_prop_range(n);
        &self.node_prop_vals[a..b]
    }

    /// Property key symbols of an edge, sorted.
    pub fn edge_prop_syms(&self, e: EdgeId) -> &[Sym] {
        let (a, b) = self.edge_prop_range(e);
        &self.edge_prop_keys[a..b]
    }

    /// Property value ids of an edge.
    pub fn edge_prop_vids(&self, e: EdgeId) -> &[u32] {
        let (a, b) = self.edge_prop_range(e);
        &self.edge_prop_vals[a..b]
    }

    /// `σ(v, key)` by symbol — binary search over the node's key column.
    pub fn node_prop(&self, n: NodeId, key: Sym) -> Option<&Value> {
        self.node_prop_vid(n, key).map(|vid| self.values.value(vid))
    }

    /// The value id of `σ(v, key)`, if defined.
    pub fn node_prop_vid(&self, n: NodeId, key: Sym) -> Option<u32> {
        let (a, b) = self.node_prop_range(n);
        let keys = &self.node_prop_keys[a..b];
        keys.binary_search(&key)
            .ok()
            .map(|i| self.node_prop_vals[a + i])
    }

    fn node_prop_range(&self, n: NodeId) -> (usize, usize) {
        let ix = n.index();
        (
            self.node_prop_start[ix] as usize,
            self.node_prop_start[ix + 1] as usize,
        )
    }

    fn edge_prop_range(&self, e: EdgeId) -> (usize, usize) {
        let ix = e.index();
        (
            self.edge_prop_start[ix] as usize,
            self.edge_prop_start[ix + 1] as usize,
        )
    }

    /// Out-CSR row of `v`: live out-edge ids sorted by
    /// `(label, target, id)`. Empty for out-of-range ids.
    pub fn out_row(&self, v: NodeId) -> &[u32] {
        csr_row(&self.out_start, &self.out_edges, v.index())
    }

    /// In-CSR row of `v`: live in-edge ids sorted by `(label, source, id)`.
    pub fn in_row(&self, v: NodeId) -> &[u32] {
        csr_row(&self.in_start, &self.in_edges, v.index())
    }

    /// Live out-edges of `v` labelled `label` — a subslice of
    /// [`out_row`](Self::out_row), found by binary search. Zero
    /// allocation.
    pub fn out_edges_labelled(&self, v: NodeId, label: Sym) -> &[u32] {
        label_run(self.out_row(v), &self.edge_label, label)
    }

    /// Live in-edges of `v` labelled `label`.
    pub fn in_edges_labelled(&self, v: NodeId, label: Sym) -> &[u32] {
        label_run(self.in_row(v), &self.edge_label, label)
    }

    /// Sorted live node ids labelled `label`. Empty for symbols interned
    /// after the freeze (e.g. schema names).
    pub fn nodes_with_label(&self, label: Sym) -> &[u32] {
        csr_row(&self.label_start, &self.label_nodes, label.index())
    }

    /// Sorted distinct label symbols with at least one live node.
    pub fn labels_present(&self) -> &[Sym] {
        &self.labels_present
    }
}

/// Interns one element's property map into the flattened columns, keys
/// sorted by symbol (not by name — lookup binary-searches symbols).
fn push_props(
    props: &PropMap,
    symbols: &mut SymbolTable,
    values: &mut ValueTable,
    keys: &mut Vec<Sym>,
    vals: &mut Vec<u32>,
) {
    let start = keys.len();
    for (name, value) in props {
        keys.push(symbols.intern(name));
        vals.push(values.intern(value));
    }
    // Few properties per element: insertion sort via sort_unstable is fine.
    let slice_start = start;
    let mut pairs: Vec<(Sym, u32)> = keys[slice_start..]
        .iter()
        .copied()
        .zip(vals[slice_start..].iter().copied())
        .collect();
    pairs.sort_unstable_by_key(|&(k, _)| k);
    for (i, (k, v)) in pairs.into_iter().enumerate() {
        keys[slice_start + i] = k;
        vals[slice_start + i] = v;
    }
}

/// Builds a CSR `start` array of length `bins + 1` from an iterator of
/// bin keys that is sorted ascending.
fn prefix_counts(bins: usize, sorted_keys: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut start = vec![0u32; bins + 1];
    for k in sorted_keys {
        start[k as usize + 1] += 1;
    }
    for i in 0..bins {
        start[i + 1] += start[i];
    }
    start
}

fn csr_row<'a>(start: &[u32], items: &'a [u32], ix: usize) -> &'a [u32] {
    if ix + 1 >= start.len() {
        return &[];
    }
    &items[start[ix] as usize..start[ix + 1] as usize]
}

/// The `(label == l)` run inside a row sorted by label-first order.
fn label_run<'a>(row: &'a [u32], edge_label: &[Sym], label: Sym) -> &'a [u32] {
    let lo = row.partition_point(|&e| edge_label[e as usize] < label);
    let hi = row.partition_point(|&e| edge_label[e as usize] <= label);
    &row[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> PropertyGraph {
        let mut g = GraphBuilder::new()
            .node("a", "User")
            .prop("a", "login", "alice")
            .prop("a", "age", 30i64)
            .node("b", "User")
            .prop("b", "login", "bob")
            .node("s", "Session")
            .edge("a", "b", "follows")
            .edge("a", "b", "follows")
            .edge("s", "a", "user")
            .build()
            .unwrap();
        let doomed = g.add_node("Doomed");
        g.set_node_property(doomed, "x", Value::Int(1));
        g.remove_node(doomed).unwrap();
        g
    }

    #[test]
    fn freeze_thaw_round_trips_including_tombstones() {
        let g = sample();
        let cg = ColumnarGraph::freeze(&g);
        assert_eq!(cg.thaw(), g);
        assert_eq!(cg.node_slots(), g.node_index_bound());
        assert_eq!(cg.live_node_count(), g.node_count());
        assert_eq!(cg.live_edge_count(), g.edge_count());
    }

    #[test]
    fn label_index_covers_live_nodes_only() {
        let g = sample();
        let cg = ColumnarGraph::freeze(&g);
        let user = cg.symbols().lookup("User").unwrap();
        assert_eq!(cg.nodes_with_label(user).len(), 2);
        let doomed = cg.symbols().lookup("Doomed").unwrap();
        assert_eq!(cg.nodes_with_label(doomed).len(), 0);
        // A symbol interned after freezing resolves to an empty slice.
        let mut cg = cg;
        let fresh = cg.symbols_mut().intern("Fresh");
        assert_eq!(cg.nodes_with_label(fresh).len(), 0);
        assert_eq!(cg.out_row(NodeId::from_index(9999)).len(), 0);
    }

    #[test]
    fn csr_rows_group_labels_and_parallels() {
        let g = sample();
        let cg = ColumnarGraph::freeze(&g);
        let a = NodeId::from_index(0);
        let follows = cg.symbols().lookup("follows").unwrap();
        let user = cg.symbols().lookup("user").unwrap();
        assert_eq!(cg.out_edges_labelled(a, follows).len(), 2);
        assert_eq!(cg.out_edges_labelled(a, user).len(), 0);
        assert_eq!(cg.in_edges_labelled(a, user).len(), 1);
        // The two parallel follows edges are adjacent in the row.
        let row = cg.out_row(a);
        assert_eq!(row.len(), 2);
        assert_eq!(
            cg.edge_target(EdgeId::from_index(row[0] as usize)),
            cg.edge_target(EdgeId::from_index(row[1] as usize))
        );
    }

    #[test]
    fn property_lookup_by_symbol() {
        let g = sample();
        let cg = ColumnarGraph::freeze(&g);
        let a = NodeId::from_index(0);
        let login = cg.symbols().lookup("login").unwrap();
        assert_eq!(cg.node_prop(a, login), Some(&Value::from("alice")));
        let age = cg.symbols().lookup("age").unwrap();
        assert_eq!(cg.node_prop(a, age), Some(&Value::Int(30)));
        let absent = Sym::from_index(10_000);
        assert_eq!(cg.node_prop(a, absent), None);
    }

    #[test]
    fn value_table_separates_exact_and_eq_identity() {
        let mut t = ValueTable::default();
        let zero = t.intern(&Value::Float(0.0));
        let neg_zero = t.intern(&Value::Float(-0.0));
        // Bit-distinct → distinct ids; Value-equal → same representative.
        assert_ne!(zero, neg_zero);
        assert_eq!(t.eq_rep(zero), t.eq_rep(neg_zero));
        assert_eq!(
            t.value(neg_zero).to_string(),
            Value::Float(-0.0).to_string()
        );
        // Identical bits → identical id.
        assert_eq!(t.intern(&Value::Float(0.0)), zero);
        let i = t.intern(&Value::Int(0));
        assert_ne!(t.eq_rep(i), t.eq_rep(zero));
    }

    #[test]
    fn empty_graph_freezes() {
        let g = PropertyGraph::new();
        let cg = ColumnarGraph::freeze(&g);
        assert_eq!(cg.thaw(), g);
        assert!(cg.labels_present().is_empty());
    }
}
