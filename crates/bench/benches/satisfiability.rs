//! Criterion benches for experiments E4/E5/E6: the Theorem 2 reduction
//! pipeline, tableau scaling, and the §6.2 verdicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpll::KsatParams;
use pg_reason::{check_object_type, ReasonerConfig};
use pg_schema::PgSchema;

/// E4: deciding random 2-SAT instances through the reduction, vs the
/// DPLL oracle directly.
fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_reduction_pipeline");
    group.sample_size(10);
    for vars in [3usize, 4, 5] {
        let params = KsatParams {
            num_vars: vars,
            num_clauses: (vars as f64 * 1.5).round() as usize,
            k: 2,
            seed: 11,
        };
        let formula = dpll::random_ksat(&params);
        group.bench_with_input(BenchmarkId::new("oracle", vars), &formula, |b, f| {
            b.iter(|| dpll::solve(f))
        });
        group.bench_with_input(BenchmarkId::new("via_schema", vars), &formula, |b, f| {
            b.iter(|| pg_reason::reduction::decide_via_reduction(f))
        });
    }
    group.finish();
}

/// E5: tableau on required-chain schemas of growing depth.
fn bench_tableau_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_tableau_chain_depth");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    // Depth is capped at 8 here — the exponential blow-up beyond that is
    // measured by the `experiments` table generator (E5), not by
    // Criterion, whose sampling would take minutes per point.
    for depth in [2usize, 4, 8] {
        let mut sdl = String::new();
        for i in 0..depth {
            sdl.push_str(&format!("type C{i} {{ next: C{} @required }}\n", i + 1));
        }
        sdl.push_str(&format!("type C{depth} {{ x: Int }}\n"));
        let schema = PgSchema::parse(&sdl).unwrap();
        let tbox = pg_reason::translate::translate(&schema);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &tbox, |b, tb| {
            b.iter(|| {
                pg_reason::tableau::check_concept_by_name(tb, "C0", &ReasonerConfig::default())
            })
        });
    }
    group.finish();
}

/// E6: full satisfiability checks for the §6.2 diagrams.
fn bench_diagram_verdicts(c: &mut Criterion) {
    let cases = [
        (
            "diagram_a",
            r#"
            type OT1 { }
            interface IT { hasOT1: [OT1] @uniqueForTarget }
            type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
            type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }
            "#,
            "OT1",
        ),
        (
            "diagram_c",
            r#"
            type OT1 { }
            interface IT { f: [OT1] @uniqueForTarget }
            type OT2 implements IT { f: [OT1] @required }
            type OT3 implements IT { f: [OT1] @requiredForTarget }
            "#,
            "OT2",
        ),
    ];
    let mut group = c.benchmark_group("E6_diagram_verdicts");
    group.sample_size(10);
    for (name, sdl, ty) in cases {
        let schema = PgSchema::parse(sdl).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| check_object_type(&schema, ty, &ReasonerConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reduction,
    bench_tableau_chains,
    bench_diagram_verdicts
);
criterion_main!(benches);
