//! Property tests for the satisfiability machinery: every produced
//! witness strongly satisfies its schema, and obligation-free random
//! schemas are always satisfiable.

use pg_datagen::{SchemaGen, SchemaGenParams};
use pg_reason::{check_object_type, ReasonerConfig, Satisfiability};
use pg_schema::PgSchema;
use proptest::prelude::*;

fn config() -> ReasonerConfig {
    ReasonerConfig {
        max_graph_size: 12,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Obligation-free schemas (no target-side directives) always admit
    /// finite models for every object type, and each witness strongly
    /// satisfies the schema.
    #[test]
    fn benchmarkable_schemas_are_satisfiable_with_valid_witnesses(seed in 0u64..40) {
        let sdl = SchemaGen::new(SchemaGenParams {
            num_types: 3,
            attrs_per_type: 2,
            rels_per_type: 1,
            ..SchemaGenParams::benchmarkable(3, seed)
        })
        .generate();
        let schema = PgSchema::parse(&sdl).unwrap();
        let names: Vec<String> = schema
            .schema()
            .object_types()
            .map(|t| schema.schema().type_name(t).to_owned())
            .collect();
        for ty in names {
            match check_object_type(&schema, &ty, &config()) {
                Satisfiability::Satisfiable { witness, size } => {
                    prop_assert!(size >= 1);
                    prop_assert!(
                        pg_schema::strongly_satisfies(&witness, &schema),
                        "invalid witness for {} (seed {}):\n{}\n{}",
                        ty,
                        seed,
                        pg_schema::validate(&witness, &schema, &Default::default()),
                        sdl
                    );
                    prop_assert!(witness.nodes().any(|n| n.label() == ty));
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "{ty} not satisfiable (seed {seed}): {other:?}\n{sdl}"
                    )));
                }
            }
        }
    }

    /// The tableau never contradicts the finite search: if the tableau
    /// says Unsatisfiable, no finite model may exist at any size we can
    /// afford to check.
    #[test]
    fn tableau_unsat_implies_no_finite_model(seed in 0u64..30) {
        let sdl = SchemaGen::new(SchemaGenParams {
            num_types: 3,
            attrs_per_type: 1,
            rels_per_type: 2,
            p_unique_for_target: 0.4,
            p_required_for_target: 0.4,
            seed,
            ..Default::default()
        })
        .generate();
        let schema = PgSchema::parse(&sdl).unwrap();
        let tbox = pg_reason::translate::translate(&schema);
        for t in schema.schema().object_types().collect::<Vec<_>>() {
            let name = schema.schema().type_name(t).to_owned();
            let outcome =
                pg_reason::tableau::check_concept_by_name(&tbox, &name, &config());
            if outcome == pg_reason::tableau::TableauOutcome::Unsatisfiable {
                for k in 1..=4 {
                    prop_assert!(
                        pg_reason::finite::find_model(&schema, &name, k).is_none(),
                        "tableau said UNSAT but a model of size {k} exists for {name} (seed {seed}):\n{sdl}"
                    );
                }
            }
        }
    }
}
