//! Folding type extensions (spec §3.4.3) into their base definitions.
//!
//! `extend type T { … }` adds fields, interfaces and directives to a
//! previously defined `T`; likewise for the other definition kinds.
//! [`merge_extensions`] rewrites a document into an extension-free
//! equivalent, which is what the schema builder consumes.

use std::fmt;

use crate::ast::*;
use crate::token::Span;

/// A failure while folding extensions.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// The extension targets a type that is not defined in the document.
    UnknownTarget {
        /// The extension target's name.
        name: String,
        /// The extension's source location.
        span: Span,
    },
    /// The extension's kind does not match the base definition (e.g.
    /// `extend enum X` where `X` is an object type).
    KindMismatch {
        /// The extension target's name.
        name: String,
        /// The extension's source location.
        span: Span,
    },
    /// The extension re-declares a field/member/value the base (or an
    /// earlier extension) already has.
    Duplicate {
        /// The target type.
        name: String,
        /// The duplicated item.
        item: String,
        /// The extension's source location.
        span: Span,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::UnknownTarget { name, span } => {
                write!(f, "{span}: extension of unknown type `{name}`")
            }
            MergeError::KindMismatch { name, span } => {
                write!(
                    f,
                    "{span}: extension kind does not match definition of `{name}`"
                )
            }
            MergeError::Duplicate { name, item, span } => {
                write!(f, "{span}: extension of `{name}` re-declares `{item}`")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Returns an extension-free document equivalent to `doc`, or the first
/// merge error. A document without extensions is returned unchanged
/// (cheaply cloned).
pub fn merge_extensions(doc: &Document) -> Result<Document, MergeError> {
    let mut out = Document {
        definitions: doc
            .definitions
            .iter()
            .filter(|d| !matches!(d, Definition::Extend(_)))
            .cloned()
            .collect(),
    };
    for def in &doc.definitions {
        let Definition::Extend(ext) = def else {
            continue;
        };
        let name = ext.name().to_owned();
        let span = ext.span();
        let base = out
            .definitions
            .iter_mut()
            .find_map(|d| match d {
                Definition::Type(t) if t.name() == name => Some(t),
                _ => None,
            })
            .ok_or_else(|| MergeError::UnknownTarget {
                name: name.clone(),
                span,
            })?;
        match (base, ext) {
            (TypeDef::Object(b), TypeDef::Object(e)) => {
                for i in &e.implements {
                    if b.implements.contains(i) {
                        return Err(MergeError::Duplicate {
                            name,
                            item: format!("implements {i}"),
                            span,
                        });
                    }
                    b.implements.push(i.clone());
                }
                merge_fields(&mut b.fields, &e.fields, &name, span)?;
                b.directives.extend(e.directives.iter().cloned());
            }
            (TypeDef::Interface(b), TypeDef::Interface(e)) => {
                merge_fields(&mut b.fields, &e.fields, &name, span)?;
                b.directives.extend(e.directives.iter().cloned());
            }
            (TypeDef::Union(b), TypeDef::Union(e)) => {
                for m in &e.members {
                    if b.members.contains(m) {
                        return Err(MergeError::Duplicate {
                            name,
                            item: m.clone(),
                            span,
                        });
                    }
                    b.members.push(m.clone());
                }
                b.directives.extend(e.directives.iter().cloned());
            }
            (TypeDef::Enum(b), TypeDef::Enum(e)) => {
                for v in &e.values {
                    if b.values.iter().any(|x| x.name == v.name) {
                        return Err(MergeError::Duplicate {
                            name,
                            item: v.name.clone(),
                            span,
                        });
                    }
                    b.values.push(v.clone());
                }
                b.directives.extend(e.directives.iter().cloned());
            }
            (TypeDef::Scalar(b), TypeDef::Scalar(e)) => {
                b.directives.extend(e.directives.iter().cloned());
            }
            (TypeDef::InputObject(b), TypeDef::InputObject(e)) => {
                for f in &e.fields {
                    if b.fields.iter().any(|x| x.name == f.name) {
                        return Err(MergeError::Duplicate {
                            name,
                            item: f.name.clone(),
                            span,
                        });
                    }
                    b.fields.push(f.clone());
                }
                b.directives.extend(e.directives.iter().cloned());
            }
            _ => return Err(MergeError::KindMismatch { name, span }),
        }
    }
    Ok(out)
}

fn merge_fields(
    base: &mut Vec<FieldDef>,
    ext: &[FieldDef],
    name: &str,
    span: Span,
) -> Result<(), MergeError> {
    for f in ext {
        if base.iter().any(|x| x.name == f.name) {
            return Err(MergeError::Duplicate {
                name: name.to_owned(),
                item: f.name.clone(),
                span,
            });
        }
        base.push(f.clone());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn object_extension_adds_fields_and_interfaces() {
        let doc = parse(
            r#"
            interface Node { id: ID! }
            type User { id: ID! }
            extend type User implements Node { email: String }
            "#,
        )
        .unwrap();
        let merged = merge_extensions(&doc).unwrap();
        assert_eq!(merged.definitions.len(), 2);
        let user = merged.object_types().find(|o| o.name == "User").unwrap();
        assert_eq!(user.implements, vec!["Node"]);
        assert_eq!(user.fields.len(), 2);
        assert_eq!(user.fields[1].name, "email");
    }

    #[test]
    fn enum_union_scalar_extensions() {
        let doc = parse(
            r#"
            enum Unit { METER }
            extend enum Unit { FEET }
            union Food = Pizza
            extend union Food = Pasta
            type Pizza { n: Int }
            type Pasta { n: Int }
            scalar Time
            extend scalar Time @fancy
            "#,
        )
        .unwrap();
        let merged = merge_extensions(&doc).unwrap();
        let TypeDef::Enum(unit) = merged.type_def("Unit").unwrap() else {
            panic!();
        };
        assert_eq!(unit.values.len(), 2);
        let TypeDef::Union(food) = merged.type_def("Food").unwrap() else {
            panic!();
        };
        assert_eq!(food.members, vec!["Pizza", "Pasta"]);
        let TypeDef::Scalar(time) = merged.type_def("Time").unwrap() else {
            panic!();
        };
        assert_eq!(time.directives.len(), 1);
    }

    #[test]
    fn merge_errors() {
        let unknown = parse("extend type Ghost { x: Int }").unwrap();
        assert!(matches!(
            merge_extensions(&unknown),
            Err(MergeError::UnknownTarget { .. })
        ));
        let mismatch = parse("type T { x: Int } extend enum T { A }").unwrap();
        assert!(matches!(
            merge_extensions(&mismatch),
            Err(MergeError::KindMismatch { .. })
        ));
        let dup = parse("type T { x: Int } extend type T { x: Float }").unwrap();
        assert!(matches!(
            merge_extensions(&dup),
            Err(MergeError::Duplicate { .. })
        ));
        let dup_enum = parse("enum E { A } extend enum E { A }").unwrap();
        assert!(matches!(
            merge_extensions(&dup_enum),
            Err(MergeError::Duplicate { .. })
        ));
    }

    #[test]
    fn extension_free_documents_pass_through() {
        let doc = parse("type T { x: Int }").unwrap();
        assert_eq!(merge_extensions(&doc).unwrap(), doc);
    }

    #[test]
    fn extensions_chain() {
        let doc =
            parse("type T { a: Int } extend type T { b: Int } extend type T { c: Int }").unwrap();
        let merged = merge_extensions(&doc).unwrap();
        let t = merged.object_types().next().unwrap();
        let names: Vec<&str> = t.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn extensions_print_and_roundtrip() {
        let doc = parse("type T { a: Int }\nextend type T { b: Int }").unwrap();
        let printed = crate::print_document(&doc);
        assert!(printed.contains("extend type T"), "{printed}");
        let reparsed = parse(&printed).unwrap();
        // Compare span-insensitively via the canonical printer.
        assert_eq!(
            crate::print_document(&merge_extensions(&reparsed).unwrap()),
            crate::print_document(&merge_extensions(&doc).unwrap())
        );
    }
}
