//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the criterion API the workspace's
//! benches use — [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Throughput`], `bench_with_input`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock sampler.
//!
//! Each benchmark runs a short calibration pass to choose an iteration
//! count, then collects `sample_size` samples and reports min / median /
//! mean per-iteration times (plus throughput when set). There is no
//! statistical regression analysis, HTML report, or saved baseline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque hint that stops the optimiser from deleting a value.
///
/// Without intrinsics the portable trick is a volatile-ish read through
/// `std::hint::black_box`, which is stable since 1.66.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one benchmark, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"name/param"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter, for single-function sweeps.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI args; non-flag args are name filters
        // (same convention as criterion proper and libtest).
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion { filters }
    }
}

impl Criterion {
    fn enabled(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &id.to_string(),
            20,
            Duration::from_secs(3),
            None,
            self.enabled(&id.to_string()),
            f,
        );
        self
    }
}

/// A group of benchmarks sharing configuration; see
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares throughput for rate reporting of subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            self.criterion.enabled(&full),
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks a nullary routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            self.criterion.enabled(&full),
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    enabled: bool,
    mut f: F,
) {
    if !enabled {
        return;
    }
    // Calibrate: grow the iteration count until one sample takes >= 1ms
    // (or the routine is genuinely slow and one iteration is enough).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let budget_per_sample = measurement_time
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::from_millis(50));
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    let run_start = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
        // Respect the overall budget: slow benches keep at least 2 samples.
        if run_start.elapsed() > measurement_time && samples.len() >= 2 {
            break;
        }
        let _ = budget_per_sample;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(" {}/s", human_bytes(n as f64 / median)),
        Throughput::Elements(n) => format!(" {:.3} Melem/s", n as f64 / median / 1e6),
    });
    println!(
        "bench: {id:<56} min {:>10}  median {:>10}  mean {:>10}{}",
        human_time(min),
        human_time(median),
        human_time(mean),
        rate.unwrap_or_default()
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_bytes(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} GiB", rate / (1u64 << 30) as f64)
    } else if rate >= 1e6 {
        format!("{:.2} MiB", rate / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB", rate / (1u64 << 10) as f64)
    }
}

/// Builds the benchmark-group runner function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench_fn(&mut c);)+
        }
    };
}

/// Builds `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("indexed", 400).to_string(), "indexed/400");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(42u64.wrapping_mul(3)));
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(3.2e-9).ends_with("ns"));
        assert!(human_time(4.7e-5).ends_with("µs"));
        assert!(human_time(8.1e-3).ends_with("ms"));
        assert!(human_time(2.5).ends_with('s'));
    }
}
