//! PG-Schema parse and compile errors, with source locations.
//!
//! The error discipline mirrors the SDL frontend (`gql_sdl::error`):
//! every failure — lexical, syntactic, or an unsupported construct hit
//! during lowering — carries a 1-based line/column [`Pos`] and can be
//! rendered with a caret snippet pointing at the offending source.

use std::fmt;

use crate::token::Pos;

/// What went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A character with no role in the PG-Schema grammar.
    UnexpectedCharacter(char),
    /// The parser expected one construct and found another.
    Unexpected {
        /// What was expected, e.g. "`{`" or "a node or edge type".
        expected: String,
        /// What was found (token description).
        found: String,
    },
    /// A construct that is valid PG-Schema but outside the supported
    /// subset, with the documented policy message (DESIGN §PG-Schema
    /// frontend). Raised by the parser or by the lowering pass.
    UnsupportedConstruct(String),
    /// A name resolution or well-formedness failure during lowering,
    /// e.g. an edge endpoint naming an undeclared node type.
    Invalid(String),
}

/// A lexing, parsing, or lowering failure, with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// The failure class.
    pub kind: ParseErrorKind,
    /// Where in the source it happened.
    pub pos: Pos,
}

impl ParseError {
    /// Builds an error at `pos`.
    pub fn new(kind: ParseErrorKind, pos: Pos) -> Self {
        ParseError { kind, pos }
    }

    /// Renders the error with a source snippet and caret, in the same
    /// shape the SDL frontend uses:
    ///
    /// ```text
    /// error: expected a name, found `:`
    ///   --> 2:12
    ///    |
    ///  2 |     (Person : { )
    ///    |            ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let line_no = self.pos.line as usize;
        let line = source.lines().nth(line_no.saturating_sub(1)).unwrap_or("");
        let gutter = line_no.to_string().len().max(2);
        let caret_pad = " ".repeat(self.pos.column.saturating_sub(1) as usize);
        format!(
            "error: {self}\n{pad}--> {}:{}\n{pad} |\n{line_no:>gutter$} | {line}\n{pad} | {caret_pad}^\n",
            self.pos.line,
            self.pos.column,
            pad = " ".repeat(gutter),
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.pos)?;
        match &self.kind {
            ParseErrorKind::UnexpectedCharacter(c) => {
                write!(f, "unexpected character {c:?}")
            }
            ParseErrorKind::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::UnsupportedConstruct(what) => {
                write!(f, "{what} is not supported by the PG-Schema frontend")
            }
            ParseErrorKind::Invalid(what) => f.write_str(what),
        }
    }
}

impl std::error::Error for ParseError {}
