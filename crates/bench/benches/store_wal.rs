//! Criterion benches for the durable session store (EXPERIMENTS.md
//! §E3d): per-record WAL append cost under each fsync policy, and
//! recovery (snapshot + WAL replay) time against WAL size.

use std::path::PathBuf;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_store::{FsyncPolicy, Store};
use pgraph::{GraphBuilder, GraphDelta, PropertyGraph, Value};

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("pg-bench-store")
        .join(format!("{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_graph() -> PropertyGraph {
    GraphBuilder::new()
        .node("u", "User")
        .prop("u", "login", "alice")
        .build()
        .unwrap()
}

fn toggle(graph: &PropertyGraph, i: u64) -> GraphDelta {
    let user = graph.node_ids().next().unwrap();
    GraphDelta::new().set_node_property(user, "login", Value::Int(i as i64))
}

const SDL: &str = "type User { login: String! @required }";

/// Append cost per record, by fsync policy. `always` pays an fdatasync
/// per acknowledged record; `interval` amortises syncs over the window;
/// `never` leaves durability to the OS page cache.
fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3d_wal_append");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let policies = [
        ("always", FsyncPolicy::Always),
        (
            "interval_100ms",
            FsyncPolicy::Interval(Duration::from_millis(100)),
        ),
        ("never", FsyncPolicy::Never),
    ];
    for (name, policy) in policies {
        let dir = bench_dir(&format!("append-{name}"));
        let (store, _) = Store::open(&dir, policy).unwrap();
        let graph = seed_graph();
        store.append_create(1, SDL, &graph).unwrap();
        let delta = toggle(&graph, 7);
        group.bench_with_input(BenchmarkId::from_parameter(name), &delta, |b, d| {
            b.iter(|| store.append_delta(1, black_box(d)).unwrap())
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Recovery time (open = newest valid snapshot + WAL tail replay) as
/// the un-compacted WAL grows.
fn bench_recovery_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3d_recovery_replay");
    group.sample_size(10);
    for records in [100u64, 1_000, 10_000] {
        let dir = bench_dir(&format!("replay-{records}"));
        {
            let (store, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
            let graph = seed_graph();
            store.append_create(1, SDL, &graph).unwrap();
            for i in 0..records {
                store.append_delta(1, &toggle(&graph, i)).unwrap();
            }
            store.sync().unwrap();
            eprintln!(
                "wal size at {records} records: {} bytes",
                store.wal_size_bytes()
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(records), &dir, |b, dir| {
            b.iter(|| {
                let (store, recovered) = Store::open(dir, FsyncPolicy::Never).unwrap();
                assert_eq!(recovered.sessions.len(), 1);
                black_box((store, recovered))
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_wal_append, bench_recovery_replay);
criterion_main!(benches);
