//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some(inner)` about three quarters of the time and
/// `None` otherwise (matching upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::for_case("option-of", 0);
        let s = of(Just(1u8));
        let somes = (0..400).filter(|_| s.generate(&mut rng).is_some()).count();
        assert!(somes > 200 && somes < 390, "somes: {somes}");
    }
}
