//! Subcommand implementations. Argument parsing is hand-rolled (the
//! offline dependency set has no CLI crate) but strict: unknown flags are
//! errors, and every command prints actionable output.

use std::fmt::Write as _;
use std::fs;

use pg_pgschema::SchemaLanguage;
use pg_schema::{validate, Engine, IncrementalEngine, PgSchema, ValidationOptions};

type Result<T> = std::result::Result<T, String>;

const USAGE: &str = "\
pgschema — GraphQL SDL schemas for Property Graphs

Schemas are GraphQL SDL by default; `--lang pgschema` (or a `.pgs` /
`.pgschema` file extension) selects the PG-Schema frontend instead.

USAGE:
    pgschema validate <schema> <graph.json> [--lang sdl|pgschema]
                      [--engine naive|indexed|parallel|incremental] [--threads N]
                      [--max-violations N] [--metrics] [--weak-only] [--json]
                      [--watch-delta delta.json]...
    pgschema translate <schema> [--lang sdl|pgschema] [--to sdl|pgschema]
                       [--name GraphTypeName] [--out FILE]
    pgschema consistency <schema.graphql>
    pgschema check-sat <schema> <TypeName> [--lang sdl|pgschema]
                       [--max-size K] [--field f] [--dot]
    pgschema generate <schema.graphql> [--nodes N] [--seed S] [--out FILE]
    pgschema reduce-sat <formula.cnf> [--out FILE]
    pgschema describe <schema.graphql>
    pgschema extend-api <schema.graphql> [--mutations] [--out FILE]
    pgschema normalize <schema.graphql> [--out FILE]
    pgschema import <nodes.csv> <edges.csv> [--schema FILE] [--out FILE]
    pgschema diff <old.graphql> <new.graphql> [--json]
    pgschema migrate plan <old.graphql> <new.graphql> <graph.json> [--json]
    pgschema migrate apply <old.graphql> <new.graphql> <graph.json> [--force] [--json]
    pgschema serve [--addr HOST:PORT] [--cores N] [--max-connections N]
                   [--log-format text|json|off] [--data-dir DIR]
                   [--fsync always|interval[:MILLIS]|never]
                   [--compact-after-bytes N] [--max-sessions N]
                   [--follow HOST:PORT]
    pgschema store inspect <data-dir>
    pgschema store compact <data-dir>
    pgschema store replay <data-dir>
";

/// Entry point used by `main` (and by the CLI integration tests).
pub fn run(args: &[String]) -> Result<()> {
    let Some(cmd) = args.first() else {
        return Err(format!("missing command\n{USAGE}"));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "validate" => cmd_validate(rest),
        "translate" => cmd_translate(rest),
        "consistency" => cmd_consistency(rest),
        "check-sat" => cmd_check_sat(rest),
        "generate" => cmd_generate(rest),
        "reduce-sat" => cmd_reduce_sat(rest),
        "describe" => cmd_describe(rest),
        "extend-api" => cmd_extend_api(rest),
        "normalize" => cmd_normalize(rest),
        "import" => cmd_import(rest),
        "diff" => cmd_diff(rest),
        "migrate" => cmd_migrate(rest),
        "serve" => cmd_serve(rest),
        "store" => cmd_store(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

/// Splits positional args from `--flag [value]` pairs.
type ParsedFlags<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>, Vec<&'a str>);

fn parse_flags<'a>(
    rest: &'a [String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<ParsedFlags<'a>> {
    let mut positional = Vec::new();
    let mut values = Vec::new();
    let mut bools = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i].as_str();
        if let Some(flag) = a.strip_prefix("--") {
            if bool_flags.contains(&flag) {
                bools.push(flag);
            } else if value_flags.contains(&flag) {
                i += 1;
                let v = rest
                    .get(i)
                    .ok_or_else(|| format!("--{flag} needs a value"))?;
                values.push((flag, v.as_str()));
            } else {
                return Err(format!("unknown flag --{flag}"));
            }
        } else {
            positional.push(a);
        }
        i += 1;
    }
    Ok((positional, values, bools))
}

/// Resolves the schema language: an explicit `--lang` wins, otherwise
/// the file extension decides (`.pgs` / `.pgschema` → PG-Schema).
fn resolve_lang(path: &str, flag: Option<&str>) -> Result<SchemaLanguage> {
    match flag {
        Some(v) => v.parse().map_err(|e| format!("--lang: {e}")),
        None => Ok(SchemaLanguage::detect(std::path::Path::new(path))),
    }
}

/// Loads a schema in either language. Alongside the classified schema
/// it returns the canonical SDL text — pragma-prefixed when compiled
/// from PG-Schema, so `pg_pgschema::apply_pragma` can recover a LOOSE
/// graph type's open-world mode later.
fn load_schema_as(path: &str, lang: SchemaLanguage) -> Result<(PgSchema, String)> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match lang {
        SchemaLanguage::Sdl => {
            let schema = PgSchema::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            Ok((schema, text))
        }
        SchemaLanguage::PgSchema => {
            let compiled =
                pg_pgschema::compile(&text).map_err(|e| format!("{path}:\n{}", e.render(&text)))?;
            Ok((compiled.schema, compiled.sdl))
        }
    }
}

fn load_schema(path: &str) -> Result<PgSchema> {
    let lang = SchemaLanguage::detect(std::path::Path::new(path));
    Ok(load_schema_as(path, lang)?.0)
}

fn cmd_validate(rest: &[String]) -> Result<()> {
    let (pos, values, bools) = parse_flags(
        rest,
        &["engine", "threads", "max-violations", "watch-delta", "lang"],
        &["weak-only", "json", "metrics"],
    )?;
    let [schema_path, graph_path] = pos.as_slice() else {
        return Err("validate needs <schema> <graph.json>".to_owned());
    };
    let lang_flag = values.iter().find(|(k, _)| *k == "lang").map(|(_, v)| *v);
    let lang = resolve_lang(schema_path, lang_flag)?;
    let (schema, schema_sdl) = load_schema_as(schema_path, lang)?;
    let graph_text =
        fs::read_to_string(graph_path).map_err(|e| format!("cannot read {graph_path}: {e}"))?;
    let graph = pgraph::json::from_json(&graph_text).map_err(|e| format!("{graph_path}: {e}"))?;
    let mut builder = ValidationOptions::builder().collect_metrics(bools.contains(&"metrics"));
    if bools.contains(&"weak-only") {
        builder = builder.families(true, false, false);
    }
    let mut delta_paths: Vec<&str> = Vec::new();
    for (k, v) in values {
        match k {
            "engine" => {
                builder =
                    builder.engine(v.parse::<Engine>().map_err(|e| format!("--engine: {e}"))?);
            }
            "threads" => {
                builder = builder.threads(
                    v.parse()
                        .map_err(|_| format!("--threads: not a number: {v}"))?,
                );
            }
            "max-violations" => {
                builder = builder.max_violations(
                    v.parse()
                        .map_err(|_| format!("--max-violations: not a number: {v}"))?,
                );
            }
            "watch-delta" => delta_paths.push(v),
            "lang" => {}
            _ => unreachable!(),
        }
    }
    // A `LOOSE` PG-Schema graph type is open-world: its pragma switches
    // the strong (closed-world) rule family off, exactly as the server
    // does on session hydration.
    let options = pg_pgschema::apply_pragma(&builder.build(), &schema_sdl);
    if !delta_paths.is_empty() {
        return validate_deltas(
            &mut std::io::stdout().lock(),
            graph,
            &schema,
            &options,
            &delta_paths,
            bools.contains(&"json"),
        );
    }
    let report = validate(&graph, &schema, &options);
    if bools.contains(&"json") {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
        if let Some(m) = report.metrics() {
            println!("{m}");
        }
    }
    if report.conforms() {
        Ok(())
    } else {
        Err(format!(
            "{} violation(s){}",
            report.len(),
            if report.truncated() {
                " (truncated)"
            } else {
                ""
            }
        ))
    }
}

/// `validate --watch-delta`: seed an incremental session with the graph,
/// then apply each delta file in order, reporting what every step
/// re-checked. Exit status reflects the *final* report.
///
/// In `--json` mode the output is NDJSON — one report per line: the
/// seed state, then one line per applied delta — and `out` is flushed
/// after *every* line. Stdout is block-buffered when piped, so without
/// the per-line flush a consumer following the stream would not see a
/// report until the buffer happened to fill.
fn validate_deltas<W: std::io::Write>(
    out: &mut W,
    graph: pgraph::PropertyGraph,
    schema: &PgSchema,
    options: &ValidationOptions,
    delta_paths: &[&str],
    json: bool,
) -> Result<()> {
    let mut engine = pg_schema::IncrementalEngine::new(graph, schema, options);
    if json {
        write_line(out, &engine.report().to_json())?;
    } else {
        write_chunk(out, &format!("initial: {}", engine.report()))?;
    }
    for path in delta_paths {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let delta = pgraph::json::delta_from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let outcome = engine.apply(&delta).map_err(|e| format!("{path}: {e}"))?;
        if json {
            write_line(out, &engine.report().to_json())?;
        } else {
            write_line(
                out,
                &format!(
                    "applied {path}: re-checked {} of {} element(s), \
                     +{} / -{} violation(s)",
                    outcome.elements_rechecked,
                    outcome.elements_total,
                    outcome.violations_added,
                    outcome.violations_removed
                ),
            )?;
        }
    }
    let report = engine.report();
    if !json {
        write_chunk(out, &format!("final: {report}"))?;
        if let Some(m) = report.metrics() {
            write_line(out, &format!("{m}"))?;
        }
    }
    if report.conforms() {
        Ok(())
    } else {
        Err(format!("{} violation(s)", report.len()))
    }
}

/// Writes one output line and flushes, so piped consumers see it now.
fn write_line<W: std::io::Write>(out: &mut W, line: &str) -> Result<()> {
    writeln!(out, "{line}")
        .and_then(|()| out.flush())
        .map_err(|e| format!("cannot write output: {e}"))
}

/// Writes already-terminated text (multi-line reports) and flushes.
fn write_chunk<W: std::io::Write>(out: &mut W, text: &str) -> Result<()> {
    write!(out, "{text}")
        .and_then(|()| out.flush())
        .map_err(|e| format!("cannot write output: {e}"))
}

/// `pgschema serve`: run the `pg-schemad` validation daemon until
/// SIGTERM or ctrl-c, then drain in-flight requests and exit cleanly.
fn cmd_serve(rest: &[String]) -> Result<()> {
    let (pos, values, _) = parse_flags(
        rest,
        &[
            "addr",
            "cores",
            "max-connections",
            "log-format",
            "data-dir",
            "fsync",
            "compact-after-bytes",
            "max-sessions",
            "follow",
        ],
        &[],
    )?;
    if !pos.is_empty() {
        return Err(format!("serve takes no positional arguments, got {pos:?}"));
    }
    let mut builder = pg_server::ServerConfig::builder();
    for (k, v) in values {
        match k {
            "addr" => builder = builder.addr(v),
            "cores" => {
                builder = builder.cores(
                    v.parse()
                        .map_err(|_| format!("--cores: not a number: {v}"))?,
                );
            }
            "max-connections" => {
                builder = builder.max_connections(
                    v.parse()
                        .map_err(|_| format!("--max-connections: not a number: {v}"))?,
                );
            }
            "log-format" => {
                builder = builder.log_format(v.parse().map_err(|e| format!("--log-format: {e}"))?);
            }
            "data-dir" => builder = builder.data_dir(v),
            "fsync" => {
                builder = builder.fsync(v.parse().map_err(|e| format!("--fsync: {e}"))?);
            }
            "compact-after-bytes" => {
                builder = builder.compact_after_bytes(
                    v.parse()
                        .map_err(|_| format!("--compact-after-bytes: not a number: {v}"))?,
                );
            }
            "max-sessions" => {
                builder = builder.max_sessions(
                    v.parse()
                        .map_err(|_| format!("--max-sessions: not a number: {v}"))?,
                );
            }
            "follow" => builder = builder.follow(v),
            _ => unreachable!(),
        }
    }
    let server =
        pg_server::Server::bind(builder.build()).map_err(|e| format!("cannot bind server: {e}"))?;
    pg_server::signal::install();
    let handle = server
        .serve()
        .map_err(|e| format!("cannot start server: {e}"))?;
    eprintln!(
        "pg-schemad listening on http://{} ({} core(s))",
        handle.local_addr(),
        handle.cores()
    );
    while !pg_server::signal::requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    handle.shutdown();
    handle.join().map_err(|e| format!("server error: {e}"))?;
    eprintln!("pg-schemad: drained, bye");
    Ok(())
}

/// `pgschema translate`: convert a schema between the two languages
/// over the overlapping fragment. SDL → PG-Schema uses the canonical
/// printer (and reports which construct falls outside the fragment if
/// one does); PG-Schema → SDL emits the lowered document, prefixed with
/// the language pragma when the graph type is `LOOSE` so the open-world
/// mode survives the round trip. Translating into the *same* language
/// canonicalises the text instead.
fn cmd_translate(rest: &[String]) -> Result<()> {
    let (pos, values, _) = parse_flags(rest, &["lang", "to", "name", "out"], &[])?;
    let [schema_path] = pos.as_slice() else {
        return Err("translate needs <schema>".to_owned());
    };
    let mut lang_flag = None;
    let mut to_flag = None;
    let mut name = "G";
    let mut out_path = None;
    for (k, v) in values {
        match k {
            "lang" => lang_flag = Some(v),
            "to" => to_flag = Some(v),
            "name" => name = v,
            "out" => out_path = Some(v),
            _ => unreachable!(),
        }
    }
    let from = resolve_lang(schema_path, lang_flag)?;
    let to = match to_flag {
        Some(v) => v.parse().map_err(|e| format!("--to: {e}"))?,
        // Default: the other language.
        None => match from {
            SchemaLanguage::Sdl => SchemaLanguage::PgSchema,
            SchemaLanguage::PgSchema => SchemaLanguage::Sdl,
        },
    };
    let text =
        fs::read_to_string(schema_path).map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    let output = match from {
        SchemaLanguage::Sdl => {
            let doc = gql_sdl::parse(&text).map_err(|e| format!("{schema_path}: {e}"))?;
            // A pragma on persisted lowered SDL names the original mode.
            let mode = pg_pgschema::pragma_of(&text)
                .map(|(_, m)| m)
                .unwrap_or_default();
            match to {
                SchemaLanguage::PgSchema => pg_pgschema::print_pgschema(&doc, name, mode)
                    .map_err(|e| format!("{schema_path}: {e}"))?,
                SchemaLanguage::Sdl => gql_sdl::print_document(&doc),
            }
        }
        SchemaLanguage::PgSchema => {
            let compiled = pg_pgschema::compile(&text)
                .map_err(|e| format!("{schema_path}:\n{}", e.render(&text)))?;
            match to {
                SchemaLanguage::Sdl => {
                    let printed = gql_sdl::print_document(&compiled.document);
                    if compiled.mode == pg_pgschema::TypeMode::Loose {
                        format!("{}\n{printed}", pg_pgschema::pragma_line(compiled.mode))
                    } else {
                        printed
                    }
                }
                SchemaLanguage::PgSchema => {
                    pg_pgschema::print_pgschema(&compiled.document, &compiled.name, compiled.mode)
                        .map_err(|e| format!("{schema_path}: {e}"))?
                }
            }
        }
    };
    match out_path {
        Some(p) => {
            fs::write(p, &output).map_err(|e| format!("cannot write {p}: {e}"))?;
            println!("wrote {to} translation to {p}");
        }
        None => print!("{output}"),
    }
    Ok(())
}

fn cmd_consistency(rest: &[String]) -> Result<()> {
    let (pos, _, _) = parse_flags(rest, &[], &[])?;
    let [schema_path] = pos.as_slice() else {
        return Err("consistency needs <schema.graphql>".to_owned());
    };
    let text =
        fs::read_to_string(schema_path).map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    let doc = gql_sdl::parse(&text).map_err(|e| format!("{schema_path}: {e}"))?;
    let schema = gql_schema::build_schema(&doc).map_err(|ds| {
        let mut msg = String::new();
        for d in ds {
            let _ = writeln!(msg, "{d}");
        }
        msg
    })?;
    let violations = gql_schema::consistency::check(&schema);
    if violations.is_empty() {
        println!("schema is consistent (Definition 4.5)");
        Ok(())
    } else {
        for v in &violations {
            println!("{v}");
        }
        Err(format!("{} consistency violation(s)", violations.len()))
    }
}

fn cmd_check_sat(rest: &[String]) -> Result<()> {
    let (pos, values, bools) = parse_flags(rest, &["max-size", "field", "lang"], &["dot"])?;
    let [schema_path, type_name] = pos.as_slice() else {
        return Err("check-sat needs <schema> <TypeName>".to_owned());
    };
    let as_dot = bools.contains(&"dot");
    let lang_flag = values.iter().find(|(k, _)| *k == "lang").map(|(_, v)| *v);
    let lang = resolve_lang(schema_path, lang_flag)?;
    let (schema, schema_sdl) = load_schema_as(schema_path, lang)?;
    let mut config = pg_reason::ReasonerConfig::default();
    let mut field: Option<&str> = None;
    for (k, v) in values {
        match k {
            "max-size" => {
                config.max_graph_size = v
                    .parse()
                    .map_err(|_| format!("--max-size: not a number: {v}"))?;
            }
            "field" => field = Some(v),
            "lang" => {}
            _ => unreachable!(),
        }
    }
    let result = match field {
        Some(f) => {
            // `schema_sdl` is the lowered SDL for PG-Schema inputs, so
            // field-mode reasoning works identically in both languages.
            let doc = gql_sdl::parse(&schema_sdl).map_err(|e| e.to_string())?;
            pg_reason::check_field_satisfiable(&doc, type_name, f, &config)?
        }
        None => pg_reason::check_type_satisfiable(&schema, type_name, &config),
    };
    match result {
        pg_reason::Satisfiability::Satisfiable { witness, size } => {
            println!("{type_name} is satisfiable: witness with {size} node(s)");
            if as_dot {
                println!("{}", pgraph::dot::to_dot(&witness));
            } else {
                println!("{}", pgraph::json::to_json(&witness));
            }
            Ok(())
        }
        pg_reason::Satisfiability::Unsatisfiable => {
            println!("{type_name} is UNSATISFIABLE");
            Err("unsatisfiable".to_owned())
        }
        pg_reason::Satisfiability::NoFiniteModelFound {
            bound,
            tableau_satisfiable,
        } => {
            match tableau_satisfiable {
                Some(true) => println!(
                    "{type_name}: no finite model up to {bound} node(s); \
                     an infinite model exists (cf. §6.2 diagram (b))"
                ),
                _ => println!(
                    "{type_name}: no finite model up to {bound} node(s); \
                     tableau inconclusive (resource limit)"
                ),
            }
            Err("no finite model found".to_owned())
        }
    }
}

fn cmd_generate(rest: &[String]) -> Result<()> {
    let (pos, values, _) = parse_flags(rest, &["nodes", "seed", "out"], &[])?;
    let [schema_path] = pos.as_slice() else {
        return Err("generate needs <schema.graphql>".to_owned());
    };
    let schema = load_schema(schema_path)?;
    let mut params = pg_datagen::GraphGenParams::default();
    let mut out_path: Option<&str> = None;
    for (k, v) in values {
        match k {
            "nodes" => {
                params.nodes_per_type = v
                    .parse()
                    .map_err(|_| format!("--nodes: not a number: {v}"))?
            }
            "seed" => {
                params.seed = v
                    .parse()
                    .map_err(|_| format!("--seed: not a number: {v}"))?
            }
            "out" => out_path = Some(v),
            _ => unreachable!(),
        }
    }
    let graph = pg_datagen::GraphGen::new(&schema, params)
        .generate_conforming(10)
        .ok_or("could not generate a conforming graph (schema obligations too tight)")?;
    let json = pgraph::json::to_json(&graph);
    match out_path {
        Some(p) => {
            fs::write(p, &json).map_err(|e| format!("cannot write {p}: {e}"))?;
            println!(
                "wrote conforming graph ({} nodes, {} edges) to {p}",
                graph.node_count(),
                graph.edge_count()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_reduce_sat(rest: &[String]) -> Result<()> {
    let (pos, values, _) = parse_flags(rest, &["out"], &[])?;
    let [cnf_path] = pos.as_slice() else {
        return Err("reduce-sat needs <formula.cnf>".to_owned());
    };
    let text = fs::read_to_string(cnf_path).map_err(|e| format!("cannot read {cnf_path}: {e}"))?;
    let cnf = dpll::Cnf::parse_dimacs(&text).map_err(|e| e.to_string())?;
    let red = pg_reason::reduction::reduce_cnf(&cnf);
    let out_path = values.iter().find(|(k, _)| *k == "out").map(|(_, v)| *v);
    match out_path {
        Some(p) => {
            fs::write(p, &red.sdl).map_err(|e| format!("cannot write {p}: {e}"))?;
            println!(
                "wrote reduction schema to {p}; check type {} (complete bound: {})",
                red.object_type, red.bound
            );
        }
        None => print!("{}", red.sdl),
    }
    Ok(())
}

fn cmd_extend_api(rest: &[String]) -> Result<()> {
    let (pos, values, bools) = parse_flags(rest, &["out"], &["mutations"])?;
    let [schema_path] = pos.as_slice() else {
        return Err("extend-api needs <schema.graphql>".to_owned());
    };
    let text =
        fs::read_to_string(schema_path).map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    let doc = gql_sdl::parse(&text).map_err(|e| format!("{schema_path}: {e}"))?;
    let options = pg_schema::api_extension::ApiExtensionOptions {
        include_mutation: bools.contains(&"mutations"),
        ..Default::default()
    };
    let extended = pg_schema::api_extension::extend_to_api_schema(&doc, &options)
        .map_err(|e| e.to_string())?;
    let printed = gql_sdl::print_document(&extended);
    match values.iter().find(|(k, _)| *k == "out").map(|(_, v)| *v) {
        Some(p) => {
            fs::write(p, &printed).map_err(|e| format!("cannot write {p}: {e}"))?;
            println!("wrote extended GraphQL API schema to {p}");
        }
        None => print!("{printed}"),
    }
    Ok(())
}

fn cmd_diff(rest: &[String]) -> Result<()> {
    let (pos, _, bools) = parse_flags(rest, &[], &["json"])?;
    let [old_path, new_path] = pos.as_slice() else {
        return Err("diff needs <old.graphql> <new.graphql>".to_owned());
    };
    let old = load_schema(old_path)?;
    let new = load_schema(new_path)?;
    let diff = pg_schema::diff::diff(&old, &new);
    if bools.contains(&"json") {
        println!("{}", diff.to_json());
    } else {
        print!("{diff}");
    }
    if diff.is_breaking() {
        Err(format!("{} breaking change(s)", diff.breaking().count()))
    } else {
        Ok(())
    }
}

/// `migrate plan` previews a schema change against a concrete graph —
/// which elements a revalidation must touch and exactly which
/// violations appear or resolve. `migrate apply` refuses a breaking
/// migration (unless `--force`) and otherwise prints the graph's
/// report under the new schema, produced through the same dual-schema
/// window the server uses.
fn cmd_migrate(rest: &[String]) -> Result<()> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("migrate needs a subcommand: plan | apply".to_owned());
    };
    let (pos, _, bools) = parse_flags(rest, &[], &["json", "force"])?;
    let [old_path, new_path, graph_path] = pos.as_slice() else {
        return Err(format!(
            "migrate {sub} needs <old.graphql> <new.graphql> <graph.json>"
        ));
    };
    let old = load_schema(old_path)?;
    let new = load_schema(new_path)?;
    let graph_text =
        fs::read_to_string(graph_path).map_err(|e| format!("cannot read {graph_path}: {e}"))?;
    let graph = pgraph::json::from_json(&graph_text).map_err(|e| format!("{graph_path}: {e}"))?;
    let options = ValidationOptions::default();
    match sub.as_str() {
        "plan" => {
            let plan = pg_schema::migrate::plan(&graph, &old, &new, &options);
            if bools.contains(&"json") {
                println!("{}", plan.to_json());
            } else {
                print!("{plan}");
            }
            if plan.compatible() {
                Ok(())
            } else {
                Err(format!("{} new violation(s)", plan.added.len()))
            }
        }
        "apply" => {
            let mut engine = IncrementalEngine::new(graph, std::sync::Arc::new(old), &options);
            let plan = engine.begin_migration(new);
            if !plan.compatible() && !bools.contains(&"force") {
                eprint!("{plan}");
                return Err(format!(
                    "refusing to apply: {} new violation(s) (use --force)",
                    plan.added.len()
                ));
            }
            assert!(engine.commit_migration());
            let report = engine.report();
            if bools.contains(&"json") {
                println!("{}", report.to_json());
            } else {
                print!("{report}");
            }
            Ok(())
        }
        other => Err(format!("unknown migrate subcommand `{other}`")),
    }
}

fn cmd_import(rest: &[String]) -> Result<()> {
    let (pos, values, _) = parse_flags(rest, &["schema", "out"], &[])?;
    let [nodes_path, edges_path] = pos.as_slice() else {
        return Err("import needs <nodes.csv> <edges.csv>".to_owned());
    };
    let nodes =
        fs::read_to_string(nodes_path).map_err(|e| format!("cannot read {nodes_path}: {e}"))?;
    let edges =
        fs::read_to_string(edges_path).map_err(|e| format!("cannot read {edges_path}: {e}"))?;
    let graph = pgraph::csv::from_csv(&nodes, &edges).map_err(|e| e.to_string())?;
    eprintln!(
        "imported {} node(s), {} edge(s)",
        graph.node_count(),
        graph.edge_count()
    );
    if let Some((_, schema_path)) = values.iter().find(|(k, _)| *k == "schema") {
        let schema = load_schema(schema_path)?;
        let report = validate(&graph, &schema, &ValidationOptions::default());
        eprint!("{report}");
        if !report.conforms() {
            return Err(format!("{} violation(s)", report.len()));
        }
    }
    let json = pgraph::json::to_json(&graph);
    match values.iter().find(|(k, _)| *k == "out").map(|(_, v)| *v) {
        Some(p) => {
            fs::write(p, &json).map_err(|e| format!("cannot write {p}: {e}"))?;
            println!("wrote graph to {p}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_normalize(rest: &[String]) -> Result<()> {
    let (pos, values, _) = parse_flags(rest, &["out"], &[])?;
    let [schema_path] = pos.as_slice() else {
        return Err("normalize needs <schema.graphql>".to_owned());
    };
    let text =
        fs::read_to_string(schema_path).map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    let doc = gql_sdl::parse(&text).map_err(|e| format!("{schema_path}: {e}"))?;
    let schema = gql_schema::build_schema(&doc)
        .map_err(|ds| ds.iter().map(|d| format!("{d}\n")).collect::<String>())?;
    let printed = gql_sdl::print_document(&gql_schema::emit::schema_to_document(&schema));
    match values.iter().find(|(k, _)| *k == "out").map(|(_, v)| *v) {
        Some(p) => {
            fs::write(p, &printed).map_err(|e| format!("cannot write {p}: {e}"))?;
            println!("wrote normalised schema to {p}");
        }
        None => print!("{printed}"),
    }
    Ok(())
}

/// `pgschema store inspect|compact|replay <data-dir>`: offline tooling
/// over a `--data-dir` written by `pgschema serve`.
fn cmd_store(rest: &[String]) -> Result<()> {
    let Some(action) = rest.first() else {
        return Err("store needs an action: inspect|compact|replay <data-dir>".to_owned());
    };
    let (pos, _, _) = parse_flags(&rest[1..], &[], &[])?;
    let [dir] = pos.as_slice() else {
        return Err(format!("store {action} needs exactly one <data-dir>"));
    };
    let dir = std::path::Path::new(dir);
    match action.as_str() {
        "inspect" => store_inspect(dir),
        "compact" => store_compact(dir),
        "replay" => store_replay(dir),
        other => Err(format!("unknown store action `{other}`\n{USAGE}")),
    }
}

/// Read-only inventory: never truncates torn tails or deletes stale
/// files, so it is safe against a live server's directory.
fn store_inspect(dir: &std::path::Path) -> Result<()> {
    let report = pg_store::scan(dir).map_err(|e| format!("cannot scan {}: {e}", dir.display()))?;
    if report.snapshots.is_empty() && report.segments.is_empty() {
        println!(
            "{}: empty store (no snapshots, no WAL segments)",
            dir.display()
        );
        return Ok(());
    }
    for s in &report.snapshots {
        let format = match s.format {
            0 => "unknown".to_owned(),
            v => format!("PGS{v}"),
        };
        println!(
            "snapshot generation={} format={format} bytes={} crc_ok={} valid={} sessions={} \
             base_seq={} ({})",
            s.generation,
            s.bytes,
            s.crc_ok,
            s.valid,
            s.sessions,
            s.base_seq,
            s.path.display()
        );
        for g in &s.graphs {
            println!(
                "  graph session={} last_seq={} pgcs_version={} crc_ok={} file_offset={} bytes={}",
                g.session,
                g.last_seq,
                g.version.map_or("-".to_owned(), |v| v.to_string()),
                g.crc_ok,
                g.file_offset,
                g.len
            );
            for (name, offset, len) in &g.sections {
                println!("    section {name} offset={offset} len={len}");
            }
        }
    }
    let mut torn = false;
    for seg in &report.segments {
        let (creates, deltas, deletes, schema_changes) = seg.records;
        print!(
            "segment first_seq={} bytes={} valid_bytes={} creates={creates} deltas={deltas} \
             deletes={deletes} schema_changes={schema_changes} last_seq={} ({})",
            seg.first_seq,
            seg.bytes,
            seg.valid_bytes,
            seg.last_seq.map_or("-".to_owned(), |s| s.to_string()),
            seg.path.display()
        );
        match &seg.torn {
            Some(reason) => {
                torn = true;
                println!(" TORN: {reason}");
            }
            None => println!(),
        }
    }
    if torn {
        println!("note: torn tail(s) found; recovery will truncate them on next open");
    }
    Ok(())
}

/// Opens the store (running full recovery) and forces one compaction
/// cycle: snapshot every live session, drop superseded WAL segments.
fn store_compact(dir: &std::path::Path) -> Result<()> {
    let (store, recovered) = pg_store::Store::open(dir, pg_store::FsyncPolicy::Always)
        .map_err(|e| format!("cannot open {}: {e}", dir.display()))?;
    let mut compaction = store
        .try_begin_compaction()
        .map_err(|e| format!("cannot start compaction: {e}"))?
        .ok_or("compaction already in progress")?;
    for s in &recovered.sessions {
        compaction.add_session(
            s.id,
            s.last_seq,
            s.deltas_applied,
            &s.schema_sdl,
            &s.graph,
            s.pending_migration.as_deref(),
        );
    }
    let outcome = compaction
        .finish(recovered.next_session_id)
        .map_err(|e| format!("compaction failed: {e}"))?;
    println!(
        "compacted {} to generation {}: {} session(s) captured, {} segment(s) removed, \
         snapshot is {} byte(s)",
        dir.display(),
        outcome.generation,
        outcome.sessions,
        outcome.segments_removed,
        outcome.snapshot_bytes
    );
    Ok(())
}

/// Replays the store exactly as server startup would (including
/// truncating any torn tail), then validates every recovered session
/// from scratch with all four engines and requires them to agree.
fn store_replay(dir: &std::path::Path) -> Result<()> {
    let (_store, recovered) = pg_store::Store::open(dir, pg_store::FsyncPolicy::Never)
        .map_err(|e| format!("cannot open {}: {e}", dir.display()))?;
    let info = &recovered.info;
    println!(
        "recovered {} session(s): snapshot generation {}, {} record(s) replayed, \
         {} skipped{}",
        recovered.sessions.len(),
        info.snapshot_generation
            .map_or("-".to_owned(), |g| g.to_string()),
        info.records_replayed,
        info.records_skipped,
        match &info.truncated {
            Some(t) => format!(
                "; torn tail truncated at {} offset {}",
                t.segment.display(),
                t.offset
            ),
            None => String::new(),
        }
    );
    let mut failures = 0usize;
    for s in &recovered.sessions {
        let schema = PgSchema::parse(&s.schema_sdl)
            .map_err(|e| format!("session {}: stored schema no longer parses: {e}", s.id))?;
        // A session untouched by WAL replay is still a zero-copy view
        // into the snapshot file; validating it needs the elements.
        let graph = s
            .graph
            .clone()
            .into_graph()
            .map_err(|e| format!("session {}: graph failed to materialize: {e}", s.id))?;
        let engines = [
            Engine::Naive,
            Engine::Indexed,
            Engine::Parallel,
            Engine::Incremental,
        ];
        let reports =
            engines.map(|e| validate(&graph, &schema, &ValidationOptions::with_engine(e)));
        let agree = reports
            .iter()
            .all(|r| r.violations() == reports[0].violations());
        if !agree {
            failures += 1;
        }
        println!(
            "session {}: {} node(s), {} edge(s), {} delta(s) applied, last_seq={}, \
             conforms={}, {} violation(s), engines_agree={agree}",
            s.id,
            graph.node_count(),
            graph.edge_count(),
            s.deltas_applied,
            s.last_seq,
            reports[0].conforms(),
            reports[0].len()
        );
    }
    if failures > 0 {
        Err(format!("{failures} session(s) with engine disagreement"))
    } else {
        Ok(())
    }
}

fn cmd_describe(rest: &[String]) -> Result<()> {
    let (pos, _, _) = parse_flags(rest, &[], &[])?;
    let [schema_path] = pos.as_slice() else {
        return Err("describe needs <schema.graphql>".to_owned());
    };
    let schema = load_schema(schema_path)?;
    let s = schema.schema();
    println!("object types: {}", s.object_types().count());
    println!("interface types: {}", s.interface_types().count());
    println!("union types: {}", s.union_types().count());
    println!("key constraints: {}", schema.keys().len());
    println!("constraint sites: {}", schema.constraint_sites().len());
    for t in s.object_types().collect::<Vec<_>>() {
        let attrs = schema.attributes(t);
        let rels = schema.relationships(t);
        println!(
            "  type {} — {} attribute(s), {} relationship(s)",
            s.type_name(t),
            attrs.len(),
            rels.len()
        );
        for a in attrs {
            println!(
                "      {}: {}{}",
                a.name,
                schema.display_type(&a.ty),
                if a.required { " @required" } else { "" }
            );
        }
        for r in rels {
            let mut flags = String::new();
            if r.required {
                flags.push_str(" @required");
            }
            if r.distinct {
                flags.push_str(" @distinct");
            }
            if r.no_loops {
                flags.push_str(" @noLoops");
            }
            if r.unique_for_target {
                flags.push_str(" @uniqueForTarget");
            }
            if r.required_for_target {
                flags.push_str(" @requiredForTarget");
            }
            println!(
                "      {} -> {}{}",
                r.name,
                schema.display_type(&r.ty),
                flags
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that records how many times it was flushed, to pin the
    /// NDJSON streaming contract: one flush per report line.
    struct FlushCounter {
        bytes: Vec<u8>,
        flushes: usize,
    }

    impl std::io::Write for FlushCounter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes += 1;
            Ok(())
        }
    }

    #[test]
    fn watch_delta_ndjson_flushes_after_every_report_line() {
        let schema = PgSchema::parse("type User { login: String! @required }").unwrap();
        let graph = pgraph::GraphBuilder::new()
            .node("u", "User")
            .prop("u", "login", "alice")
            .build()
            .unwrap();
        let u = graph.node_ids().next().unwrap();

        let dir = std::env::temp_dir();
        let break_path = dir.join(format!("pgschema-flush-{}-break.json", std::process::id()));
        let repair_path = dir.join(format!("pgschema-flush-{}-repair.json", std::process::id()));
        fs::write(
            &break_path,
            pgraph::json::delta_to_json(&pgraph::GraphDelta::new().set_node_property(
                u,
                "login",
                pgraph::Value::Int(1),
            )),
        )
        .unwrap();
        fs::write(
            &repair_path,
            pgraph::json::delta_to_json(&pgraph::GraphDelta::new().set_node_property(
                u,
                "login",
                "bob".into(),
            )),
        )
        .unwrap();

        let mut out = FlushCounter {
            bytes: Vec::new(),
            flushes: 0,
        };
        let result = validate_deltas(
            &mut out,
            graph,
            &schema,
            &ValidationOptions::default(),
            &[break_path.to_str().unwrap(), repair_path.to_str().unwrap()],
            true,
        );
        let _ = fs::remove_file(&break_path);
        let _ = fs::remove_file(&repair_path);
        result.expect("final state conforms");

        let text = String::from_utf8(out.bytes).unwrap();
        let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 3, "seed report + one line per delta");
        for line in &lines {
            pgraph::json::Json::parse(line).expect("every NDJSON line is standalone JSON");
        }
        // The regression: stdout block-buffering must never hold a
        // report line back, so the stream is flushed after each one.
        assert_eq!(out.flushes, lines.len(), "one flush per report line");
    }
}
