//! Property values.
//!
//! The paper assumes a set `Vals` of scalar values together with a function
//! `values : Scalars → 2^Vals` assigning a value space to every scalar type,
//! and notes (citing Bonifati et al.) that the value of a property "can only
//! be a simple atomic value or a list of such values". [`Value`] mirrors
//! that: the five built-in GraphQL scalar kinds, enum symbols, and flat
//! lists thereof. Nested lists are representable (GraphQL's `[[t]]`) but the
//! schema layer never produces types that permit them, matching the paper's
//! restriction of wrapping types to `t!`, `[t]`, `[t!]`, `[t!]!`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A property value stored in a Property Graph.
///
/// `Value` implements `Eq`, `Ord` and `Hash` so it can participate directly
/// in `@key`-constraint hash sets; floating-point values are compared by
/// their IEEE-754 bit pattern with all NaNs identified (so `Value` equality
/// is a genuine equivalence relation).
#[derive(Debug, Clone)]
pub enum Value {
    /// A signed 64-bit integer (GraphQL `Int`; we use the full i64 range).
    Int(i64),
    /// A 64-bit IEEE-754 floating point number (GraphQL `Float`).
    Float(f64),
    /// A UTF-8 string (GraphQL `String`).
    String(String),
    /// A boolean (GraphQL `Boolean`).
    Bool(bool),
    /// An opaque identifier (GraphQL `ID`). Serialised as a string.
    Id(String),
    /// A symbol of some enumeration type, e.g. `METER`.
    Enum(String),
    /// A finite list of values (the paper: "an array of values of the
    /// wrapped type").
    List(Vec<Value>),
    /// The special `null` value of the GraphQL type system. A *stored*
    /// property is normally non-null (absent properties are simply not in
    /// `dom(σ)`), but `null` may appear inside lists of nullable element
    /// type, and keeping it in the value space lets `valuesW` be
    /// implemented exactly as in §4.1 of the paper.
    Null,
}

/// The coarse kind of a [`Value`], used in diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// `Value::Int`
    Int,
    /// `Value::Float`
    Float,
    /// `Value::String`
    String,
    /// `Value::Bool`
    Bool,
    /// `Value::Id`
    Id,
    /// `Value::Enum`
    Enum,
    /// `Value::List`
    List,
    /// `Value::Null`
    Null,
}

impl Value {
    /// Returns the coarse kind of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::String(_) => ValueKind::String,
            Value::Bool(_) => ValueKind::Bool,
            Value::Id(_) => ValueKind::Id,
            Value::Enum(_) => ValueKind::Enum,
            Value::List(_) => ValueKind::List,
            Value::Null => ValueKind::Null,
        }
    }

    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if this is a list value.
    pub fn is_list(&self) -> bool {
        matches!(self, Value::List(_))
    }

    /// If this is a list, its elements.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// If this is an `Int`, the integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// If this is a `Float` (or an `Int`, which GraphQL coerces), the number.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// If this is a `String`, `Id` or `Enum`, the underlying text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) | Value::Id(s) | Value::Enum(s) => Some(s),
            _ => None,
        }
    }

    /// If this is a `Bool`, the boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total number of scalar leaves in this value (lists recursively).
    /// Used by the benchmark harness to size workloads.
    pub fn leaf_count(&self) -> usize {
        match self {
            Value::List(items) => items.iter().map(Value::leaf_count).sum(),
            _ => 1,
        }
    }

    /// Canonical bit pattern for floats: all NaNs are identified so that
    /// equality/hashing form a proper equivalence.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            // +0.0 and -0.0 compare equal; normalise the bit pattern too.
            0
        } else {
            f.to_bits()
        }
    }

    /// A small integer discriminant used for cross-kind ordering.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::String(_) => 4,
            Value::Id(_) => 5,
            Value::Enum(_) => 6,
            Value::List(_) => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Value::float_bits(*a) == Value::float_bits(*b),
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Id(a), Value::Id(b)) => a == b,
            (Value::Enum(a), Value::Enum(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            (Value::Null, Value::Null) => true,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => {
                // Total order via canonical bits after handling sign:
                // enough for deterministic sorting; not a numeric order
                // across NaN, which never occurs in schema-valid data.
                a.partial_cmp(b)
                    .unwrap_or_else(|| Value::float_bits(*a).cmp(&Value::float_bits(*b)))
            }
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Id(a), Value::Id(b)) => a.cmp(b),
            (Value::Enum(a), Value::Enum(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Value::float_bits(*f).hash(state),
            Value::String(s) | Value::Id(s) | Value::Enum(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::List(items) => {
                items.len().hash(state);
                for item in items {
                    item.hash(state);
                }
            }
            Value::Null => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Id(s) => write!(f, "{s:?}"),
            Value::Enum(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(Value::Int(1).kind(), ValueKind::Int);
        assert_eq!(Value::Float(1.0).kind(), ValueKind::Float);
        assert_eq!(Value::from("x").kind(), ValueKind::String);
        assert_eq!(Value::Bool(true).kind(), ValueKind::Bool);
        assert_eq!(Value::Id("i".into()).kind(), ValueKind::Id);
        assert_eq!(Value::Enum("E".into()).kind(), ValueKind::Enum);
        assert_eq!(Value::List(vec![]).kind(), ValueKind::List);
        assert_eq!(Value::Null.kind(), ValueKind::Null);
    }

    #[test]
    fn nan_values_are_equal_and_hash_alike() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn signed_zero_is_identified() {
        let a = Value::Float(0.0);
        let b = Value::Float(-0.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn string_and_id_are_distinct_values() {
        assert_ne!(Value::from("x"), Value::Id("x".into()));
        assert_ne!(Value::from("x"), Value::Enum("x".into()));
    }

    #[test]
    fn list_equality_is_elementwise() {
        let a = Value::from(vec![1i64, 2, 3]);
        let b = Value::from(vec![1i64, 2, 3]);
        let c = Value::from(vec![1i64, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn as_float_coerces_int() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from("x").as_float(), None);
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut vals = [
            Value::from("b"),
            Value::Null,
            Value::Int(3),
            Value::Bool(false),
            Value::from("a"),
            Value::Float(1.5),
        ];
        vals.sort();
        vals.sort(); // idempotent
        assert_eq!(vals[0], Value::Null);
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn leaf_count_recurses() {
        let v = Value::List(vec![
            Value::from(vec![1i64, 2]),
            Value::Int(3),
            Value::List(vec![]),
        ]);
        assert_eq!(v.leaf_count(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Enum("METER".into()).to_string(), "METER");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
