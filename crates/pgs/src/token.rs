//! Tokens and source positions for PG-Schema documents.
//!
//! Positions reuse the same discipline as the SDL lexer
//! (`gql_sdl::token`): 1-based line/column in Unicode scalar values,
//! 0-based byte offsets, CRLF counted as one line terminator. The types
//! are re-exported from `gql-sdl` so spans are interchangeable between
//! the two frontends.

use std::fmt;

pub use gql_sdl::{Pos, Span};

/// The kind (and payload) of a lexical PG-Schema token.
///
/// Keywords (`CREATE`, `OPTIONAL`, `ABSTRACT`, …) are lexed as
/// [`TokenKind::Name`]; the parser matches them by spelling, which keeps
/// the lexer oblivious to the keyword set and lets identifiers reuse
/// keyword spellings in positions where no keyword is expected.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `/[_A-Za-z][_0-9A-Za-z]*/`
    Name(String),
    /// A non-negative integer literal (cardinality bound).
    Int(u64),
    /// `(`
    ParenL,
    /// `)`
    ParenR,
    /// `{`
    BraceL,
    /// `}`
    BraceR,
    /// `[`
    BracketL,
    /// `]`
    BracketR,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `&`
    Amp,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `-`
    Dash,
    /// `->`
    Arrow,
    /// `*`
    Star,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Name(n) => format!("name `{n}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::ParenL => "`(`".to_owned(),
            TokenKind::ParenR => "`)`".to_owned(),
            TokenKind::BraceL => "`{`".to_owned(),
            TokenKind::BraceR => "`}`".to_owned(),
            TokenKind::BracketL => "`[`".to_owned(),
            TokenKind::BracketR => "`]`".to_owned(),
            TokenKind::Colon => "`:`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::Amp => "`&`".to_owned(),
            TokenKind::Dot => "`.`".to_owned(),
            TokenKind::DotDot => "`..`".to_owned(),
            TokenKind::Dash => "`-`".to_owned(),
            TokenKind::Arrow => "`->`".to_owned(),
            TokenKind::Star => "`*`".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}
