//! Crash recovery: newest valid snapshot + WAL tail replay.
//!
//! Invariants this module enforces (see DESIGN §Store):
//!
//! 1. **Prefix durability.** Replay stops at the first torn or corrupt
//!    frame; the segment is physically truncated there and every later
//!    segment is deleted. What remains is exactly the longest valid
//!    record prefix of the log.
//! 2. **Monotonic sequencing.** Record sequence numbers must strictly
//!    increase across segment boundaries; a regression is treated as
//!    corruption (rule 1 applies at that record).
//! 3. **Snapshot-relative replay.** A record mutates a session only if
//!    its `seq` exceeds the session's snapshotted `last_seq` — sessions
//!    captured *after* the WAL rotation already contain post-rotation
//!    records, and double-applying a delta is not idempotent.
//! 4. **Deterministic partial failure.** A logged delta that fails to
//!    apply mid-way (it was logged because the live engine also applied
//!    it partially) is replayed with the same `GraphDelta::apply_to`
//!    semantics, reproducing the identical partial state.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::files::{self, DirListing};
use crate::lazy::{Backing, LazyGraph};
use crate::mmap;
use crate::record::{self, StoreRecord};
use crate::snapshot::{self, DecodeError};
use crate::{Recovered, RecoveredSession, RecoveryInfo, TornTail};

/// What recovery hands back to [`crate::Store::open`] beyond the public
/// [`Recovered`] state: where the WAL now ends.
pub(crate) struct WalPosition {
    /// Live segments in replay order (the last one is appended to).
    pub segments: Vec<(u64, PathBuf)>,
    /// The next sequence number to assign.
    pub next_seq: u64,
    /// Generation of the snapshot that was loaded (0 when none).
    pub snapshot_generation: u64,
    /// Total bytes across live segments after truncation.
    pub live_bytes: u64,
    /// The replication cursor: one past the last record *physically
    /// present* in the WAL (or past the snapshot's `base_seq` when the
    /// WAL holds nothing newer). A follower resumes tailing from here —
    /// distinct from `next_seq`, which also counts records reflected
    /// only in per-session snapshot state (see `docs/replication.md`
    /// §Snapshot handoff).
    pub tail_cursor: u64,
}

pub(crate) fn recover(dir: &Path) -> io::Result<(Recovered, WalPosition)> {
    let DirListing {
        segments,
        snapshots,
        stale_tmp,
    } = files::list_dir(dir)?;
    for tmp in stale_tmp {
        let _ = std::fs::remove_file(tmp);
    }

    // Newest snapshot that decodes wins; older ones are only read when
    // newer ones are damaged.
    let mut sessions: HashMap<u64, RecoveredSession> = HashMap::new();
    let mut info = RecoveryInfo::default();
    let mut next_session_id = 1;
    let mut max_seq = 0;
    let mut snapshot_base = 0;
    let mut snapshot_generation = 0;
    for (generation, path) in &snapshots {
        // Map the file rather than read it: for a current-format
        // snapshot the decoded sessions *point into* this mapping
        // (zero-copy), which stays alive as long as any of them does.
        let backing = Backing::Map(Arc::new(mmap::map_file(path)?));
        match snapshot::decode(&backing) {
            Ok(snap) => {
                info.snapshot_generation = Some(*generation);
                snapshot_generation = *generation;
                next_session_id = snap.next_session_id;
                max_seq = snap.base_seq;
                snapshot_base = snap.base_seq;
                for session in snap.sessions {
                    max_seq = max_seq.max(session.last_seq);
                    sessions.insert(session.id, session);
                }
                break;
            }
            // Damage: fall back to the next older generation.
            Err(DecodeError::Corrupt) => info.snapshots_skipped += 1,
            // A newer format: refuse loudly instead of silently
            // regressing to an older snapshot's stale state.
            Err(DecodeError::Unsupported(msg)) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!("{}: {msg}", path.display()),
                ));
            }
        }
    }

    // Replay segments in order, enforcing the corruption rules.
    let mut live: Vec<(u64, PathBuf)> = Vec::new();
    let mut live_bytes = 0u64;
    let mut prev_seq = 0u64;
    let mut stop: Option<TornTail> = None;
    for (ix, (first_seq, path)) in segments.iter().enumerate() {
        let buf = std::fs::read(path)?;
        let parse = record::parse_segment(&buf);
        if let Some(unknown) = &parse.unknown {
            // A CRC-valid frame of a kind this implementation does not
            // know: written by a newer version, not damage. Refuse to
            // open (and above all refuse to truncate) rather than
            // silently discard a valid tail.
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("{}: {}", path.display(), unknown.to_error()),
            ));
        }
        let mut valid_len = parse.valid_len;
        let mut torn = parse.torn;
        let mut kept = 0u64;
        for parsed in parse.records {
            if parsed.seq <= prev_seq {
                torn = Some(format!(
                    "sequence regression {} after {} at offset {}",
                    parsed.seq, prev_seq, parsed.offset
                ));
                valid_len = parsed.offset;
                break;
            }
            prev_seq = parsed.seq;
            kept += 1;
            replay_record(
                parsed.seq,
                parsed.record,
                &mut sessions,
                &mut next_session_id,
                &mut info,
            )?;
        }
        max_seq = max_seq.max(prev_seq);
        info.records_replayed += kept;
        if let Some(reason) = torn {
            // Truncate the damage away and drop everything after it.
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_len)?;
            file.sync_all()?;
            let dropped = segments.len() - ix - 1;
            for (_, later) in &segments[ix + 1..] {
                let _ = std::fs::remove_file(later);
            }
            files::sync_dir(dir);
            stop = Some(TornTail {
                segment: path.clone(),
                offset: valid_len,
                reason,
                segments_dropped: dropped,
            });
            live.push((*first_seq, path.clone()));
            live_bytes += valid_len;
            break;
        }
        live.push((*first_seq, path.clone()));
        live_bytes += buf.len() as u64;
    }
    info.truncated = stop;

    let mut recovered_sessions: Vec<RecoveredSession> = sessions.into_values().collect();
    recovered_sessions.sort_by_key(|s| s.id);
    let recovered = Recovered {
        sessions: recovered_sessions,
        next_session_id,
        info,
    };
    let position = WalPosition {
        segments: live,
        next_seq: max_seq + 1,
        snapshot_generation,
        live_bytes,
        tail_cursor: snapshot_base.max(prev_seq) + 1,
    };
    Ok((recovered, position))
}

fn replay_record(
    seq: u64,
    record: StoreRecord,
    sessions: &mut HashMap<u64, RecoveredSession>,
    next_session_id: &mut u64,
    info: &mut RecoveryInfo,
) -> io::Result<()> {
    match record {
        StoreRecord::Create {
            session,
            schema_sdl,
            graph,
        } => {
            *next_session_id = (*next_session_id).max(session + 1);
            if sessions.get(&session).is_some_and(|s| seq <= s.last_seq) {
                // The snapshot already reflects this creation.
                info.records_skipped += 1;
                return Ok(());
            }
            sessions.insert(
                session,
                RecoveredSession {
                    id: session,
                    schema_sdl,
                    graph: LazyGraph::from(graph),
                    deltas_applied: 0,
                    last_seq: seq,
                    pending_migration: None,
                },
            );
        }
        StoreRecord::Delta { session, delta } => {
            let Some(state) = sessions.get_mut(&session) else {
                info.records_skipped += 1;
                return Ok(());
            };
            if seq <= state.last_seq {
                info.records_skipped += 1;
                return Ok(());
            }
            // Count only successful applications, mirroring the server's
            // `deltas_applied`; a failure still leaves its deterministic
            // partial effects in place (see module docs, rule 4). A WAL
            // record touching a snapshotted session is what finally
            // materializes its mapped graph; untouched sessions stay
            // zero-copy.
            if delta.apply_to(state.graph.load()?).is_ok() {
                state.deltas_applied += 1;
            }
            state.last_seq = seq;
        }
        StoreRecord::Delete { session } => {
            if sessions.get(&session).is_some_and(|s| seq <= s.last_seq) {
                info.records_skipped += 1;
                return Ok(());
            }
            if sessions.remove(&session).is_none() {
                info.records_skipped += 1;
            }
        }
        StoreRecord::SchemaChange {
            session,
            phase,
            schema_sdl,
        } => {
            let Some(state) = sessions.get_mut(&session) else {
                info.records_skipped += 1;
                return Ok(());
            };
            if seq <= state.last_seq {
                info.records_skipped += 1;
                return Ok(());
            }
            match phase {
                crate::MigrationPhase::Begin => state.pending_migration = Some(schema_sdl),
                crate::MigrationPhase::Commit => {
                    // The commit record's body is empty; the candidate
                    // SDL comes from the pending begin (or the snapshot
                    // that captured the open window).
                    if let Some(sdl) = state.pending_migration.take() {
                        state.schema_sdl = sdl;
                    } else {
                        info.records_skipped += 1;
                    }
                }
                crate::MigrationPhase::Abort => {
                    if state.pending_migration.take().is_none() {
                        info.records_skipped += 1;
                    }
                }
            }
            state.last_seq = seq;
        }
    }
    Ok(())
}
