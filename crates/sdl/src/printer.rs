//! Canonical SDL pretty-printer (see round-trip proptests in `tests/`).
//!
//! The printer produces spec-conformant SDL such that
//! `parse(print_document(&doc))` yields a document equal to `doc` up to
//! source spans (verified by a proptest round-trip in `tests/`). Output
//! style: four-space indentation, one field per line, descriptions as
//! block strings when multi-line.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole document.
pub fn print_document(doc: &Document) -> String {
    let mut out = String::new();
    for (i, def) in doc.definitions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match def {
            Definition::Schema(s) => print_schema(&mut out, s),
            Definition::Type(t) => print_type_def(&mut out, t),
            Definition::Extend(t) => {
                out.push_str("extend ");
                print_type_def(&mut out, t);
            }
            Definition::Directive(d) => print_directive_def(&mut out, d),
        }
    }
    out
}

fn print_description(out: &mut String, description: &Option<String>, indent: &str) {
    if let Some(d) = description {
        if d.contains('\n') || d.contains('"') {
            let _ = writeln!(out, "{indent}\"\"\"");
            for line in d.split('\n') {
                let _ = writeln!(out, "{indent}{line}");
            }
            let _ = writeln!(out, "{indent}\"\"\"");
        } else {
            let _ = writeln!(out, "{indent}{d:?}");
        }
    }
}

fn print_schema(out: &mut String, s: &SchemaDef) {
    out.push_str("schema");
    print_directive_uses(out, &s.directives);
    out.push_str(" {\n");
    for (op, ty) in &s.operations {
        let _ = writeln!(out, "    {op}: {ty}");
    }
    out.push_str("}\n");
}

fn print_type_def(out: &mut String, t: &TypeDef) {
    match t {
        TypeDef::Scalar(d) => {
            print_description(out, &d.description, "");
            let _ = write!(out, "scalar {}", d.name);
            print_directive_uses(out, &d.directives);
            out.push('\n');
        }
        TypeDef::Object(d) => {
            print_description(out, &d.description, "");
            let _ = write!(out, "type {}", d.name);
            if !d.implements.is_empty() {
                let _ = write!(out, " implements {}", d.implements.join(" & "));
            }
            print_directive_uses(out, &d.directives);
            print_fields(out, &d.fields);
        }
        TypeDef::Interface(d) => {
            print_description(out, &d.description, "");
            let _ = write!(out, "interface {}", d.name);
            print_directive_uses(out, &d.directives);
            print_fields(out, &d.fields);
        }
        TypeDef::Union(d) => {
            print_description(out, &d.description, "");
            let _ = write!(out, "union {}", d.name);
            print_directive_uses(out, &d.directives);
            if !d.members.is_empty() {
                let _ = write!(out, " = {}", d.members.join(" | "));
            }
            out.push('\n');
        }
        TypeDef::Enum(d) => {
            print_description(out, &d.description, "");
            let _ = write!(out, "enum {}", d.name);
            print_directive_uses(out, &d.directives);
            if d.values.is_empty() {
                out.push('\n');
                return;
            }
            out.push_str(" {\n");
            for v in &d.values {
                print_description(out, &v.description, "    ");
                let _ = write!(out, "    {}", v.name);
                print_directive_uses(out, &v.directives);
                out.push('\n');
            }
            out.push_str("}\n");
        }
        TypeDef::InputObject(d) => {
            print_description(out, &d.description, "");
            let _ = write!(out, "input {}", d.name);
            print_directive_uses(out, &d.directives);
            if d.fields.is_empty() {
                out.push('\n');
                return;
            }
            out.push_str(" {\n");
            for f in &d.fields {
                print_description(out, &f.description, "    ");
                out.push_str("    ");
                print_input_value(out, f);
                out.push('\n');
            }
            out.push_str("}\n");
        }
    }
}

fn print_fields(out: &mut String, fields: &[FieldDef]) {
    if fields.is_empty() {
        // An empty body still prints as `{\n}` so that "empty object type"
        // (used by the paper's Example 6.1, `type OT1 {}`) survives a
        // round-trip as an object-with-fields-block.
        out.push_str(" {\n}\n");
        return;
    }
    out.push_str(" {\n");
    for f in fields {
        print_description(out, &f.description, "    ");
        let _ = write!(out, "    {}", f.name);
        if !f.args.is_empty() {
            out.push('(');
            for (i, a) in f.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_input_value(out, a);
            }
            out.push(')');
        }
        let _ = write!(out, ": {}", f.ty);
        print_directive_uses(out, &f.directives);
        out.push('\n');
    }
    out.push_str("}\n");
}

fn print_input_value(out: &mut String, v: &InputValueDef) {
    let _ = write!(out, "{}: {}", v.name, v.ty);
    if let Some(d) = &v.default {
        let _ = write!(out, " = {d}");
    }
    print_directive_uses(out, &v.directives);
}

fn print_directive_uses(out: &mut String, uses: &[DirectiveUse]) {
    for u in uses {
        let _ = write!(out, " @{}", u.name);
        if !u.args.is_empty() {
            out.push('(');
            for (i, (k, v)) in u.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k}: {v}");
            }
            out.push(')');
        }
    }
}

fn print_directive_def(out: &mut String, d: &DirectiveDef) {
    print_description(out, &d.description, "");
    let _ = write!(out, "directive @{}", d.name);
    if !d.args.is_empty() {
        out.push('(');
        for (i, a) in d.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            print_input_value(out, a);
        }
        out.push(')');
    }
    let _ = write!(out, " on {}", d.locations.join(" | "));
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// Strips spans by reprinting: two documents are "structurally equal"
    /// if their canonical prints coincide.
    fn canon(src: &str) -> String {
        print_document(&parse(src).unwrap())
    }

    #[test]
    fn roundtrip_is_stable_on_example_3_1() {
        let src = r#"
            type UserSession {
                id: ID! @required
                user(certainty: Float! comment: String): User! @required
                startTime: Time! @required
                endTime: Time!
            }
            type User @key(fields: ["id"]) {
                id: ID! @required
                login: String! @required
                nicknames: [String!]!
            }
            scalar Time
        "#;
        let once = canon(src);
        let twice = canon(&once);
        assert_eq!(once, twice);
        assert!(once.contains("user(certainty: Float!, comment: String): User! @required"));
        assert!(once.contains("@key(fields: [\"id\"])"));
    }

    #[test]
    fn empty_object_type_prints_with_body() {
        assert_eq!(canon("type OT1 { }"), "type OT1 {\n}\n");
    }

    #[test]
    fn union_and_schema_print() {
        let out = canon("schema { query: Q } union Food = Pizza | Pasta");
        assert!(out.contains("schema {\n    query: Q\n}"));
        assert!(out.contains("union Food = Pizza | Pasta"));
    }

    #[test]
    fn enum_and_input_print() {
        let out = canon("enum E { A B } input P { x: Int = 3 }");
        assert!(out.contains("enum E {\n    A\n    B\n}"));
        assert!(out.contains("input P {\n    x: Int = 3\n}"));
    }

    #[test]
    fn descriptions_print_and_survive() {
        let out = canon("\"single\" type T { f: Int }");
        assert!(out.starts_with("\"single\"\ntype T"));
        let out2 = canon(&out);
        assert_eq!(out, out2);
    }

    #[test]
    fn directive_definition_prints() {
        let out = canon("directive @key(fields: [String!]!) on OBJECT | INTERFACE");
        assert_eq!(
            out,
            "directive @key(fields: [String!]!) on OBJECT | INTERFACE\n"
        );
    }
}
