//! Criterion benches for the parallel validation engine: indexed vs
//! parallel at 1/2/4/8 workers over a graph-size sweep, plus the cost of
//! metrics collection and the early-exit win of `max_violations`.
//!
//! The interesting comparison is `parallel/T` against `indexed` at the
//! same graph size: the parallel engine pays one extra report merge and
//! a DS7 table reduce, and buys shard-local scans. On a single-core host
//! the sweep degenerates into measuring that overhead — still useful as
//! a regression guard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_datagen::{GraphGen, GraphGenParams};
use pg_schema::{validate, Engine, PgSchema, ValidationOptions};

fn social_graph(nodes_per_type: usize) -> (PgSchema, pgraph::PropertyGraph) {
    let schema = PgSchema::parse(pg_datagen::schemagen::social_schema()).unwrap();
    let graph = GraphGen::new(
        &schema,
        GraphGenParams {
            nodes_per_type,
            ..Default::default()
        },
    )
    .generate_conforming(5)
    .expect("generable");
    (schema, graph)
}

/// E2-parallel: indexed vs parallel at several worker counts.
fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2p_validation_parallel_scaling");
    group.sample_size(10);
    for npt in [400usize, 1600] {
        let (schema, graph) = social_graph(npt);
        let elements = (graph.node_count() + graph.edge_count()) as u64;
        group.throughput(Throughput::Elements(elements));
        group.bench_with_input(
            BenchmarkId::new("indexed", graph.node_count()),
            &graph,
            |b, g| {
                b.iter(|| validate(g, &schema, &ValidationOptions::with_engine(Engine::Indexed)))
            },
        );
        for threads in [1usize, 2, 4, 8] {
            let options = ValidationOptions::builder()
                .engine(Engine::Parallel)
                .threads(threads)
                .build();
            group.bench_with_input(
                BenchmarkId::new(format!("parallel/{threads}"), graph.node_count()),
                &graph,
                |b, g| b.iter(|| validate(g, &schema, &options)),
            );
        }
    }
    group.finish();
}

/// Overhead of opt-in metrics collection (should be noise).
fn bench_metrics_overhead(c: &mut Criterion) {
    let (schema, graph) = social_graph(400);
    let mut group = c.benchmark_group("E2p_metrics_overhead");
    group.sample_size(10);
    for (label, collect) in [("off", false), ("on", true)] {
        let options = ValidationOptions::builder()
            .engine(Engine::Parallel)
            .threads(4)
            .collect_metrics(collect)
            .build();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| validate(&graph, &schema, &options))
        });
    }
    group.finish();
}

/// Early exit: a violation-dense graph validated to completion vs
/// stopping after the first 10 violations.
fn bench_max_violations_early_exit(c: &mut Criterion) {
    let (schema, mut graph) = social_graph(400);
    for defect in pg_datagen::Defect::ALL {
        let _ = pg_datagen::inject(&mut graph, &schema, defect);
    }
    let mut group = c.benchmark_group("E2p_max_violations_early_exit");
    group.sample_size(10);
    group.bench_function("unlimited", |b| {
        b.iter(|| validate(&graph, &schema, &ValidationOptions::default()))
    });
    let capped = ValidationOptions::builder().max_violations(10).build();
    group.bench_function("cap_10", |b| b.iter(|| validate(&graph, &schema, &capped)));
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_scaling,
    bench_metrics_overhead,
    bench_max_violations_early_exit
);
criterion_main!(benches);
