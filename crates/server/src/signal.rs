//! SIGTERM / SIGINT → a process-global shutdown flag; SIGHUP → a
//! promotion flag (a follower flips itself to leader, see
//! `docs/replication.md` §Promotion).
//!
//! `std` exposes no signal API, and the workspace vendors no `libc`
//! crate, so this module carries the one unavoidable FFI declaration
//! itself: `signal(2)` from the C runtime, installing a handler that
//! does the only async-signal-safe thing worth doing — a relaxed store
//! to a static `AtomicBool`. The accept loop polls that flag (the
//! listener runs nonblocking precisely because glibc's `signal()`
//! installs SA_RESTART handlers, which would otherwise leave a blocking
//! `accept(2)` sleeping through the signal).

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global "a termination signal arrived" flag.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Process-global "promote this follower" flag (SIGHUP).
static PROMOTE: AtomicBool = AtomicBool::new(false);

const SIGHUP: i32 = 1;
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

extern "C" fn on_promote(_signum: i32) {
    PROMOTE.store(true, Ordering::Relaxed);
}

extern "C" {
    // `signal(2)`. The true return type is the previous handler
    // (a function pointer); it is declared as `usize` here because the
    // value is ignored and the two are ABI-identical on every platform
    // this daemon targets.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs the SIGTERM and SIGINT handlers (idempotent) and returns the
/// flag they set. Callers embed the flag into their accept/poll loops;
/// tests skip this and drive a flag of their own.
pub fn install() -> &'static AtomicBool {
    // SAFETY: `signal` is the C runtime's own registration call, and the
    // handler only performs an atomic store, which is async-signal-safe.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
        signal(SIGHUP, on_promote);
    }
    &SHUTDOWN
}

/// True once a termination signal has been observed.
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// True once SIGHUP asked for promotion. The follower loop also honours
/// `POST /promote`, which sets its own in-process flag; this one exists
/// so an operator with only a PID at hand can promote without the HTTP
/// port (see `docs/operations.md`).
pub fn promote_requested() -> bool {
    PROMOTE.load(Ordering::Relaxed)
}
