//! The rule-kernel layer: each of the paper's fifteen rules, implemented
//! exactly once — over the *columnar* graph core.
//!
//! The paper defines one set of semantics — [`Rule::WS1`]–[`Rule::WS4`]
//! (Definition 5.1), [`Rule::DS1`]–[`Rule::DS7`] (Definition 5.2) and
//! [`Rule::SS1`]–[`Rule::SS4`] (Definition 5.3) — while the crate ships
//! several execution strategies for it. This module separates the two
//! concerns:
//!
//! * a **kernel** is the single implementation of one rule, written
//!   against an abstract evaluation [`Scope`] and a result [`Sink`]
//!   (modules [`weak`], [`directives`], [`strong`], one per family);
//! * an **engine** is a *planner*: it decides which kernels to run over
//!   which scope and merges the results. `indexed.rs`, `parallel.rs` and
//!   `incremental.rs` contain only this planning/scoping logic;
//!   `naive.rs` deliberately stays outside the layer as the independent
//!   oracle the kernels are property-tested against
//!   (`tests/engine_agreement.rs`).
//!
//! # The columnar scope
//!
//! Kernels no longer touch the pointer-rich [`PropertyGraph`] directly.
//! A [`Scope`] pairs a symbol-keyed view of the *data* with a
//! symbol-keyed compilation of the *schema*:
//!
//! * full and shard scopes scan a frozen
//!   [`ColumnarGraph`](pgraph::ColumnarGraph) — struct-of-arrays element
//!   tables plus CSR adjacency, so an element scan is a walk over
//!   contiguous `u32` columns and a "parallel edges of `v` under label
//!   `l`" query is a binary-searched subslice of one CSR row;
//! * the dirty scope of the incremental engine scans a small
//!   [`PartialCols`](partial::PartialCols) interned over just the dirty
//!   region, sharing the same symbol space;
//! * every label/field question goes through the
//!   [`SymSchema`](symschema::SymSchema) — one row per interned symbol,
//!   making `λ(v) ⊑ t` a binary search over `u32`s and putting the
//!   report strings (expected types, site names) behind precomputed
//!   fields, so the hot loops never hash or compare strings.
//!
//! The three scope variants answer the same questions:
//!
//! * **full** — the whole graph (the serial indexed engine, and the
//!   seeding pass of an incremental session); benchmark E2 runs kernels
//!   under this scope;
//! * **shard** — one contiguous raw-index range of the columnar tables
//!   (parallel engine, E2p); element scans walk the shard's own slots
//!   and group-keyed kernels process exactly the groups whose key
//!   element the shard owns, so every violation is derived by exactly
//!   one worker;
//! * **dirty** — the dirty region computed from a
//!   [`GraphDelta`](pgraph::GraphDelta) closure by the incremental
//!   engine: a set of dirty nodes plus the live edges incident to them
//!   (E2i).
//!
//! Kernels never ask which variant they run under: element scans iterate
//! [`Scope::nodes`]/[`Scope::edges`], group-keyed kernels walk
//! [`Scope::for_out_groups`]/[`Scope::for_parallel_runs`]/
//! [`Scope::for_in_runs`] and filter through [`Scope::owns`]. That one
//! predicate is what makes the same kernel body correct in all three
//! plans.
//!
//! # Sink
//!
//! A [`Sink`] is the uniform write side: kernels push [`Violation`]s
//! through it. It centralises
//!
//! * `max_violations` early-exit ([`Sink::at_limit`] short-circuits both
//!   within and between kernels),
//! * per-rule observability — wall time, elements examined and
//!   violations per kernel, recorded as [`RuleMetrics`] when metrics
//!   are requested and zero-cost (a dead branch per element) when not,
//! * deterministic ordering: kernels themselves emit in a
//!   domain-dependent order, so every planner canonicalises its merged
//!   report (sort by the derived `Ord` on [`Violation`] = (rule, anchor
//!   element id, payload), then dedup) before it reaches the caller —
//!   [`validate`](crate::validate) and
//!   [`IncrementalEngine::report`](crate::IncrementalEngine::report)
//!   both guarantee this canonical order, which is why reports from all
//!   four engines compare byte-identically.
//!
//! # DS7 and the three plans
//!
//! `@key` (DS7) is the one rule whose violations pair *two* elements, so
//! its kernel is split into a tuple-collect and a pair-emit phase
//! (see [`directives`]). [`Ds7Plan`] selects how the planner composes
//! them: inline (collect + emit in one go), map (collect only, as
//! interned value-class tuples; the parallel engine reduces the
//! shard-local tables after join), or recheck (the incremental engine's
//! persistent [`KeyTable`]s are updated for the dirty nodes and only
//! affected pairs re-emitted).

pub(crate) mod directives;
pub(crate) mod partial;
pub(crate) mod strong;
pub(crate) mod symschema;
pub(crate) mod weak;

use std::collections::{BTreeSet, HashMap};
use std::ops::Range;
use std::slice;
use std::time::Instant;

use pgraph::{ColumnarGraph, EdgeId, NodeId, PropertyGraph, Sym, SymbolTable, Value, ValueTable};

use crate::pgschema::PgSchema;
use crate::report::{Rule, RuleMetrics, ValidationReport, Violation};
use crate::ValidationOptions;

pub(crate) use directives::KeyTable;
use partial::{PartialCols, PartialNode};
use symschema::SymSchema;

/// The slice of the graph a kernel invocation derives violations for.
enum View<'a, 'g> {
    /// Every slot of the frozen columnar tables.
    Full { cols: &'a ColumnarGraph },
    /// One contiguous raw-index range of the columnar tables (parallel
    /// engine).
    Shard {
        cols: &'a ColumnarGraph,
        nodes: Range<usize>,
        edges: Range<usize>,
    },
    /// The interned dirty region of a delta (incremental engine):
    /// `nodes` is the dirty-node closure driving ownership.
    Dirty {
        pc: &'a PartialCols<'g>,
        nodes: &'a BTreeSet<NodeId>,
    },
}

/// Everything a rule kernel reads: the graph (for the few cold lookups
/// that still need it), the schema in both its string-keyed and
/// symbol-compiled forms, the symbol table for rendering report strings,
/// and the evaluation view. See the module docs for the three view
/// variants and how the planners instantiate them.
pub(crate) struct Scope<'a, 'g> {
    /// The graph under validation (always the *whole* graph — views
    /// restrict which elements are scanned, not what lookups can see).
    /// Kernels use it only for DS7's persistent recheck tables; the hot
    /// paths read the columnar view.
    pub(crate) g: &'g PropertyGraph,
    /// The schema validated against (string-keyed; DS7 recheck only).
    pub(crate) s: &'a PgSchema,
    /// The schema compiled onto the symbol space.
    pub(crate) ss: &'a SymSchema,
    /// The shared symbol table — resolves [`Sym`]s into report strings.
    pub(crate) syms: &'a SymbolTable,
    view: View<'a, 'g>,
}

/// A node under the cursor of a scope scan.
pub(crate) struct NodeCur<'a> {
    pub(crate) id: NodeId,
    pub(crate) label: Sym,
    pub(crate) props: PropsRef<'a>,
}

/// An edge under the cursor of a scope scan.
pub(crate) struct EdgeCur<'a> {
    pub(crate) id: EdgeId,
    pub(crate) label: Sym,
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) props: PropsRef<'a>,
}

/// An element's property list, interned: key symbols in name order plus
/// the values (columnar: value ids into the shared [`ValueTable`];
/// dirty: borrowed values).
pub(crate) enum PropsRef<'a> {
    Cols {
        keys: &'a [Sym],
        vids: &'a [u32],
        vt: &'a ValueTable,
    },
    Slice(&'a [(Sym, &'a Value)]),
}

impl<'a> PropsRef<'a> {
    /// Iterates `(key symbol, value)` in property-name order.
    pub(crate) fn iter(&self) -> PropsIter<'a> {
        match *self {
            PropsRef::Cols { keys, vids, vt } => PropsIter::Cols {
                keys: keys.iter(),
                vids: vids.iter(),
                vt,
            },
            PropsRef::Slice(s) => PropsIter::Slice(s.iter()),
        }
    }
}

/// Iterator over a [`PropsRef`].
pub(crate) enum PropsIter<'a> {
    Cols {
        keys: slice::Iter<'a, Sym>,
        vids: slice::Iter<'a, u32>,
        vt: &'a ValueTable,
    },
    Slice(slice::Iter<'a, (Sym, &'a Value)>),
}

impl<'a> Iterator for PropsIter<'a> {
    type Item = (Sym, &'a Value);
    fn next(&mut self) -> Option<(Sym, &'a Value)> {
        match self {
            PropsIter::Cols { keys, vids, vt } => {
                let k = *keys.next()?;
                let vid = *vids.next()?;
                Some((k, vt.value(vid)))
            }
            PropsIter::Slice(it) => it.next().map(|&(k, v)| (k, v)),
        }
    }
}

/// Live-node scan over a scope's view, in ascending id order.
pub(crate) enum NodeIter<'a> {
    Cols {
        cols: &'a ColumnarGraph,
        range: Range<usize>,
    },
    Partial(slice::Iter<'a, PartialNode<'a>>),
}

impl<'a> Iterator for NodeIter<'a> {
    type Item = NodeCur<'a>;
    fn next(&mut self) -> Option<NodeCur<'a>> {
        match self {
            NodeIter::Cols { cols, range } => loop {
                let ix = range.next()?;
                if !cols.node_is_live(ix) {
                    continue;
                }
                let id = NodeId::from_index(ix);
                return Some(NodeCur {
                    id,
                    label: cols.node_label_sym(id),
                    props: PropsRef::Cols {
                        keys: cols.node_prop_syms(id),
                        vids: cols.node_prop_vids(id),
                        vt: cols.values(),
                    },
                });
            },
            NodeIter::Partial(it) => it.next().map(|n| NodeCur {
                id: n.id,
                label: n.label,
                props: PropsRef::Slice(&n.props),
            }),
        }
    }
}

/// Live-edge scan over a scope's view, in ascending id order.
pub(crate) enum EdgeIter<'a> {
    Cols {
        cols: &'a ColumnarGraph,
        range: Range<usize>,
    },
    Partial(slice::Iter<'a, partial::PartialEdge<'a>>),
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = EdgeCur<'a>;
    fn next(&mut self) -> Option<EdgeCur<'a>> {
        match self {
            EdgeIter::Cols { cols, range } => loop {
                let ix = range.next()?;
                if !cols.edge_is_live(ix) {
                    continue;
                }
                let id = EdgeId::from_index(ix);
                return Some(EdgeCur {
                    id,
                    label: cols.edge_label_sym(id),
                    src: cols.edge_source(id),
                    dst: cols.edge_target(id),
                    props: PropsRef::Cols {
                        keys: cols.edge_prop_syms(id),
                        vids: cols.edge_prop_vids(id),
                        vt: cols.values(),
                    },
                });
            },
            EdgeIter::Partial(it) => it.next().map(|e| EdgeCur {
                id: e.id,
                label: e.label,
                src: e.src,
                dst: e.dst,
                props: PropsRef::Slice(&e.props),
            }),
        }
    }
}

/// Node ids from a per-label index: raw `u32` slots (columnar) or
/// materialised ids (dirty view).
pub(crate) enum NodeIdIter<'a> {
    Raw(slice::Iter<'a, u32>),
    Ids(slice::Iter<'a, NodeId>),
}

impl Iterator for NodeIdIter<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        match self {
            NodeIdIter::Raw(it) => it.next().map(|&ix| NodeId::from_index(ix as usize)),
            NodeIdIter::Ids(it) => it.next().copied(),
        }
    }
}

/// One adjacency group: a run of edge ids, either a CSR subslice (raw
/// `u32` slots) or a materialised id list (dirty view).
#[derive(Clone, Copy)]
pub(crate) enum EdgeRun<'a> {
    Raw(&'a [u32]),
    Ids(&'a [EdgeId]),
}

impl<'a> EdgeRun<'a> {
    pub(crate) fn len(&self) -> usize {
        match self {
            EdgeRun::Raw(r) => r.len(),
            EdgeRun::Ids(r) => r.len(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn iter(&self) -> EdgeRunIter<'a> {
        match *self {
            EdgeRun::Raw(r) => EdgeRunIter::Raw(r.iter()),
            EdgeRun::Ids(r) => EdgeRunIter::Ids(r.iter()),
        }
    }
}

/// Iterator over an [`EdgeRun`], yielding [`EdgeId`]s.
pub(crate) enum EdgeRunIter<'a> {
    Raw(slice::Iter<'a, u32>),
    Ids(slice::Iter<'a, EdgeId>),
}

impl Iterator for EdgeRunIter<'_> {
    type Item = EdgeId;
    fn next(&mut self) -> Option<EdgeId> {
        match self {
            EdgeRunIter::Raw(it) => it.next().map(|&ix| EdgeId::from_index(ix as usize)),
            EdgeRunIter::Ids(it) => it.next().copied(),
        }
    }
}

impl<'a, 'g: 'a> Scope<'a, 'g> {
    /// Whole-graph scope (indexed engine, incremental seeding) over a
    /// frozen columnar view.
    pub(crate) fn full(
        g: &'g PropertyGraph,
        s: &'a PgSchema,
        ss: &'a SymSchema,
        cols: &'a ColumnarGraph,
    ) -> Self {
        Scope {
            g,
            s,
            ss,
            syms: cols.symbols(),
            view: View::Full { cols },
        }
    }

    /// One worker's contiguous slot ranges of the parallel engine.
    pub(crate) fn shard(
        g: &'g PropertyGraph,
        s: &'a PgSchema,
        ss: &'a SymSchema,
        cols: &'a ColumnarGraph,
        nodes: Range<usize>,
        edges: Range<usize>,
    ) -> Self {
        Scope {
            g,
            s,
            ss,
            syms: cols.symbols(),
            view: View::Shard { cols, nodes, edges },
        }
    }

    /// The dirty region of the incremental engine: `nodes` is the dirty
    /// node closure, `pc` the interned view of it and its incident live
    /// edges (sharing `syms` with `ss`).
    pub(crate) fn dirty(
        g: &'g PropertyGraph,
        s: &'a PgSchema,
        ss: &'a SymSchema,
        syms: &'a SymbolTable,
        pc: &'a PartialCols<'g>,
        nodes: &'a BTreeSet<NodeId>,
    ) -> Self {
        Scope {
            g,
            s,
            ss,
            syms,
            view: View::Dirty { pc, nodes },
        }
    }

    /// Does this scope own the given node? Group-keyed kernels process
    /// exactly the groups whose key element is owned, which is what
    /// makes shard/dirty evaluation partition-exact.
    #[inline]
    pub(crate) fn owns(&self, n: NodeId) -> bool {
        match &self.view {
            View::Full { .. } => true,
            View::Shard { nodes, .. } => nodes.contains(&n.index()),
            View::Dirty { nodes, .. } => nodes.contains(&n),
        }
    }

    /// The live nodes of the view, in ascending id order.
    pub(crate) fn nodes(&self) -> NodeIter<'a> {
        match &self.view {
            View::Full { cols } => NodeIter::Cols {
                cols,
                range: 0..cols.node_slots(),
            },
            View::Shard { cols, nodes, .. } => NodeIter::Cols {
                cols,
                range: nodes.clone(),
            },
            View::Dirty { pc, .. } => NodeIter::Partial(pc.nodes.iter()),
        }
    }

    /// The live edges of the view, in ascending id order.
    pub(crate) fn edges(&self) -> EdgeIter<'a> {
        match &self.view {
            View::Full { cols } => EdgeIter::Cols {
                cols,
                range: 0..cols.edge_slots(),
            },
            View::Shard { cols, edges, .. } => EdgeIter::Cols {
                cols,
                range: edges.clone(),
            },
            View::Dirty { pc, .. } => EdgeIter::Partial(pc.edges.iter()),
        }
    }

    /// The label symbol of a live node — any node of the graph for the
    /// columnar views; dirty nodes and local-edge endpoints for the
    /// dirty one (exactly the nodes its kernels classify).
    #[inline]
    pub(crate) fn label_sym(&self, n: NodeId) -> Option<Sym> {
        match &self.view {
            View::Full { cols } | View::Shard { cols, .. } => {
                if cols.node_is_live(n.index()) {
                    Some(cols.node_label_sym(n))
                } else {
                    None
                }
            }
            View::Dirty { pc, .. } => pc.label_of(n),
        }
    }

    /// The distinct labels with at least one live node in the view's
    /// population, sorted by symbol.
    pub(crate) fn labels(&self) -> &'a [Sym] {
        match &self.view {
            View::Full { cols } | View::Shard { cols, .. } => cols.labels_present(),
            View::Dirty { pc, .. } => pc.labels(),
        }
    }

    /// Live nodes carrying `label` (the whole graph for columnar views,
    /// the dirty set for the dirty one), ascending id order.
    pub(crate) fn nodes_with_label(&self, label: Sym) -> NodeIdIter<'a> {
        match &self.view {
            View::Full { cols } | View::Shard { cols, .. } => {
                NodeIdIter::Raw(cols.nodes_with_label(label).iter())
            }
            View::Dirty { pc, .. } => NodeIdIter::Ids(pc.nodes_with_label(label).iter()),
        }
    }

    /// Out-edges of `v` labelled `label` (local edges only under the
    /// dirty view), ascending id order.
    pub(crate) fn out_edges_labelled(&self, v: NodeId, label: Sym) -> EdgeRun<'a> {
        match &self.view {
            View::Full { cols } | View::Shard { cols, .. } => {
                EdgeRun::Raw(cols.out_edges_labelled(v, label))
            }
            View::Dirty { pc, .. } => EdgeRun::Ids(pc.out_edges_labelled(v, label)),
        }
    }

    /// In-edges of `v` labelled `label`, ascending id order.
    pub(crate) fn in_edges_labelled(&self, v: NodeId, label: Sym) -> EdgeRun<'a> {
        match &self.view {
            View::Full { cols } | View::Shard { cols, .. } => {
                EdgeRun::Raw(cols.in_edges_labelled(v, label))
            }
            View::Dirty { pc, .. } => EdgeRun::Ids(pc.in_edges_labelled(v, label)),
        }
    }

    /// The source endpoint of a live edge.
    #[inline]
    pub(crate) fn edge_source(&self, e: EdgeId) -> Option<NodeId> {
        match &self.view {
            View::Full { cols } | View::Shard { cols, .. } => {
                if cols.edge_is_live(e.index()) {
                    Some(cols.edge_source(e))
                } else {
                    None
                }
            }
            View::Dirty { .. } => self.g.edge_endpoints(e).map(|(s, _)| s),
        }
    }

    /// A node's property by key symbol (columnar lookup or dirty-region
    /// lookup).
    #[inline]
    pub(crate) fn node_prop(&self, n: NodeId, key: Sym) -> Option<&'a Value> {
        match &self.view {
            View::Full { cols } | View::Shard { cols, .. } => cols.node_prop(n, key),
            View::Dirty { pc, .. } => pc.node_prop(n, key),
        }
    }

    /// The columnar view, when this scope has one (DS7's tuple collect
    /// interns against its value table).
    pub(crate) fn cols(&self) -> Option<&'a ColumnarGraph> {
        match &self.view {
            View::Full { cols } | View::Shard { cols, .. } => Some(cols),
            View::Dirty { .. } => None,
        }
    }

    /// The dirty node set — `Some` only under the dirty view. DS7's
    /// recheck plan uses this to move exactly the dirty nodes between
    /// key groups.
    pub(crate) fn dirty_nodes(&self) -> Option<&'a BTreeSet<NodeId>> {
        match &self.view {
            View::Dirty { nodes, .. } => Some(nodes),
            _ => None,
        }
    }

    /// Walks every `(source, edge label, edges)` out-group whose source
    /// the scope owns (WS4's groups). `f` returns `false` to stop early.
    pub(crate) fn for_out_groups(&self, f: &mut dyn FnMut(NodeId, Sym, EdgeRun<'a>) -> bool) {
        match &self.view {
            View::Full { cols } => out_groups_cols(cols, 0..cols.node_slots(), f),
            View::Shard { cols, nodes, .. } => out_groups_cols(cols, nodes.clone(), f),
            View::Dirty { pc, nodes } => {
                for (src, label, run) in pc.out_groups() {
                    if !nodes.contains(&src) {
                        continue;
                    }
                    if !f(src, label, EdgeRun::Ids(run)) {
                        return;
                    }
                }
            }
        }
    }

    /// Walks every `(source, target, edges)` parallel-edge group under
    /// `label` whose source the scope owns (DS1's groups).
    pub(crate) fn for_parallel_runs(
        &self,
        label: Sym,
        f: &mut dyn FnMut(NodeId, NodeId, EdgeRun<'a>) -> bool,
    ) {
        match &self.view {
            View::Full { cols } => parallel_runs_cols(cols, 0..cols.node_slots(), label, f),
            View::Shard { cols, nodes, .. } => parallel_runs_cols(cols, nodes.clone(), label, f),
            View::Dirty { pc, nodes } => {
                for (src, dst, run) in pc.parallel_runs(label) {
                    if !nodes.contains(&src) {
                        continue;
                    }
                    if !f(src, dst, EdgeRun::Ids(run)) {
                        return;
                    }
                }
            }
        }
    }

    /// Walks every `(target, edges)` in-group under `label` whose target
    /// the scope owns (DS3's groups).
    pub(crate) fn for_in_runs(&self, label: Sym, f: &mut dyn FnMut(NodeId, EdgeRun<'a>) -> bool) {
        match &self.view {
            View::Full { cols } => in_runs_cols(cols, 0..cols.node_slots(), label, f),
            View::Shard { cols, nodes, .. } => in_runs_cols(cols, nodes.clone(), label, f),
            View::Dirty { pc, nodes } => {
                for (dst, run) in pc.in_runs(label) {
                    if !nodes.contains(&dst) {
                        continue;
                    }
                    if !f(dst, EdgeRun::Ids(run)) {
                        return;
                    }
                }
            }
        }
    }
}

/// CSR walk behind [`Scope::for_out_groups`]: each live node slot's out
/// row, split into label runs (the row is sorted by label first).
fn out_groups_cols<'a>(
    cols: &'a ColumnarGraph,
    range: Range<usize>,
    f: &mut dyn FnMut(NodeId, Sym, EdgeRun<'a>) -> bool,
) {
    for ix in range {
        if !cols.node_is_live(ix) {
            continue;
        }
        let v = NodeId::from_index(ix);
        let row = cols.out_row(v);
        let mut start = 0;
        while start < row.len() {
            let label = cols.edge_label_sym(EdgeId::from_index(row[start] as usize));
            let mut end = start + 1;
            while end < row.len()
                && cols.edge_label_sym(EdgeId::from_index(row[end] as usize)) == label
            {
                end += 1;
            }
            if !f(v, label, EdgeRun::Raw(&row[start..end])) {
                return;
            }
            start = end;
        }
    }
}

/// CSR walk behind [`Scope::for_parallel_runs`]: each live node slot's
/// labelled out run, split into same-target runs (sorted by target
/// within a label run).
fn parallel_runs_cols<'a>(
    cols: &'a ColumnarGraph,
    range: Range<usize>,
    label: Sym,
    f: &mut dyn FnMut(NodeId, NodeId, EdgeRun<'a>) -> bool,
) {
    for ix in range {
        if !cols.node_is_live(ix) {
            continue;
        }
        let v = NodeId::from_index(ix);
        let run = cols.out_edges_labelled(v, label);
        let mut start = 0;
        while start < run.len() {
            let dst = cols.edge_target(EdgeId::from_index(run[start] as usize));
            let mut end = start + 1;
            while end < run.len() && cols.edge_target(EdgeId::from_index(run[end] as usize)) == dst
            {
                end += 1;
            }
            if !f(v, dst, EdgeRun::Raw(&run[start..end])) {
                return;
            }
            start = end;
        }
    }
}

/// CSR walk behind [`Scope::for_in_runs`]: each live node slot's
/// labelled in run (non-empty runs only — a group exists only where an
/// edge does).
fn in_runs_cols<'a>(
    cols: &'a ColumnarGraph,
    range: Range<usize>,
    label: Sym,
    f: &mut dyn FnMut(NodeId, EdgeRun<'a>) -> bool,
) {
    for ix in range {
        if !cols.node_is_live(ix) {
            continue;
        }
        let v = NodeId::from_index(ix);
        let run = cols.in_edges_labelled(v, label);
        if run.is_empty() {
            continue;
        }
        if !f(v, EdgeRun::Raw(run)) {
            return;
        }
    }
}

/// Per-rule instrumentation accumulated by a [`Sink`], handed back to
/// the planner by [`Sink::finish`].
pub(crate) struct SinkOutput {
    /// One entry per kernel that ran, in execution order.
    pub(crate) rules: Vec<RuleMetrics>,
    /// Node visits summed over all kernels.
    pub(crate) nodes_scanned: u64,
    /// Edge visits summed over all kernels.
    pub(crate) edges_scanned: u64,
}

struct SinkMetrics {
    rules: Vec<RuleMetrics>,
    nodes_scanned: u64,
    edges_scanned: u64,
    /// Elements examined by the kernel currently running.
    current: u64,
}

/// The uniform write side of every kernel: violations, `max_violations`
/// early-exit and per-rule metrics flow through here. See module docs.
pub(crate) struct Sink<'r> {
    report: &'r mut ValidationReport,
    metrics: Option<SinkMetrics>,
}

impl<'r> Sink<'r> {
    /// Wraps a report; with `collect` set, per-rule [`RuleMetrics`] are
    /// recorded around every [`rule`](Self::rule) invocation.
    pub(crate) fn new(report: &'r mut ValidationReport, collect: bool) -> Self {
        Sink {
            report,
            metrics: collect.then(|| SinkMetrics {
                rules: Vec::with_capacity(Rule::ALL.len()),
                nodes_scanned: 0,
                edges_scanned: 0,
                current: 0,
            }),
        }
    }

    /// Emits one violation (dropped, marking the report truncated, once
    /// the limit is reached).
    #[inline]
    pub(crate) fn push(&mut self, v: Violation) {
        self.report.push(v);
    }

    /// True once `max_violations` is reached — kernels return early and
    /// [`rule`](Self::rule) skips kernels entirely.
    #[inline]
    pub(crate) fn at_limit(&self) -> bool {
        self.report.at_limit()
    }

    /// Counts one node visit for the running kernel.
    #[inline]
    pub(crate) fn node_visited(&mut self) {
        if let Some(m) = &mut self.metrics {
            m.current += 1;
            m.nodes_scanned += 1;
        }
    }

    /// Counts one edge visit for the running kernel.
    #[inline]
    pub(crate) fn edge_visited(&mut self) {
        if let Some(m) = &mut self.metrics {
            m.current += 1;
            m.edges_scanned += 1;
        }
    }

    /// Counts one index-group (or per-site bucket entry) visit for the
    /// running kernel.
    #[inline]
    pub(crate) fn group_visited(&mut self) {
        if let Some(m) = &mut self.metrics {
            m.current += 1;
        }
    }

    /// Runs one kernel, timing it and attributing elements/violations to
    /// `rule` when metrics are collected. Skipped entirely once the
    /// violation limit is reached.
    pub(crate) fn rule(&mut self, rule: Rule, kernel: impl FnOnce(&mut Self)) {
        if self.at_limit() {
            return;
        }
        if self.metrics.is_none() {
            kernel(self);
            return;
        }
        if let Some(m) = &mut self.metrics {
            m.current = 0;
        }
        let before = self.report.len();
        let start = Instant::now();
        kernel(self);
        let nanos = start.elapsed().as_nanos() as u64;
        let violations = self.report.len() - before;
        if let Some(m) = &mut self.metrics {
            m.rules.push(RuleMetrics {
                rule,
                nanos,
                elements_scanned: m.current,
                violations,
            });
        }
    }

    /// Ends the sink, releasing the report borrow and handing the
    /// per-rule metrics (if collected) to the planner.
    pub(crate) fn finish(self) -> Option<SinkOutput> {
        self.metrics.map(|m| SinkOutput {
            rules: m.rules,
            nodes_scanned: m.nodes_scanned,
            edges_scanned: m.edges_scanned,
        })
    }
}

/// How a planner executes DS7 (`@key`) — the one rule whose collect and
/// emit phases engines compose differently. See module docs.
pub(crate) enum Ds7Plan<'p> {
    /// Collect and emit in one pass (serial full-graph engines).
    Inline,
    /// Map phase only: one shard-local tuple table per key is pushed for
    /// the caller's cross-shard reduce (parallel engine). Tuples are
    /// graph-global value-class ids, so equal tuples collide across
    /// shards exactly as their [`Value`] counterparts would.
    Map(&'p mut Vec<HashMap<Vec<Option<u32>>, Vec<NodeId>>>),
    /// Move the scope's dirty nodes between the persistent per-key
    /// tables and re-emit exactly the pairs they participate in
    /// (incremental engine). Requires a dirty scope.
    Recheck(&'p mut [KeyTable]),
}

/// Runs every enabled kernel over `scope` in rule order (WS1–WS4,
/// DS1–DS7, SS1–SS4), with `max_violations` early-exit between and
/// within kernels. This is the entire rule schedule; the engines differ
/// only in the scope they build and the [`Ds7Plan`] they pass.
pub(crate) fn run(
    scope: &Scope<'_, '_>,
    options: &ValidationOptions,
    sink: &mut Sink<'_>,
    ds7: Ds7Plan<'_>,
) {
    if options.weak {
        weak::ws1(scope, sink);
        weak::ws2(scope, sink);
        weak::ws3(scope, sink);
        weak::ws4(scope, sink);
    }
    if options.directives {
        directives::ds1(scope, sink);
        directives::ds2(scope, sink);
        directives::ds3(scope, sink);
        directives::ds4(scope, sink);
        directives::ds5(scope, sink);
        directives::ds6(scope, sink);
        match ds7 {
            Ds7Plan::Inline => directives::ds7(scope, sink),
            Ds7Plan::Map(tables) => directives::ds7_map(scope, sink, tables),
            Ds7Plan::Recheck(tables) => directives::ds7_recheck(scope, sink, tables),
        }
    }
    if options.strong {
        strong::ss1(scope, sink);
        strong::ss2(scope, sink);
        strong::ss3(scope, sink);
        strong::ss4(scope, sink);
    }
}
