//! The indexed validation engine — a thin planner over the rule kernels.
//!
//! One `O(|V| + |E|)` pass freezes the graph into a
//! [`ColumnarGraph`](pgraph::ColumnarGraph) (interned symbols,
//! struct-of-arrays element tables, CSR adjacency in both directions plus
//! a label-index CSR) and compiles the schema onto the same symbol space
//! ([`SymSchema`](crate::rules::symschema::SymSchema)); the
//! [`rules`](crate::rules) layer then evaluates every enabled kernel over
//! a whole-graph [`Scope`](crate::rules::Scope):
//!
//! * WS1/SS1/SS2 are single contiguous scans over the node columns,
//! * WS2/WS3/DS2/SS3/SS4 are single contiguous scans over the edge
//!   columns,
//! * WS4/DS1/DS3 walk label/target runs of the CSR rows,
//! * DS4–DS6 scan label buckets of the label-index CSR,
//! * DS7 builds one hash map from value-class-id key tuples to nodes per
//!   `@key` ([`Ds7Plan::Inline`]).
//!
//! The result is near-linear in `|V| + |E|` for a fixed schema — the
//! practical counterpart of the paper's AC0/`O(n²)` analysis — and is
//! property-tested to agree violation-for-violation with the naive
//! engine.

use std::time::Instant;

use pgraph::{ColumnarGraph, PropertyGraph};

use crate::metrics::MetricsRecorder;
use crate::pgschema::PgSchema;
use crate::report::ValidationReport;
use crate::rules::symschema::SymSchema;
use crate::rules::{self, Ds7Plan, Scope, Sink};
use crate::ValidationOptions;

pub(crate) fn run(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
) -> ValidationReport {
    run_named(g, s, options, "indexed")
}

/// The full indexed pass under a caller-chosen engine name — the
/// incremental engine's seeding run and the stateless
/// `Engine::Incremental` path report themselves as `"incremental"` while
/// running exactly this code.
pub(crate) fn run_named(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
    engine_name: &'static str,
) -> ValidationReport {
    let mut r = ValidationReport::with_limit(options.max_violations);
    let mut rec = MetricsRecorder::new(options.collect_metrics, engine_name, 1);

    // Freeze first, compile second: the symbol table must hold every
    // graph-side string before the SymSchema sizes its per-symbol rows.
    let start = Instant::now();
    let mut cols = ColumnarGraph::freeze(g);
    let ss = SymSchema::build(s, cols.symbols_mut());
    rec.index_build(start.elapsed().as_nanos() as u64);

    let scope = Scope::full(g, s, &ss, &cols);
    let mut sink = Sink::new(&mut r, options.collect_metrics);
    rules::run(&scope, options, &mut sink, Ds7Plan::Inline);
    rec.absorb(sink.finish());

    rec.finish(&mut r);
    r
}
