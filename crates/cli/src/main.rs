//! `pgschema` — command-line front-end for SDL-based Property Graph
//! schemas.
//!
//! ```text
//! pgschema validate <schema.graphql> <graph.json> [--engine naive|indexed] [--weak-only]
//! pgschema consistency <schema.graphql>
//! pgschema check-sat <schema.graphql> <TypeName> [--max-size K]
//! pgschema generate <schema.graphql> [--nodes N] [--seed S] [--out FILE]
//! pgschema reduce-sat <formula.cnf> [--out FILE]
//! pgschema describe <schema.graphql>
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pgschema: {e}");
            ExitCode::FAILURE
        }
    }
}
