//! Validation reports: which rule failed, where, and why.

use std::collections::BTreeMap;
use std::fmt;

use pgraph::{EdgeId, NodeId};

/// The fifteen rules of Definitions 5.1–5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Rule {
    WS1,
    WS2,
    WS3,
    WS4,
    DS1,
    DS2,
    DS3,
    DS4,
    DS5,
    DS6,
    DS7,
    SS1,
    SS2,
    SS3,
    SS4,
}

impl Rule {
    /// All rules in definition order.
    pub const ALL: [Rule; 15] = [
        Rule::WS1,
        Rule::WS2,
        Rule::WS3,
        Rule::WS4,
        Rule::DS1,
        Rule::DS2,
        Rule::DS3,
        Rule::DS4,
        Rule::DS5,
        Rule::DS6,
        Rule::DS7,
        Rule::SS1,
        Rule::SS2,
        Rule::SS3,
        Rule::SS4,
    ];

    /// Which of the three satisfaction notions the rule belongs to.
    pub fn family(self) -> RuleFamily {
        match self {
            Rule::WS1 | Rule::WS2 | Rule::WS3 | Rule::WS4 => RuleFamily::Weak,
            Rule::DS1
            | Rule::DS2
            | Rule::DS3
            | Rule::DS4
            | Rule::DS5
            | Rule::DS6
            | Rule::DS7 => RuleFamily::Directives,
            Rule::SS1 | Rule::SS2 | Rule::SS3 | Rule::SS4 => RuleFamily::Strong,
        }
    }

    /// The paper's one-line gloss for the rule.
    pub fn gloss(self) -> &'static str {
        match self {
            Rule::WS1 => "node properties must be of the required type",
            Rule::WS2 => "edge properties must be of the required type",
            Rule::WS3 => "target nodes must be of the required type",
            Rule::WS4 => "non-list fields contain at most one edge",
            Rule::DS1 => "edges identified by nodes and label (@distinct)",
            Rule::DS2 => "no loops (@noLoops)",
            Rule::DS3 => "target has at most one incoming edge (@uniqueForTarget)",
            Rule::DS4 => "target has at least one incoming edge (@requiredForTarget)",
            Rule::DS5 => "property is required (@required)",
            Rule::DS6 => "edge is required (@required)",
            Rule::DS7 => "keys (@key)",
            Rule::SS1 => "all nodes are justified",
            Rule::SS2 => "all node properties are justified",
            Rule::SS3 => "all edge properties are justified",
            Rule::SS4 => "all edges are justified",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The three satisfaction notions of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleFamily {
    /// Definition 5.1 (weak schema satisfaction).
    Weak,
    /// Definition 5.2 (directives satisfaction).
    Directives,
    /// The additional justification rules of Definition 5.3.
    Strong,
}

/// One violation of one rule, with enough context to locate and explain it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Violation {
    /// WS1: a node property value is outside `valuesW` of its declared type.
    NodePropertyType {
        /// The node.
        node: NodeId,
        /// The property/field name.
        field: String,
        /// Rendered offending value.
        value: String,
        /// Rendered declared type.
        expected: String,
    },
    /// WS2: an edge property value is outside `valuesW` of its declared
    /// argument type.
    EdgePropertyType {
        /// The edge.
        edge: EdgeId,
        /// The property/argument name.
        prop: String,
        /// Rendered offending value.
        value: String,
        /// Rendered declared type.
        expected: String,
    },
    /// WS3: an edge's target node label is not a subtype of the field's
    /// base type.
    EdgeTargetType {
        /// The edge.
        edge: EdgeId,
        /// The target node.
        target: NodeId,
        /// The target's label.
        target_label: String,
        /// Rendered expected base type.
        expected: String,
    },
    /// WS4: more than one outgoing edge for a non-list relationship field.
    NonListFieldMultiEdge {
        /// The source node.
        source: NodeId,
        /// The edge label / field name.
        field: String,
        /// How many outgoing edges were found.
        count: usize,
    },
    /// DS1: two parallel edges between the same endpoints with the same
    /// label under `@distinct`.
    DistinctViolated {
        /// The source node.
        source: NodeId,
        /// The target node.
        target: NodeId,
        /// The edge label.
        field: String,
        /// Number of parallel edges.
        count: usize,
    },
    /// DS2: a self-loop under `@noLoops`.
    LoopViolated {
        /// The node with the loop.
        node: NodeId,
        /// The edge label.
        field: String,
    },
    /// DS3: a target with multiple incoming edges under `@uniqueForTarget`.
    UniqueForTargetViolated {
        /// The target node.
        target: NodeId,
        /// The edge label.
        field: String,
        /// Number of incoming edges.
        count: usize,
    },
    /// DS4: a target with no incoming edge under `@requiredForTarget`.
    RequiredForTargetViolated {
        /// The node missing an incoming edge.
        target: NodeId,
        /// The edge label.
        field: String,
        /// The name of the type carrying the constraint.
        site: String,
    },
    /// DS5: a missing (or empty-list) required property.
    RequiredPropertyMissing {
        /// The node.
        node: NodeId,
        /// The property name.
        field: String,
        /// True if the property exists but is an empty list (clause 2 of
        /// DS5).
        empty_list: bool,
    },
    /// DS6: a missing required outgoing edge.
    RequiredEdgeMissing {
        /// The source node.
        node: NodeId,
        /// The edge label.
        field: String,
    },
    /// DS7: two distinct nodes agreeing on a key.
    KeyViolated {
        /// First node.
        a: NodeId,
        /// Second node.
        b: NodeId,
        /// The constrained type's name.
        ty: String,
        /// The key's property names.
        fields: Vec<String>,
    },
    /// SS1: a node label that is not an object type of the schema.
    UnjustifiedNode {
        /// The node.
        node: NodeId,
        /// Its label.
        label: String,
    },
    /// SS2: a node property not backed by an attribute definition.
    UnjustifiedNodeProperty {
        /// The node.
        node: NodeId,
        /// The property name.
        prop: String,
    },
    /// SS3: an edge property not backed by a (scalar-based) argument
    /// definition.
    UnjustifiedEdgeProperty {
        /// The edge.
        edge: EdgeId,
        /// The property name.
        prop: String,
    },
    /// SS4: an edge not backed by a relationship definition.
    UnjustifiedEdge {
        /// The edge.
        edge: EdgeId,
        /// The edge label.
        label: String,
        /// The source node's label.
        source_label: String,
    },
}

impl Violation {
    /// The rule this violation belongs to.
    pub fn rule(&self) -> Rule {
        match self {
            Violation::NodePropertyType { .. } => Rule::WS1,
            Violation::EdgePropertyType { .. } => Rule::WS2,
            Violation::EdgeTargetType { .. } => Rule::WS3,
            Violation::NonListFieldMultiEdge { .. } => Rule::WS4,
            Violation::DistinctViolated { .. } => Rule::DS1,
            Violation::LoopViolated { .. } => Rule::DS2,
            Violation::UniqueForTargetViolated { .. } => Rule::DS3,
            Violation::RequiredForTargetViolated { .. } => Rule::DS4,
            Violation::RequiredPropertyMissing { .. } => Rule::DS5,
            Violation::RequiredEdgeMissing { .. } => Rule::DS6,
            Violation::KeyViolated { .. } => Rule::DS7,
            Violation::UnjustifiedNode { .. } => Rule::SS1,
            Violation::UnjustifiedNodeProperty { .. } => Rule::SS2,
            Violation::UnjustifiedEdgeProperty { .. } => Rule::SS3,
            Violation::UnjustifiedEdge { .. } => Rule::SS4,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.rule())?;
        match self {
            Violation::NodePropertyType {
                node,
                field,
                value,
                expected,
            } => write!(f, "{node}.{field} = {value} does not conform to {expected}"),
            Violation::EdgePropertyType {
                edge,
                prop,
                value,
                expected,
            } => write!(f, "{edge}.{prop} = {value} does not conform to {expected}"),
            Violation::EdgeTargetType {
                edge,
                target,
                target_label,
                expected,
            } => write!(
                f,
                "{edge} points to {target} labelled {target_label:?}, expected ⊑ {expected}"
            ),
            Violation::NonListFieldMultiEdge {
                source,
                field,
                count,
            } => write!(
                f,
                "{source} has {count} outgoing {field:?} edges but the field is not list-typed"
            ),
            Violation::DistinctViolated {
                source,
                target,
                field,
                count,
            } => write!(
                f,
                "{count} parallel {field:?} edges {source} → {target} under @distinct"
            ),
            Violation::LoopViolated { node, field } => {
                write!(f, "self-loop {field:?} on {node} under @noLoops")
            }
            Violation::UniqueForTargetViolated {
                target,
                field,
                count,
            } => write!(
                f,
                "{target} has {count} incoming {field:?} edges under @uniqueForTarget"
            ),
            Violation::RequiredForTargetViolated { target, field, site } => write!(
                f,
                "{target} lacks an incoming {field:?} edge required by {site} (@requiredForTarget)"
            ),
            Violation::RequiredPropertyMissing {
                node,
                field,
                empty_list,
            } => {
                if *empty_list {
                    write!(f, "{node}.{field} is required but is an empty list")
                } else {
                    write!(f, "{node} lacks required property {field:?}")
                }
            }
            Violation::RequiredEdgeMissing { node, field } => {
                write!(f, "{node} lacks required outgoing {field:?} edge")
            }
            Violation::KeyViolated { a, b, ty, fields } => write!(
                f,
                "nodes {a} and {b} of type {ty} agree on key ({})",
                fields.join(", ")
            ),
            Violation::UnjustifiedNode { node, label } => {
                write!(f, "{node} has label {label:?} which is not an object type")
            }
            Violation::UnjustifiedNodeProperty { node, prop } => {
                write!(f, "{node} has unjustified property {prop:?}")
            }
            Violation::UnjustifiedEdgeProperty { edge, prop } => {
                write!(f, "{edge} has unjustified property {prop:?}")
            }
            Violation::UnjustifiedEdge {
                edge,
                label,
                source_label,
            } => write!(
                f,
                "{edge} labelled {label:?} is not a relationship of source type {source_label:?}"
            ),
        }
    }
}

/// The outcome of a validation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    violations: Vec<Violation>,
}

impl ValidationReport {
    /// Creates a report from raw violations (engines use this).
    pub fn new(violations: Vec<Violation>) -> Self {
        ValidationReport { violations }
    }

    /// Adds one violation.
    pub fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// True iff no rule is violated — the graph satisfies the schema at
    /// the checked level.
    pub fn conforms(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations of one rule.
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(move |v| v.rule() == rule)
    }

    /// Violation counts per rule (only rules that fired).
    pub fn counts(&self) -> BTreeMap<Rule, usize> {
        let mut out = BTreeMap::new();
        for v in &self.violations {
            *out.entry(v.rule()).or_insert(0) += 1;
        }
        out
    }

    /// Sorts and deduplicates, so reports from different engines compare
    /// equal.
    pub fn canonicalize(&mut self) {
        self.violations.sort();
        self.violations.dedup();
    }

    /// Renders the report as a JSON document for machine consumption
    /// (CI pipelines via `pgschema validate --json`):
    ///
    /// ```json
    /// {"conforms": false, "violations": [
    ///     {"rule": "WS1", "family": "weak", "message": "…"}]}
    /// ```
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32))
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = format!("{{\"conforms\": {}, \"violations\": [", self.conforms());
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let family = match v.rule().family() {
                RuleFamily::Weak => "weak",
                RuleFamily::Directives => "directives",
                RuleFamily::Strong => "strong",
            };
            out.push_str(&format!(
                "{{\"rule\": \"{}\", \"family\": \"{family}\", \"message\": \"{}\"}}",
                v.rule(),
                esc(&v.to_string())
            ));
        }
        out.push_str("]}");
        out
    }

    /// Total number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// True if there are no violations.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conforms() {
            return writeln!(f, "graph strongly satisfies the schema");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_partition_into_families() {
        assert_eq!(
            Rule::ALL
                .iter()
                .filter(|r| r.family() == RuleFamily::Weak)
                .count(),
            4
        );
        assert_eq!(
            Rule::ALL
                .iter()
                .filter(|r| r.family() == RuleFamily::Directives)
                .count(),
            7
        );
        assert_eq!(
            Rule::ALL
                .iter()
                .filter(|r| r.family() == RuleFamily::Strong)
                .count(),
            4
        );
        for r in Rule::ALL {
            assert!(!r.gloss().is_empty());
        }
    }

    #[test]
    fn report_counts_and_canonicalization() {
        let v1 = Violation::UnjustifiedNode {
            node: NodeId::from_index(1),
            label: "X".into(),
        };
        let v0 = Violation::UnjustifiedNode {
            node: NodeId::from_index(0),
            label: "X".into(),
        };
        let mut r = ValidationReport::new(vec![v1.clone(), v0.clone(), v1.clone()]);
        r.canonicalize();
        assert_eq!(r.len(), 2);
        assert_eq!(r.violations()[0], v0);
        assert_eq!(r.counts()[&Rule::SS1], 2);
        assert!(!r.conforms());
        assert!(r.to_string().contains("SS1"));
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut r = ValidationReport::default();
        assert_eq!(r.to_json(), "{\"conforms\": true, \"violations\": []}");
        r.push(Violation::UnjustifiedNodeProperty {
            node: NodeId::from_index(0),
            prop: "we\"ird\nname".into(),
        });
        let json = r.to_json();
        assert!(json.contains("\"conforms\": false"), "{json}");
        assert!(json.contains("\"rule\": \"SS2\""), "{json}");
        assert!(json.contains("\"family\": \"strong\""), "{json}");
        // The Display message debug-quotes the property name; the JSON
        // escaper then escapes those characters again.
        assert!(json.contains(r#"we\\\"ird\\nname"#), "{json}");
        // Must itself be valid JSON: cheap structural check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn display_of_each_violation_mentions_its_rule() {
        let samples: Vec<Violation> = vec![
            Violation::NodePropertyType {
                node: NodeId::from_index(0),
                field: "f".into(),
                value: "3".into(),
                expected: "String".into(),
            },
            Violation::KeyViolated {
                a: NodeId::from_index(0),
                b: NodeId::from_index(1),
                ty: "User".into(),
                fields: vec!["id".into()],
            },
            Violation::UnjustifiedEdge {
                edge: EdgeId::from_index(0),
                label: "rel".into(),
                source_label: "A".into(),
            },
        ];
        for v in samples {
            let text = v.to_string();
            assert!(text.contains(&v.rule().to_string()), "{text}");
        }
    }
}
