//! Satisfiability of the remaining schema components (§6.2, closing
//! paragraph):
//!
//! > "The satisfiability of interface and union types is directly linked
//! > to the satisfiability of their implementing object types and union
//! > components. The satisfiability problem for properties is trivial
//! > because of the consistency requirements. Finally, the satisfiability
//! > of edge definitions is reducible to the problem of type
//! > satisfiability: add the @required to the field definition and check
//! > if the type of the field definition is satisfiable."

use gql_sdl::ast::{ConstValue, Definition, DirectiveUse, Document, TypeDef};
use gql_sdl::{Pos, Span};
use pg_schema::PgSchema;

use crate::{check_object_type, ReasonerConfig, Satisfiability};

/// Satisfiability for *any* named type: object types directly; interface
/// and union types via their implementors/members (satisfiable iff some
/// member is); scalar types are trivially satisfiable (a lone node with a
/// property cannot even mention them — we report the best fitting member
/// semantics: a scalar is "populated" by any property using it, which
/// consistency makes trivially possible).
pub fn check_type_satisfiable(
    schema: &PgSchema,
    type_name: &str,
    config: &ReasonerConfig,
) -> Satisfiability {
    let s = schema.schema();
    let Some(t) = s.type_id(type_name) else {
        return Satisfiability::Unsatisfiable;
    };
    if s.is_object(t) {
        return check_object_type(schema, type_name, config);
    }
    let members: Vec<&str> = if s.interface_type(t).is_some() {
        s.implementors(t).iter().map(|&m| s.type_name(m)).collect()
    } else if !s.union_members(t).is_empty() {
        s.union_members(t).iter().map(|&m| s.type_name(m)).collect()
    } else {
        // Scalar/enum: trivially satisfiable (paper: "trivial because of
        // the consistency requirements"). Witness: the empty graph plus
        // nothing — represent with a one-node-free witness if any object
        // type exists, else an empty graph.
        return Satisfiability::Satisfiable {
            witness: pgraph::PropertyGraph::new(),
            size: 0,
        };
    };
    let mut best: Option<Satisfiability> = None;
    for m in members {
        match check_object_type(schema, m, config) {
            sat @ Satisfiability::Satisfiable { .. } => return sat,
            Satisfiability::Unsatisfiable => {
                best.get_or_insert(Satisfiability::Unsatisfiable);
            }
            inconclusive @ Satisfiability::NoFiniteModelFound { .. } => {
                best = Some(inconclusive);
            }
        }
    }
    best.unwrap_or(Satisfiability::Unsatisfiable)
}

/// Satisfiability of an *edge definition* `(type_name, field_name)` — the
/// paper's reduction: force the field with `@required` and ask whether
/// the *source* type is satisfiable (every witness then contains an
/// instance of the edge).
///
/// Operates on the SDL document so the directive can be inserted
/// faithfully.
pub fn check_field_satisfiable(
    doc: &Document,
    type_name: &str,
    field_name: &str,
    config: &ReasonerConfig,
) -> Result<Satisfiability, String> {
    let mut doc = doc.clone();
    let mut found = false;
    for def in &mut doc.definitions {
        let Definition::Type(td) = def else { continue };
        let fields = match td {
            TypeDef::Object(o) if o.name == type_name => &mut o.fields,
            TypeDef::Interface(i) if i.name == type_name => &mut i.fields,
            _ => continue,
        };
        for f in fields {
            if f.name == field_name {
                found = true;
                if !f.directives.iter().any(|d| d.name == "required") {
                    f.directives.push(DirectiveUse {
                        name: "required".to_owned(),
                        args: Vec::<(String, ConstValue)>::new(),
                        span: Span::at(Pos::start()),
                    });
                }
            }
        }
    }
    if !found {
        return Err(format!("no field {type_name}.{field_name} in the document"));
    }
    let schema = PgSchema::from_document(&doc).map_err(|e| e.to_string())?;
    // For an interface-sited field, any implementor carrying the required
    // edge suffices; check_type_satisfiable handles both cases.
    Ok(check_type_satisfiable(&schema, type_name, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ReasonerConfig {
        ReasonerConfig::default()
    }

    #[test]
    fn interface_satisfiable_iff_some_implementor_is() {
        let schema = PgSchema::parse(
            r#"
            interface I { x: Int }
            type A implements I { x: Int }
            type B implements I { x: Int }
            "#,
        )
        .unwrap();
        assert!(check_type_satisfiable(&schema, "I", &cfg()).is_satisfiable());
    }

    #[test]
    fn interface_with_no_implementors_is_unsatisfiable() {
        let schema = PgSchema::parse("interface I { x: Int } type A { x: Int }").unwrap();
        assert!(check_type_satisfiable(&schema, "I", &cfg()).is_unsatisfiable());
    }

    #[test]
    fn union_satisfiability_via_members() {
        let schema = PgSchema::parse(
            r#"
            union U = A | B
            type A { x: Int }
            type B { x: Int }
            "#,
        )
        .unwrap();
        assert!(check_type_satisfiable(&schema, "U", &cfg()).is_satisfiable());
    }

    #[test]
    fn union_of_unsatisfiable_members_is_unsatisfiable() {
        // Every A needs an incoming edge from a B and vice versa, with
        // uniqueness forcing the conflict of diagram (c).
        let schema = PgSchema::parse(
            r#"
            type OT1 { }
            interface IT { f: [OT1] @uniqueForTarget }
            type OT2 implements IT { f: [OT1] @required }
            type OT3 implements IT { f: [OT1] @requiredForTarget }
            union U = OT2
            "#,
        )
        .unwrap();
        assert!(check_type_satisfiable(&schema, "U", &cfg()).is_unsatisfiable());
    }

    #[test]
    fn unknown_type_is_unsatisfiable() {
        let schema = PgSchema::parse("type A { x: Int }").unwrap();
        assert!(check_type_satisfiable(&schema, "Ghost", &cfg()).is_unsatisfiable());
    }

    #[test]
    fn scalars_are_trivially_satisfiable() {
        let schema = PgSchema::parse("scalar Time type A { t: Time }").unwrap();
        assert!(check_type_satisfiable(&schema, "Time", &cfg()).is_satisfiable());
    }

    #[test]
    fn field_satisfiability_follows_the_paper_recipe() {
        let doc = gql_sdl::parse(
            r#"
            type A { toB: B }
            type B { x: Int }
            "#,
        )
        .unwrap();
        // A.toB is satisfiable: a witness with the edge exists.
        let sat = check_field_satisfiable(&doc, "A", "toB", &cfg()).unwrap();
        let Satisfiability::Satisfiable { witness, .. } = sat else {
            panic!("expected satisfiable, got {sat:?}");
        };
        assert!(witness.edges().any(|e| e.label() == "toB"));
    }

    #[test]
    fn field_on_unsatisfiable_source_type_is_unsatisfiable() {
        let doc = gql_sdl::parse(
            r#"
            type OT1 { }
            interface IT { f: [OT1] @uniqueForTarget }
            type OT2 implements IT { f: [OT1] @required }
            type OT3 implements IT { f: [OT1] @requiredForTarget }
            "#,
        )
        .unwrap();
        // OT2 itself is unsatisfiable (diagram (c)), hence so is its
        // edge definition.
        let sat = check_field_satisfiable(&doc, "OT2", "f", &cfg()).unwrap();
        assert!(sat.is_unsatisfiable());
    }

    #[test]
    fn unsatisfiable_edge_on_satisfiable_type() {
        // C.toD is declared but D requires an incoming edge from E, and E
        // can never exist (E needs an incoming from a Ghost-like
        // unsatisfiable chain)… simpler: D is only reachable via toD but
        // D itself is fine; instead make the edge unsatisfiable by making
        // its target type unsatisfiable.
        let doc = gql_sdl::parse(
            r#"
            type C { toD: D }
            type D { back: [C] @required @uniqueForTarget f: [D1] @required }
            type D1 { }
            interface IT { f: [D1] @uniqueForTarget }
            type D2 implements IT { f: [D1] @requiredForTarget }
            type D3 implements IT { f: [D1] @requiredForTarget }
            "#,
        )
        .unwrap();
        // D requires an f-edge to a D1, but any D1 node needs incoming f
        // from both a D2 and a D3 (diagram (a)) — impossible. So no D can
        // exist, and C.toD is unsatisfiable even though C is satisfiable.
        let sat = check_field_satisfiable(&doc, "C", "toD", &cfg()).unwrap();
        assert!(!sat.is_satisfiable(), "{sat:?}");
        let schema = PgSchema::from_document(&doc).unwrap();
        assert!(check_type_satisfiable(&schema, "C", &cfg()).is_satisfiable());
    }

    #[test]
    fn missing_field_is_an_error() {
        let doc = gql_sdl::parse("type A { x: Int }").unwrap();
        assert!(check_field_satisfiable(&doc, "A", "ghost", &cfg()).is_err());
        assert!(check_field_satisfiable(&doc, "Ghost", "x", &cfg()).is_err());
    }
}
