//! The parallel validation engine — a sharding planner over the rule
//! kernels.
//!
//! Freezes the graph into a [`ColumnarGraph`] once, serially, compiles
//! the schema onto its symbol space, then partitions the node and edge
//! slot spaces into one contiguous shard per worker
//! ([`pgraph::shard::GraphShards`] supplies the ranges) and runs the
//! shared rule kernels ([`crate::rules`]) shard-locally on scoped
//! threads ([`std::thread::scope`] — no dependencies beyond std). Each
//! worker evaluates every kernel over a shard [`Scope`] — a contiguous
//! slice of the shared columnar tables — which assigns work so every
//! violation is produced by exactly one worker:
//!
//! * element-local rules (WS1–WS3, DS2, DS5, DS6, SS1–SS4) run over the
//!   shard's own live nodes and edges;
//! * group-keyed rules read the shared CSR rows but only process groups
//!   whose key element the shard owns — WS4 and DS1 key on the source
//!   node, DS3 and DS4 on the target node;
//! * the one genuinely cross-shard rule, `@key` (DS7), is split
//!   map-reduce style ([`Ds7Plan::Map`]): each worker builds shard-local
//!   key-tuple tables over graph-global value-class ids, the main thread
//!   merges them (tables from disjoint shards merge by appending node
//!   lists — equal tuples carry equal ids regardless of shard) and emits
//!   the violations in one pass.
//!
//! Workers never synchronise: columnar view and schema are borrowed
//! immutably and each worker writes its own [`ValidationReport`].
//! Reports are merged in shard order and canonicalised by the caller,
//! so the outcome is deterministic for any thread count and agrees
//! violation-for-violation with the serial engines (property-tested
//! three ways in `tests/engine_agreement.rs`). Per-rule metrics merge as
//! the critical path: wall time is the slowest worker's, elements and
//! violations are summed, and the DS7 entry additionally absorbs the
//! reduce.

use std::collections::HashMap;
use std::thread;
use std::time::Instant;

use pgraph::shard::GraphShards;
use pgraph::{ColumnarGraph, NodeId, PropertyGraph};

use crate::metrics::MetricsRecorder;
use crate::pgschema::PgSchema;
use crate::report::{Rule, RuleMetrics, ValidationReport};
use crate::rules::symschema::SymSchema;
use crate::rules::{self, directives, Ds7Plan, Scope, Sink};
use crate::ValidationOptions;

/// Upper bound on workers — far above any plausible CPU count, it only
/// guards against absurd `--threads` requests spawning thousands of OS
/// threads.
const MAX_THREADS: usize = 256;

fn effective_threads(requested: usize) -> usize {
    let t = if requested == 0 {
        thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    } else {
        requested
    };
    t.clamp(1, MAX_THREADS)
}

/// What one worker sends back: its shard-local report, per-rule metrics,
/// the shard-local DS7 key tables (one per `@key`, in schema order,
/// tuples as value-class ids), and its scan counters.
struct WorkerOutput {
    report: ValidationReport,
    rules: Vec<RuleMetrics>,
    key_tables: Vec<HashMap<Vec<Option<u32>>, Vec<NodeId>>>,
    nodes_scanned: u64,
    edges_scanned: u64,
    elements: u64,
}

pub(crate) fn run(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
) -> ValidationReport {
    let threads = effective_threads(options.threads);
    let mut rec = MetricsRecorder::new(options.collect_metrics, "parallel", threads);

    // The columnar view is frozen once, serially, and shared read-only
    // by all workers (same O(|V| + |E|) pass as the indexed engine).
    // Freeze before compiling the schema so the symbol table covers
    // every graph-side string.
    let start = Instant::now();
    let mut cols = ColumnarGraph::freeze(g);
    let ss = SymSchema::build(s, cols.symbols_mut());
    rec.index_build(start.elapsed().as_nanos() as u64);

    let shards = GraphShards::new(g, threads);
    let outputs: Vec<WorkerOutput> = thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let (cols, ss) = (&cols, &ss);
                scope.spawn(move || worker(g, s, cols, ss, options, shard))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("validation worker panicked"))
            .collect()
    });

    merge(&ss, options, outputs, rec)
}

fn worker(
    g: &PropertyGraph,
    s: &PgSchema,
    cols: &ColumnarGraph,
    ss: &SymSchema,
    options: &ValidationOptions,
    shard: pgraph::shard::GraphShard<'_>,
) -> WorkerOutput {
    let mut r = ValidationReport::with_limit(options.max_violations);
    let mut key_tables = Vec::new();

    let scope = Scope::shard(g, s, ss, cols, shard.node_range(), shard.edge_range());
    let mut sink = Sink::new(&mut r, options.collect_metrics);
    rules::run(&scope, options, &mut sink, Ds7Plan::Map(&mut key_tables));
    let out = sink.finish();

    let (rules, nodes_scanned, edges_scanned) = match out {
        Some(o) => (o.rules, o.nodes_scanned, o.edges_scanned),
        None => (Vec::new(), 0, 0),
    };
    let elements = if options.collect_metrics {
        (shard.node_count() + shard.edge_count()) as u64
    } else {
        0
    };
    WorkerOutput {
        report: r,
        rules,
        key_tables,
        nodes_scanned,
        edges_scanned,
        elements,
    }
}

/// Merges the worker outputs in shard order: violations first, then the
/// DS7 reduce, then the metrics (per-rule wall time is the slowest
/// worker — the critical path — with the reduce time and violations
/// added to the DS7 entry).
fn merge(
    ss: &SymSchema,
    options: &ValidationOptions,
    mut outputs: Vec<WorkerOutput>,
    mut rec: MetricsRecorder,
) -> ValidationReport {
    let mut merged = ValidationReport::with_limit(options.max_violations);
    let mut worker_truncated = false;
    let mut elements = Vec::with_capacity(outputs.len());
    let mut nodes_scanned = 0u64;
    let mut edges_scanned = 0u64;
    for out in &mut outputs {
        worker_truncated |= out.report.truncated();
        for v in out.report.take_violations() {
            merged.push(v);
        }
        nodes_scanned += out.nodes_scanned;
        edges_scanned += out.edges_scanned;
        elements.push(out.elements);
    }

    // DS7 reduce: merge the shard-local key tables (value-class-id
    // tuples are graph-global, so equal tuples collide), then emit as
    // the serial engine would.
    let start = Instant::now();
    let mut ds7_violations = 0;
    if options.directives {
        let before = merged.len();
        for (ki, key) in ss.keys.iter().enumerate() {
            let mut table: HashMap<Vec<Option<u32>>, Vec<NodeId>> = HashMap::new();
            for out in &mut outputs {
                if let Some(local) = out.key_tables.get_mut(ki) {
                    for (tuple, mut nodes) in local.drain() {
                        table.entry(tuple).or_default().append(&mut nodes);
                    }
                }
            }
            directives::ds7_emit(&key.ty_name, &key.fields, table, &mut merged);
        }
        ds7_violations = merged.len() - before;
    }
    let reduce_nanos = start.elapsed().as_nanos() as u64;

    if worker_truncated {
        merged.set_truncated(true);
    }

    if options.collect_metrics {
        let mut rules_merged: Vec<RuleMetrics> = Vec::new();
        for rule in Rule::ALL {
            let per_worker: Vec<&RuleMetrics> = outputs
                .iter()
                .flat_map(|o| o.rules.iter())
                .filter(|m| m.rule == rule)
                .collect();
            if per_worker.is_empty() {
                continue;
            }
            rules_merged.push(RuleMetrics {
                rule,
                nanos: per_worker.iter().map(|m| m.nanos).max().unwrap_or(0),
                elements_scanned: per_worker.iter().map(|m| m.elements_scanned).sum(),
                violations: per_worker.iter().map(|m| m.violations).sum(),
            });
        }
        if options.directives {
            match rules_merged.iter_mut().find(|m| m.rule == Rule::DS7) {
                Some(m) => {
                    m.nanos += reduce_nanos;
                    m.violations += ds7_violations;
                }
                // All workers early-exited before DS7: attribute the
                // reduce alone, keeping rule order.
                None => {
                    let at = rules_merged
                        .iter()
                        .position(|m| m.rule > Rule::DS7)
                        .unwrap_or(rules_merged.len());
                    rules_merged.insert(
                        at,
                        RuleMetrics {
                            rule: Rule::DS7,
                            nanos: reduce_nanos,
                            elements_scanned: 0,
                            violations: ds7_violations,
                        },
                    );
                }
            }
        }
        rec.rules_record(rules_merged);
    }
    rec.scanned(nodes_scanned, edges_scanned);
    rec.shard_elements(elements);
    rec.finish(&mut merged);
    merged
}

#[cfg(test)]
mod tests {
    use pgraph::{GraphBuilder, PropertyGraph, Value};

    use crate::report::Rule;
    use crate::{validate, Engine, PgSchema, ValidationOptions};

    fn schema() -> PgSchema {
        let doc = gql_sdl::parse(
            r#"
            type User @key(fields: ["login"]) {
                login: String! @required
                follows: [User] @noLoops
                bestFriend: User
            }
            "#,
        )
        .unwrap();
        PgSchema::from_document(&doc).unwrap()
    }

    /// A graph whose defects span the whole id space, so any shard split
    /// cuts through violation groups.
    fn defective_graph(n: usize) -> PropertyGraph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            let id = format!("u{i}");
            b = b.node(&id, "User");
            // Duplicate logins (DS7 pairs across distant ids), a missing
            // one every 7th node (DS5), a mistyped one every 11th (WS1).
            if i % 7 != 0 {
                if i % 11 == 0 {
                    b = b.prop(&id, "login", Value::Int(9));
                } else {
                    b = b.prop(&id, "login", format!("login-{}", i % 5));
                }
            }
        }
        for i in 0..n {
            // Self-loops every 13th node (DS2), stray labels (SS4).
            if i % 13 == 0 {
                b = b.edge(format!("u{i}"), format!("u{i}"), "follows");
            }
            if i % 17 == 0 {
                b = b.edge(format!("u{i}"), format!("u{}", (i + 1) % n), "mystery");
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn parallel_matches_indexed_across_thread_counts() {
        let s = schema();
        let g = defective_graph(120);
        let expected = validate(&g, &s, &ValidationOptions::default());
        assert!(!expected.conforms());
        for threads in [1, 2, 3, 8, 64] {
            let opts = ValidationOptions::builder()
                .engine(Engine::Parallel)
                .threads(threads)
                .build();
            let got = validate(&g, &s, &opts);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_collects_metrics() {
        let s = schema();
        let g = defective_graph(60);
        let opts = ValidationOptions::builder()
            .engine(Engine::Parallel)
            .threads(4)
            .collect_metrics(true)
            .build();
        let report = validate(&g, &s, &opts);
        let m = report.metrics().expect("metrics requested");
        assert_eq!(m.engine, "parallel");
        assert_eq!(m.threads, 4);
        assert_eq!(m.shard_elements.len(), 4);
        assert_eq!(
            m.shard_elements.iter().sum::<u64>(),
            (g.node_count() + g.edge_count()) as u64
        );
        assert!(m.nodes_scanned >= g.node_count() as u64);
        assert_eq!(m.families.len(), 3);
        assert!(m.shard_skew().unwrap() >= 1.0);
        // One merged entry per rule, in rule order, with violations
        // attributed to the right rule across shards.
        assert_eq!(m.rules.len(), Rule::ALL.len());
        assert!(m.rules.windows(2).all(|w| w[0].rule < w[1].rule));
        let by_rule = |rule| m.rules.iter().find(|r| r.rule == rule).unwrap();
        assert_eq!(
            by_rule(Rule::DS7).violations,
            report.by_rule(Rule::DS7).count()
        );
        assert_eq!(
            by_rule(Rule::DS5).violations,
            report.by_rule(Rule::DS5).count()
        );
    }

    #[test]
    fn parallel_honors_max_violations() {
        let s = schema();
        let g = defective_graph(120);
        let opts = ValidationOptions::builder()
            .engine(Engine::Parallel)
            .threads(4)
            .max_violations(5)
            .build();
        let report = validate(&g, &s, &opts);
        assert!(report.truncated());
        assert!(report.len() <= 5);
        assert!(!report.conforms());
    }

    #[test]
    fn zero_threads_means_auto() {
        let s = schema();
        let g = defective_graph(30);
        let opts = ValidationOptions::builder()
            .engine(Engine::Parallel)
            .build();
        assert_eq!(
            validate(&g, &s, &opts),
            validate(&g, &s, &ValidationOptions::default())
        );
    }

    #[test]
    fn empty_graph_with_more_threads_than_elements() {
        let s = schema();
        let g = PropertyGraph::new();
        let opts = ValidationOptions::builder()
            .engine(Engine::Parallel)
            .threads(16)
            .collect_metrics(true)
            .build();
        let report = validate(&g, &s, &opts);
        assert!(report.conforms());
        assert_eq!(report.metrics().unwrap().shard_elements.len(), 16);
    }
}
