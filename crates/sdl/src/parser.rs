//! Recursive-descent parser for type-system documents.
//!
//! The grammar is the June 2018 spec's `TypeSystemDefinition` production.
//! Keywords (`type`, `interface`, …) are contextual: they are ordinary
//! names everywhere except at definition heads, exactly as in the spec.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::Lexer;
use crate::token::{Pos, Span, Token, TokenKind};

/// The parser. Construct with [`Parser::new`], consume with
/// [`Parser::parse_document`].
pub struct Parser {
    tokens: Vec<Token>,
    ix: usize,
}

impl Parser {
    /// Lexes `source` eagerly; lexical errors surface here.
    pub fn new(source: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: Lexer::new(source).tokenize()?,
            ix: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.ix.min(self.tokens.len() - 1)]
    }

    fn pos(&self) -> Pos {
        self.peek().span.start
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.ix.min(self.tokens.len() - 1)].clone();
        if self.ix < self.tokens.len() - 1 {
            self.ix += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::new(
            ParseErrorKind::Unexpected {
                expected: expected.to_owned(),
                found: self.peek().kind.describe(),
            },
            self.pos(),
        )
    }

    fn eat_name(&mut self) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Name(_) => {
                let t = self.bump();
                let TokenKind::Name(n) = t.kind else {
                    unreachable!()
                };
                Ok((n, t.span))
            }
            _ => Err(self.unexpected("a name")),
        }
    }

    /// True if the next token is the given keyword name.
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Name(n) if n == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<Span, ParseError> {
        if self.at_keyword(kw) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&format!("keyword `{kw}`")))
        }
    }

    /// Parses a complete document.
    pub fn parse_document(mut self) -> Result<Document, ParseError> {
        let mut definitions = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            definitions.push(self.parse_definition()?);
        }
        Ok(Document { definitions })
    }

    fn parse_description(&mut self) -> Option<String> {
        if let TokenKind::Str { value, .. } = &self.peek().kind {
            let v = value.clone();
            self.bump();
            Some(v)
        } else {
            None
        }
    }

    fn parse_definition(&mut self) -> Result<Definition, ParseError> {
        let description = self.parse_description();
        let TokenKind::Name(kw) = &self.peek().kind else {
            return Err(self.unexpected("a type-system definition"));
        };
        match kw.as_str() {
            "schema" => {
                if description.is_some() {
                    // The June 2018 grammar does not allow a description on
                    // `schema`; tolerate and drop it (lenient like graphql-js).
                }
                self.parse_schema_def().map(Definition::Schema)
            }
            "scalar" => self
                .parse_scalar(description)
                .map(|d| Definition::Type(TypeDef::Scalar(d))),
            "type" => self
                .parse_object(description)
                .map(|d| Definition::Type(TypeDef::Object(d))),
            "interface" => self
                .parse_interface(description)
                .map(|d| Definition::Type(TypeDef::Interface(d))),
            "union" => self
                .parse_union(description)
                .map(|d| Definition::Type(TypeDef::Union(d))),
            "enum" => self
                .parse_enum(description)
                .map(|d| Definition::Type(TypeDef::Enum(d))),
            "input" => self
                .parse_input_object(description)
                .map(|d| Definition::Type(TypeDef::InputObject(d))),
            "directive" => self
                .parse_directive_def(description)
                .map(Definition::Directive),
            "query" | "mutation" | "subscription" | "fragment" => Err(ParseError::new(
                ParseErrorKind::UnsupportedConstruct(format!("executable definition `{kw}`")),
                self.pos(),
            )),
            "extend" => {
                self.bump();
                let TokenKind::Name(kw2) = &self.peek().kind else {
                    return Err(self.unexpected("a type keyword after `extend`"));
                };
                let inner = match kw2.as_str() {
                    "scalar" => TypeDef::Scalar(self.parse_scalar(None)?),
                    "type" => TypeDef::Object(self.parse_object(None)?),
                    "interface" => TypeDef::Interface(self.parse_interface(None)?),
                    "union" => TypeDef::Union(self.parse_union(None)?),
                    "enum" => TypeDef::Enum(self.parse_enum(None)?),
                    "input" => TypeDef::InputObject(self.parse_input_object(None)?),
                    other => {
                        return Err(ParseError::new(
                            ParseErrorKind::Unexpected {
                                expected: "a type keyword after `extend`".into(),
                                found: format!("name `{other}`"),
                            },
                            self.pos(),
                        ));
                    }
                };
                Ok(Definition::Extend(inner))
            }
            _ => Err(self.unexpected("a type-system definition")),
        }
    }

    fn parse_schema_def(&mut self) -> Result<SchemaDef, ParseError> {
        let start = self.eat_keyword("schema")?;
        let directives = self.parse_directive_uses()?;
        self.expect(&TokenKind::BraceL)?;
        let mut operations = Vec::new();
        while self.peek().kind != TokenKind::BraceR {
            let (op_name, op_span) = self.eat_name()?;
            let kind = match op_name.as_str() {
                "query" => OperationKind::Query,
                "mutation" => OperationKind::Mutation,
                "subscription" => OperationKind::Subscription,
                other => {
                    return Err(ParseError::new(
                        ParseErrorKind::Unexpected {
                            expected: "`query`, `mutation` or `subscription`".into(),
                            found: format!("name `{other}`"),
                        },
                        op_span.start,
                    ));
                }
            };
            self.expect(&TokenKind::Colon)?;
            let (ty, _) = self.eat_name()?;
            operations.push((kind, ty));
        }
        let end = self.expect(&TokenKind::BraceR)?;
        Ok(SchemaDef {
            directives,
            operations,
            span: Span {
                start: start.start,
                end: end.span.end,
            },
        })
    }

    fn parse_scalar(&mut self, description: Option<String>) -> Result<ScalarTypeDef, ParseError> {
        let start = self.eat_keyword("scalar")?;
        let (name, name_span) = self.eat_name()?;
        let directives = self.parse_directive_uses()?;
        Ok(ScalarTypeDef {
            description,
            name,
            directives,
            span: Span {
                start: start.start,
                end: name_span.end,
            },
        })
    }

    fn parse_implements(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = Vec::new();
        if self.at_keyword("implements") {
            self.bump();
            // Optional leading `&`.
            if self.peek().kind == TokenKind::Amp {
                self.bump();
            }
            loop {
                let (n, _) = self.eat_name()?;
                names.push(n);
                if self.peek().kind == TokenKind::Amp {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        Ok(names)
    }

    fn parse_object(&mut self, description: Option<String>) -> Result<ObjectTypeDef, ParseError> {
        let start = self.eat_keyword("type")?;
        let (name, mut end) = self.eat_name()?;
        let implements = self.parse_implements()?;
        let directives = self.parse_directive_uses()?;
        let fields = if self.peek().kind == TokenKind::BraceL {
            let (fs, close) = self.parse_field_block()?;
            end = close;
            fs
        } else {
            Vec::new()
        };
        Ok(ObjectTypeDef {
            description,
            name,
            implements,
            directives,
            fields,
            span: Span {
                start: start.start,
                end: end.end,
            },
        })
    }

    fn parse_interface(
        &mut self,
        description: Option<String>,
    ) -> Result<InterfaceTypeDef, ParseError> {
        let start = self.eat_keyword("interface")?;
        let (name, mut end) = self.eat_name()?;
        let directives = self.parse_directive_uses()?;
        let fields = if self.peek().kind == TokenKind::BraceL {
            let (fs, close) = self.parse_field_block()?;
            end = close;
            fs
        } else {
            Vec::new()
        };
        Ok(InterfaceTypeDef {
            description,
            name,
            directives,
            fields,
            span: Span {
                start: start.start,
                end: end.end,
            },
        })
    }

    fn parse_union(&mut self, description: Option<String>) -> Result<UnionTypeDef, ParseError> {
        let start = self.eat_keyword("union")?;
        let (name, mut end) = self.eat_name()?;
        let directives = self.parse_directive_uses()?;
        let mut members = Vec::new();
        if self.peek().kind == TokenKind::Eq {
            self.bump();
            if self.peek().kind == TokenKind::Pipe {
                self.bump();
            }
            loop {
                let (m, m_span) = self.eat_name()?;
                end = m_span;
                members.push(m);
                if self.peek().kind == TokenKind::Pipe {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        Ok(UnionTypeDef {
            description,
            name,
            directives,
            members,
            span: Span {
                start: start.start,
                end: end.end,
            },
        })
    }

    fn parse_enum(&mut self, description: Option<String>) -> Result<EnumTypeDef, ParseError> {
        let start = self.eat_keyword("enum")?;
        let (name, mut end) = self.eat_name()?;
        let directives = self.parse_directive_uses()?;
        let mut values = Vec::new();
        if self.peek().kind == TokenKind::BraceL {
            self.bump();
            while self.peek().kind != TokenKind::BraceR {
                let v_description = self.parse_description();
                let (v_name, v_span) = self.eat_name()?;
                if matches!(v_name.as_str(), "true" | "false" | "null") {
                    return Err(ParseError::new(
                        ParseErrorKind::Unexpected {
                            expected: "an enum value name".into(),
                            found: format!("reserved name `{v_name}`"),
                        },
                        v_span.start,
                    ));
                }
                let v_directives = self.parse_directive_uses()?;
                values.push(EnumValueDef {
                    description: v_description,
                    name: v_name,
                    directives: v_directives,
                });
            }
            end = self.expect(&TokenKind::BraceR)?.span;
        }
        Ok(EnumTypeDef {
            description,
            name,
            directives,
            values,
            span: Span {
                start: start.start,
                end: end.end,
            },
        })
    }

    fn parse_input_object(
        &mut self,
        description: Option<String>,
    ) -> Result<InputObjectTypeDef, ParseError> {
        let start = self.eat_keyword("input")?;
        let (name, mut end) = self.eat_name()?;
        let directives = self.parse_directive_uses()?;
        let mut fields = Vec::new();
        if self.peek().kind == TokenKind::BraceL {
            self.bump();
            while self.peek().kind != TokenKind::BraceR {
                fields.push(self.parse_input_value()?);
            }
            end = self.expect(&TokenKind::BraceR)?.span;
        }
        Ok(InputObjectTypeDef {
            description,
            name,
            directives,
            fields,
            span: Span {
                start: start.start,
                end: end.end,
            },
        })
    }

    fn parse_directive_def(
        &mut self,
        description: Option<String>,
    ) -> Result<DirectiveDef, ParseError> {
        let start = self.eat_keyword("directive")?;
        self.expect(&TokenKind::At)?;
        let (name, _) = self.eat_name()?;
        let args = if self.peek().kind == TokenKind::ParenL {
            self.parse_arguments_definition()?
        } else {
            Vec::new()
        };
        self.eat_keyword("on")?;
        if self.peek().kind == TokenKind::Pipe {
            self.bump();
        }
        let mut locations = Vec::new();
        let mut end;
        loop {
            let (loc, loc_span) = self.eat_name()?;
            end = loc_span;
            locations.push(loc);
            if self.peek().kind == TokenKind::Pipe {
                self.bump();
            } else {
                break;
            }
        }
        Ok(DirectiveDef {
            description,
            name,
            args,
            locations,
            span: Span {
                start: start.start,
                end: end.end,
            },
        })
    }

    fn parse_field_block(&mut self) -> Result<(Vec<FieldDef>, Span), ParseError> {
        self.expect(&TokenKind::BraceL)?;
        let mut fields = Vec::new();
        while self.peek().kind != TokenKind::BraceR {
            fields.push(self.parse_field()?);
        }
        let close = self.expect(&TokenKind::BraceR)?;
        Ok((fields, close.span))
    }

    fn parse_field(&mut self) -> Result<FieldDef, ParseError> {
        let description = self.parse_description();
        let (name, name_span) = self.eat_name()?;
        let args = if self.peek().kind == TokenKind::ParenL {
            self.parse_arguments_definition()?
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::Colon)?;
        let ty = self.parse_type()?;
        let directives = self.parse_directive_uses()?;
        Ok(FieldDef {
            description,
            name,
            args,
            ty,
            directives,
            span: name_span,
        })
    }

    fn parse_arguments_definition(&mut self) -> Result<Vec<InputValueDef>, ParseError> {
        self.expect(&TokenKind::ParenL)?;
        let mut args = Vec::new();
        while self.peek().kind != TokenKind::ParenR {
            args.push(self.parse_input_value()?);
        }
        self.expect(&TokenKind::ParenR)?;
        Ok(args)
    }

    fn parse_input_value(&mut self) -> Result<InputValueDef, ParseError> {
        let description = self.parse_description();
        let (name, name_span) = self.eat_name()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.parse_type()?;
        let default = if self.peek().kind == TokenKind::Eq {
            self.bump();
            Some(self.parse_const_value()?)
        } else {
            None
        };
        let directives = self.parse_directive_uses()?;
        Ok(InputValueDef {
            description,
            name,
            ty,
            default,
            directives,
            span: name_span,
        })
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let inner = if self.peek().kind == TokenKind::BracketL {
            self.bump();
            let t = self.parse_type()?;
            self.expect(&TokenKind::BracketR)?;
            Type::List(Box::new(t))
        } else {
            let (n, _) = self.eat_name()?;
            Type::Named(n)
        };
        if self.peek().kind == TokenKind::Bang {
            self.bump();
            Ok(Type::NonNull(Box::new(inner)))
        } else {
            Ok(inner)
        }
    }

    fn parse_const_value(&mut self) -> Result<ConstValue, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(ConstValue::Int(i))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(ConstValue::Float(x))
            }
            TokenKind::Str { value, .. } => {
                self.bump();
                Ok(ConstValue::String(value))
            }
            TokenKind::Name(n) => {
                self.bump();
                match n.as_str() {
                    "true" => Ok(ConstValue::Bool(true)),
                    "false" => Ok(ConstValue::Bool(false)),
                    "null" => Ok(ConstValue::Null),
                    _ => Ok(ConstValue::Enum(n)),
                }
            }
            TokenKind::BracketL => {
                self.bump();
                let mut items = Vec::new();
                while self.peek().kind != TokenKind::BracketR {
                    items.push(self.parse_const_value()?);
                }
                self.bump();
                Ok(ConstValue::List(items))
            }
            TokenKind::BraceL => {
                self.bump();
                let mut fields = Vec::new();
                while self.peek().kind != TokenKind::BraceR {
                    let (k, _) = self.eat_name()?;
                    self.expect(&TokenKind::Colon)?;
                    let v = self.parse_const_value()?;
                    fields.push((k, v));
                }
                self.bump();
                Ok(ConstValue::Object(fields))
            }
            TokenKind::Dollar => Err(ParseError::new(
                ParseErrorKind::UnsupportedConstruct("variable value".to_owned()),
                self.pos(),
            )),
            _ => Err(self.unexpected("a constant value")),
        }
    }

    fn parse_directive_uses(&mut self) -> Result<Vec<DirectiveUse>, ParseError> {
        let mut out = Vec::new();
        while self.peek().kind == TokenKind::At {
            let at = self.bump();
            let (name, mut end) = self.eat_name()?;
            let mut args = Vec::new();
            if self.peek().kind == TokenKind::ParenL {
                self.bump();
                while self.peek().kind != TokenKind::ParenR {
                    let (k, _) = self.eat_name()?;
                    self.expect(&TokenKind::Colon)?;
                    let v = self.parse_const_value()?;
                    args.push((k, v));
                }
                end = self.expect(&TokenKind::ParenR)?.span;
            }
            out.push(DirectiveUse {
                name,
                args,
                span: Span {
                    start: at.span.start,
                    end: end.end,
                },
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn parses_example_3_1() {
        let doc = parse(
            r#"
            type UserSession {
                id: ID! @required
                user: User! @required
                startTime: Time! @required
                endTime: Time!
            }
            type User {
                id: ID! @required
                login: String! @required
                nicknames: [String!]!
            }
            scalar Time
            "#,
        )
        .unwrap();
        assert_eq!(doc.definitions.len(), 3);
        let session = doc.object_types().next().unwrap();
        assert_eq!(session.name, "UserSession");
        assert_eq!(session.fields.len(), 4);
        assert_eq!(session.fields[0].ty.to_string(), "ID!");
        assert_eq!(session.fields[0].directives[0].name, "required");
        let user = doc.object_types().nth(1).unwrap();
        assert_eq!(user.fields[2].ty.to_string(), "[String!]!");
        assert!(matches!(doc.type_def("Time"), Some(TypeDef::Scalar(_))));
    }

    #[test]
    fn parses_key_directive_with_list_argument() {
        let doc =
            parse(r#"type User @key(fields: ["id"]) @key(fields: ["login"]) { id: ID! }"#).unwrap();
        let user = doc.object_types().next().unwrap();
        assert_eq!(user.directives.len(), 2);
        assert_eq!(
            user.directives[0].arg("fields"),
            Some(&ConstValue::List(vec![ConstValue::String("id".into())]))
        );
    }

    #[test]
    fn parses_union_and_interface_from_examples_3_9_and_3_10() {
        let doc = parse(
            r#"
            type Person { name: String! favoriteFood: Food }
            union Food = Pizza | Pasta
            type Pizza { name: String! toppings: [String!]! }
            type Pasta { name: String! }
            interface FoodI { name: String! }
            type Pizza2 implements FoodI { name: String! }
            "#,
        )
        .unwrap();
        let food = doc.union_types().next().unwrap();
        assert_eq!(food.members, vec!["Pizza", "Pasta"]);
        let pizza2 = doc.object_types().find(|o| o.name == "Pizza2").unwrap();
        assert_eq!(pizza2.implements, vec!["FoodI"]);
    }

    #[test]
    fn parses_field_arguments_from_example_3_12() {
        let doc = parse(
            r#"type UserSession {
                user(certainty: Float! comment: String): User! @required
            }"#,
        )
        .unwrap();
        let f = &doc.object_types().next().unwrap().fields[0];
        assert_eq!(f.args.len(), 2);
        assert_eq!(f.args[0].name, "certainty");
        assert_eq!(f.args[0].ty.to_string(), "Float!");
        assert_eq!(f.args[1].ty.to_string(), "String");
    }

    #[test]
    fn parses_default_values_and_enums_from_figure_1() {
        let doc = parse(
            r#"
            type Starship {
                id: ID!
                name: String
                length(unit: LenUnit = METER): Float
            }
            enum LenUnit { METER FEET }
            "#,
        )
        .unwrap();
        let starship = doc.object_types().next().unwrap();
        let len = &starship.fields[2];
        assert_eq!(len.args[0].default, Some(ConstValue::Enum("METER".into())));
        let TypeDef::Enum(e) = doc.type_def("LenUnit").unwrap() else {
            panic!("LenUnit should be an enum");
        };
        assert_eq!(e.values.len(), 2);
        assert_eq!(e.values[0].name, "METER");
    }

    #[test]
    fn parses_schema_block() {
        let doc = parse("schema { query: Query mutation: M }").unwrap();
        let Definition::Schema(s) = &doc.definitions[0] else {
            panic!("expected schema def");
        };
        assert_eq!(s.operations.len(), 2);
        assert_eq!(s.operations[0], (OperationKind::Query, "Query".into()));
    }

    #[test]
    fn parses_directive_definition() {
        let doc = parse("directive @key(fields: [String!]!) on OBJECT | INTERFACE").unwrap();
        let Definition::Directive(d) = &doc.definitions[0] else {
            panic!("expected directive def");
        };
        assert_eq!(d.name, "key");
        assert_eq!(d.args[0].ty.to_string(), "[String!]!");
        assert_eq!(d.locations, vec!["OBJECT", "INTERFACE"]);
    }

    #[test]
    fn parses_input_object() {
        let doc = parse("input Point { x: Float! y: Float! = 0.0 }").unwrap();
        let TypeDef::InputObject(io) = doc.type_def("Point").unwrap() else {
            panic!("expected input object");
        };
        assert_eq!(io.fields.len(), 2);
        assert_eq!(io.fields[1].default, Some(ConstValue::Float(0.0)));
    }

    #[test]
    fn descriptions_attach_to_definitions_and_fields() {
        let doc = parse(
            r#"
            "A user of the system"
            type User {
                """The login
                name"""
                login: String!
            }
            "#,
        )
        .unwrap();
        let user = doc.object_types().next().unwrap();
        assert_eq!(user.description.as_deref(), Some("A user of the system"));
        assert_eq!(
            user.fields[0].description.as_deref(),
            Some("The login\nname")
        );
    }

    #[test]
    fn implements_with_ampersands() {
        let doc = parse("type T implements A & B & C { f: Int }").unwrap();
        assert_eq!(
            doc.object_types().next().unwrap().implements,
            vec!["A", "B", "C"]
        );
    }

    #[test]
    fn leading_pipe_in_union_is_allowed() {
        let doc = parse("union U = | A | B").unwrap();
        assert_eq!(doc.union_types().next().unwrap().members, vec!["A", "B"]);
    }

    #[test]
    fn executable_definitions_are_rejected() {
        let err = parse("query Q { hero }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnsupportedConstruct(_)));
    }

    #[test]
    fn type_extensions_parse() {
        let doc = parse(
            r#"
            type User { id: ID! }
            extend type User implements Node { email: String }
            extend enum Unit { MILE }
            extend union Food = Soup
            extend interface Node { id: ID! }
            extend scalar Time @fancy
            "#,
        )
        .unwrap();
        let extends: Vec<&TypeDef> = doc
            .definitions
            .iter()
            .filter_map(|d| match d {
                Definition::Extend(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(extends.len(), 5);
        let TypeDef::Object(o) = extends[0] else {
            panic!("expected object extension");
        };
        assert_eq!(o.name, "User");
        assert_eq!(o.implements, vec!["Node"]);
        assert_eq!(o.fields.len(), 1);
        assert!(parse("extend frobnicate User { }").is_err());
        assert!(parse("extend").is_err());
    }

    #[test]
    fn missing_colon_in_field_is_an_error() {
        let err = parse("type T { f Int }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Unexpected { .. }));
        assert_eq!(err.pos.line, 1);
    }

    #[test]
    fn reserved_enum_values_are_rejected() {
        assert!(parse("enum E { OK true }").is_err());
        assert!(parse("enum E { null }").is_err());
    }

    #[test]
    fn nested_const_values() {
        let doc = parse(
            r#"type T @meta(cfg: {depth: 2, tags: ["a", "b"], on: true, none: null}) { f: Int }"#,
        )
        .unwrap();
        let t = doc.object_types().next().unwrap();
        let ConstValue::Object(fields) = t.directives[0].arg("cfg").unwrap() else {
            panic!("expected object");
        };
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[0], ("depth".into(), ConstValue::Int(2)));
        assert_eq!(fields[2], ("on".into(), ConstValue::Bool(true)));
    }

    #[test]
    fn deeply_wrapped_types_parse() {
        let doc = parse("type T { f: [[Int!]]! }").unwrap();
        let f = &doc.object_types().next().unwrap().fields[0];
        assert_eq!(f.ty.to_string(), "[[Int!]]!");
        assert_eq!(f.ty.depth(), 4);
    }

    #[test]
    fn empty_document_parses() {
        assert_eq!(parse("").unwrap().definitions.len(), 0);
        assert_eq!(parse("  # only a comment\n").unwrap().definitions.len(), 0);
    }

    #[test]
    fn variable_default_is_rejected() {
        let err = parse("type T { f(a: Int = $v): Int }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnsupportedConstruct(_)));
    }
}
