//! The Theorem 2 NP-hardness reduction, executably: encode a CNF formula
//! as an SDL schema whose designated object type is satisfiable iff the
//! formula is; decide it with the finite-model reasoner; cross-check
//! against the DPLL oracle; extract the truth assignment from the witness
//! Property Graph.
//!
//! Run with: `cargo run --example sat_reduction`

use dpll::{Cnf, Lit};
use pg_reason::reduction::{decide_via_reduction, extract_assignment, reduce_cnf};

fn main() {
    // The formula of the paper's Theorem 2 proof sketch:
    // (A ∨ ¬B ∨ C) ∧ (¬A ∨ ¬C) ∧ (D ∨ B)   with A,B,C,D = x0..x3.
    let mut phi = Cnf::new(4);
    phi.add_clause([Lit::pos(0), Lit::neg(1), Lit::pos(2)]);
    phi.add_clause([Lit::neg(0), Lit::neg(2)]);
    phi.add_clause([Lit::pos(3), Lit::pos(1)]);
    println!("φ = {phi}");

    let red = reduce_cnf(&phi);
    println!(
        "\nreduction schema ({} bytes of SDL):\n{}",
        red.sdl.len(),
        red.sdl
    );

    let oracle = dpll::solve(&phi);
    println!(
        "DPLL oracle: {}",
        if oracle.is_some() { "SAT" } else { "UNSAT" }
    );

    match decide_via_reduction(&phi) {
        Some(witness) => {
            println!(
                "reduction + reasoner: SAT (witness: {} nodes, {} edges)",
                witness.node_count(),
                witness.edge_count()
            );
            let assignment = extract_assignment(&phi, &witness);
            let rendered: Vec<String> = assignment
                .iter()
                .enumerate()
                .map(|(i, &b)| format!("x{i}={}", if b { "T" } else { "F" }))
                .collect();
            println!("extracted assignment: {}", rendered.join(" "));
            assert!(phi.eval(&assignment), "assignment must satisfy φ");
            assert!(oracle.is_some());
        }
        None => {
            println!("reduction + reasoner: UNSAT");
            assert!(oracle.is_none());
        }
    }

    // And an unsatisfiable formula for contrast.
    let mut bad = Cnf::new(2);
    bad.add_clause([Lit::pos(0)]);
    bad.add_clause([Lit::pos(1)]);
    bad.add_clause([Lit::neg(0), Lit::neg(1)]);
    println!("\nψ = {bad}");
    assert!(decide_via_reduction(&bad).is_none());
    assert!(dpll::solve(&bad).is_none());
    println!("both agree: UNSAT");
}
