//! JSON interchange for Property Graphs.
//!
//! The format is deliberately simple and GraphQL-value-shaped:
//!
//! ```json
//! {
//!   "nodes": [ {"id": 0, "label": "User", "properties": {"login": "alice"}} ],
//!   "edges": [ {"id": 0, "label": "user", "source": 1, "target": 0,
//!               "properties": {"certainty": 0.9}} ]
//! }
//! ```
//!
//! Two lossy aspects are made explicit and controlled:
//!
//! * JSON has no `ID`/`Enum` kinds — they are encoded as tagged objects
//!   `{"$id": "..."}` / `{"$enum": "..."}` so decode(encode(g)) == g.
//! * Integers outside the f64-exact range survive because we serialise
//!   through `serde_json::Number` (i64-capable), not through floats.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{NodeId, PropertyGraph, Value};

/// Errors raised while decoding a JSON graph document.
#[derive(Debug)]
pub enum JsonError {
    /// The document was not syntactically valid JSON / did not match the
    /// expected shape.
    Parse(serde_json::Error),
    /// An edge referenced a node id that does not appear in `nodes`.
    DanglingEdge {
        /// The edge's position in the `edges` array.
        edge_index: usize,
        /// The missing node id.
        node: u32,
    },
    /// A property value used a JSON feature the Value model cannot hold
    /// (e.g. a nested object that is not an `$id`/`$enum` tag).
    BadValue(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse(e) => write!(f, "invalid graph JSON: {e}"),
            JsonError::DanglingEdge { edge_index, node } => {
                write!(f, "edge #{edge_index} references unknown node {node}")
            }
            JsonError::BadValue(msg) => write!(f, "unsupported property value: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<serde_json::Error> for JsonError {
    fn from(e: serde_json::Error) -> Self {
        JsonError::Parse(e)
    }
}

#[derive(Serialize, Deserialize)]
struct NodeDoc {
    id: u32,
    label: String,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    properties: BTreeMap<String, serde_json::Value>,
}

#[derive(Serialize, Deserialize)]
struct EdgeDoc {
    id: u32,
    label: String,
    source: u32,
    target: u32,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    properties: BTreeMap<String, serde_json::Value>,
}

#[derive(Serialize, Deserialize)]
struct GraphDoc {
    nodes: Vec<NodeDoc>,
    edges: Vec<EdgeDoc>,
}

fn value_to_json(v: &Value) -> serde_json::Value {
    use serde_json::json;
    match v {
        Value::Int(i) => json!(i),
        Value::Float(f) => {
            serde_json::Number::from_f64(*f).map_or(serde_json::Value::Null, serde_json::Value::Number)
        }
        Value::String(s) => json!(s),
        Value::Bool(b) => json!(b),
        Value::Id(s) => json!({ "$id": s }),
        Value::Enum(s) => json!({ "$enum": s }),
        Value::List(items) => {
            serde_json::Value::Array(items.iter().map(value_to_json).collect())
        }
        Value::Null => serde_json::Value::Null,
    }
}

fn value_from_json(v: &serde_json::Value) -> Result<Value, JsonError> {
    match v {
        serde_json::Value::Null => Ok(Value::Null),
        serde_json::Value::Bool(b) => Ok(Value::Bool(*b)),
        serde_json::Value::Number(n) => {
            if let Some(i) = n.as_i64() {
                Ok(Value::Int(i))
            } else if let Some(f) = n.as_f64() {
                Ok(Value::Float(f))
            } else {
                Err(JsonError::BadValue(format!("number out of range: {n}")))
            }
        }
        serde_json::Value::String(s) => Ok(Value::String(s.clone())),
        serde_json::Value::Array(items) => Ok(Value::List(
            items.iter().map(value_from_json).collect::<Result<_, _>>()?,
        )),
        serde_json::Value::Object(map) => {
            if map.len() == 1 {
                if let Some(serde_json::Value::String(s)) = map.get("$id") {
                    return Ok(Value::Id(s.clone()));
                }
                if let Some(serde_json::Value::String(s)) = map.get("$enum") {
                    return Ok(Value::Enum(s.clone()));
                }
            }
            Err(JsonError::BadValue(format!(
                "objects other than $id/$enum tags are not property values: {map:?}"
            )))
        }
    }
}

/// Serialises a graph to its canonical (pretty) JSON document.
pub fn to_json(g: &PropertyGraph) -> String {
    let doc = GraphDoc {
        nodes: g
            .nodes()
            .map(|n| NodeDoc {
                id: n.id.index() as u32,
                label: n.label().to_owned(),
                properties: n
                    .properties()
                    .map(|(k, v)| (k.to_owned(), value_to_json(v)))
                    .collect(),
            })
            .collect(),
        edges: g
            .edges()
            .map(|e| EdgeDoc {
                id: e.id.index() as u32,
                label: e.label().to_owned(),
                source: e.source().index() as u32,
                target: e.target().index() as u32,
                properties: e
                    .properties()
                    .map(|(k, v)| (k.to_owned(), value_to_json(v)))
                    .collect(),
            })
            .collect(),
    };
    serde_json::to_string_pretty(&doc).expect("graph doc serialises")
}

/// Parses a graph from its JSON document. Node ids in the document are
/// arbitrary distinct numbers; they are remapped to dense ids.
pub fn from_json(text: &str) -> Result<PropertyGraph, JsonError> {
    let doc: GraphDoc = serde_json::from_str(text)?;
    let mut g = PropertyGraph::with_capacity(doc.nodes.len(), doc.edges.len());
    let mut remap = std::collections::HashMap::with_capacity(doc.nodes.len());
    for n in &doc.nodes {
        let id = g.add_node(n.label.clone());
        remap.insert(n.id, id);
        for (k, v) in &n.properties {
            g.set_node_property(id, k.clone(), value_from_json(v)?);
        }
    }
    for (ix, e) in doc.edges.iter().enumerate() {
        let src = *remap.get(&e.source).ok_or(JsonError::DanglingEdge {
            edge_index: ix,
            node: e.source,
        })?;
        let dst: NodeId = *remap.get(&e.target).ok_or(JsonError::DanglingEdge {
            edge_index: ix,
            node: e.target,
        })?;
        let eid = g.add_edge(src, dst, e.label.clone()).expect("remapped");
        for (k, v) in &e.properties {
            g.set_edge_property(eid, k.clone(), value_from_json(v)?);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> PropertyGraph {
        let mut g = GraphBuilder::new()
            .node("u", "User")
            .prop("u", "login", "alice")
            .prop("u", "age", 30i64)
            .node("s", "UserSession")
            .edge("s", "u", "user")
            .edge_prop("certainty", 0.75)
            .build()
            .unwrap();
        let u = g.node_ids().next().unwrap();
        g.set_node_property(u, "id", Value::Id("u-17".into()));
        g.set_node_property(
            u,
            "nicknames",
            Value::from(vec!["al", "lice"]),
        );
        g.set_node_property(u, "unit", Value::Enum("METER".into()));
        g
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let text = to_json(&g);
        let g2 = from_json(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn id_and_enum_survive_roundtrip() {
        let g = sample();
        let g2 = from_json(&to_json(&g)).unwrap();
        let u = g2.nodes().find(|n| n.label() == "User").unwrap();
        assert_eq!(u.property("id"), Some(&Value::Id("u-17".into())));
        assert_eq!(u.property("unit"), Some(&Value::Enum("METER".into())));
    }

    #[test]
    fn large_integers_are_exact() {
        let mut g = PropertyGraph::new();
        let n = g.add_node("N");
        let big = (1i64 << 60) + 7;
        g.set_node_property(n, "big", Value::Int(big));
        let g2 = from_json(&to_json(&g)).unwrap();
        let n2 = g2.nodes().next().unwrap();
        assert_eq!(n2.property("big"), Some(&Value::Int(big)));
    }

    #[test]
    fn dangling_edge_is_reported() {
        let text = r#"{"nodes":[{"id":0,"label":"A"}],
                       "edges":[{"id":0,"label":"rel","source":0,"target":9}]}"#;
        match from_json(text) {
            Err(JsonError::DanglingEdge { edge_index: 0, node: 9 }) => {}
            other => panic!("expected dangling edge error, got {other:?}"),
        }
    }

    #[test]
    fn arbitrary_objects_are_rejected() {
        let text = r#"{"nodes":[{"id":0,"label":"A",
                        "properties":{"bad":{"x":1}}}],"edges":[]}"#;
        assert!(matches!(from_json(text), Err(JsonError::BadValue(_))));
    }

    #[test]
    fn sparse_document_ids_are_remapped() {
        let text = r#"{"nodes":[{"id":100,"label":"A"},{"id":7,"label":"B"}],
                       "edges":[{"id":3,"label":"rel","source":100,"target":7}]}"#;
        let g = from_json(text).unwrap();
        assert_eq!(g.node_count(), 2);
        let e = g.edges().next().unwrap();
        assert_eq!(g.node_label(e.source()), Some("A"));
        assert_eq!(g.node_label(e.target()), Some("B"));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = PropertyGraph::new();
        assert_eq!(from_json(&to_json(&g)).unwrap(), g);
    }
}
