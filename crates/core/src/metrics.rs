//! Crate-private instrumentation plumbing shared by the engines.
//!
//! Engines drive a [`MetricsRecorder`] unconditionally; when metrics were
//! not requested every method is a no-op, so the hot paths carry no
//! branches beyond one `Option` check per rule-family block.

use std::time::Instant;

use crate::report::{FamilyMetrics, RuleFamily, ValidationMetrics, ValidationReport};

/// Accumulates [`ValidationMetrics`] for one validation run.
pub(crate) struct MetricsRecorder {
    metrics: Option<ValidationMetrics>,
}

impl MetricsRecorder {
    pub(crate) fn new(enabled: bool, engine: &'static str, threads: usize) -> Self {
        MetricsRecorder {
            metrics: enabled.then(|| ValidationMetrics {
                engine,
                threads,
                ..ValidationMetrics::default()
            }),
        }
    }

    pub(crate) fn index_build(&mut self, nanos: u64) {
        if let Some(m) = &mut self.metrics {
            m.index_build_nanos = nanos;
        }
    }

    pub(crate) fn scanned(&mut self, nodes: u64, edges: u64) {
        if let Some(m) = &mut self.metrics {
            m.nodes_scanned += nodes;
            m.edges_scanned += edges;
        }
    }

    /// Runs one rule-family block, recording its wall time and the
    /// violations it contributed to `r`.
    pub(crate) fn family(
        &mut self,
        family: RuleFamily,
        r: &mut ValidationReport,
        block: impl FnOnce(&mut ValidationReport),
    ) {
        if self.metrics.is_none() {
            block(r);
            return;
        }
        let before = r.len();
        let start = Instant::now();
        block(r);
        let nanos = start.elapsed().as_nanos() as u64;
        if let Some(m) = &mut self.metrics {
            m.families.push(FamilyMetrics {
                family,
                nanos,
                violations: r.len() - before,
            });
        }
    }

    /// Records a family measured externally (the parallel engine reduces
    /// per-worker timings itself).
    pub(crate) fn family_record(&mut self, fm: FamilyMetrics) {
        if let Some(m) = &mut self.metrics {
            m.families.push(fm);
        }
    }

    pub(crate) fn shard_elements(&mut self, elements: Vec<u64>) {
        if let Some(m) = &mut self.metrics {
            m.shard_elements = elements;
        }
    }

    /// Attaches the collected metrics (if any) to the report.
    pub(crate) fn finish(self, r: &mut ValidationReport) {
        if let Some(m) = self.metrics {
            r.set_metrics(m);
        }
    }
}
