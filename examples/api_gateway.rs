//! From Property Graph schema to GraphQL API schema — the §3.6 roadmap:
//! start from a PG schema, validate a database instance against it, then
//! extend it into a complete GraphQL API schema with a Query root and
//! inverse fields for bidirectional traversal.
//!
//! Run with: `cargo run --example api_gateway`

use pg_schema::api_extension::{extend_to_api_schema, ApiExtensionOptions};
use pg_schema::PgSchema;

const PG_SCHEMA: &str = r#"
type User @key(fields: ["id"]) {
    id: ID! @required
    login: String! @required
    follows(since: Int!): [User] @distinct @noLoops
}
type Post @key(fields: ["id"]) {
    id: ID! @required
    title: String! @required
    author: User @required
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The PG schema governs the database.
    let schema = PgSchema::parse(PG_SCHEMA)?;
    println!(
        "PG schema: {} object types, {} key constraint(s), {} constraint site(s)",
        schema.schema().object_types().count(),
        schema.keys().len(),
        schema.constraint_sites().len()
    );

    // 2. Extend it into an API schema (§3.6): Query root + inverse fields
    //    + optional Mutation stubs.
    let doc = gql_sdl::parse(PG_SCHEMA)?;
    let api = extend_to_api_schema(
        &doc,
        &ApiExtensionOptions {
            include_mutation: true,
            ..Default::default()
        },
    )?;
    let printed = gql_sdl::print_document(&api);
    println!("\ngenerated GraphQL API schema:\n{printed}");

    // 3. The result is itself a consistent GraphQL schema…
    let rebuilt =
        gql_schema::build_schema(&gql_sdl::parse(&printed)?).map_err(|e| format!("{e:?}"))?;
    assert!(gql_schema::consistency::check(&rebuilt).is_empty());

    // …with bidirectional traversal: Posts are reachable from their
    // author via the generated inverse field.
    let user = api
        .object_types()
        .find(|o| o.name == "User")
        .expect("User survives extension");
    assert!(user.fields.iter().any(|f| f.name == "rev_author_from_Post"));
    assert!(user
        .fields
        .iter()
        .any(|f| f.name == "rev_follows_from_User"));
    println!("bidirectional traversal fields present — the §3.6 limitation is addressed.");
    Ok(())
}
