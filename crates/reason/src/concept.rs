//! ALCQI concepts, roles, and TBoxes.
//!
//! The description logic of the Theorem 3 proof: ALC plus qualified
//! number restrictions (`≥n R.C`, `≤n R.C`) and inverse roles (`R⁻`).
//! Concepts are kept in **negation normal form** — negation only in front
//! of concept names — which is what the tableau consumes.

use std::collections::BTreeMap;
use std::fmt;

/// A role: a (relationship-field) name, possibly inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Role {
    /// Index into the TBox role-name table.
    pub name: u32,
    /// True for `R⁻`.
    pub inverse: bool,
}

impl Role {
    /// The inverse of this role.
    pub fn inverted(self) -> Role {
        Role {
            name: self.name,
            inverse: !self.inverse,
        }
    }
}

/// A concept in negation normal form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Concept {
    /// ⊤
    Top,
    /// ⊥
    Bottom,
    /// A concept name (index into the TBox concept-name table).
    Name(u32),
    /// ¬A for a concept name (NNF keeps negation atomic).
    NegName(u32),
    /// C ⊓ D ⊓ …
    And(Vec<Concept>),
    /// C ⊔ D ⊔ …
    Or(Vec<Concept>),
    /// ∀R.C
    Forall(Role, Box<Concept>),
    /// ≥n R.C (∃R.C is `AtLeast(1, …)`).
    AtLeast(u32, Role, Box<Concept>),
    /// ≤n R.C
    AtMost(u32, Role, Box<Concept>),
}

impl Concept {
    /// ∃R.C
    pub fn exists(role: Role, c: Concept) -> Concept {
        Concept::AtLeast(1, role, Box::new(c))
    }

    /// Negates the concept, renormalising to NNF.
    pub fn negate(&self) -> Concept {
        match self {
            Concept::Top => Concept::Bottom,
            Concept::Bottom => Concept::Top,
            Concept::Name(n) => Concept::NegName(*n),
            Concept::NegName(n) => Concept::Name(*n),
            Concept::And(cs) => Concept::Or(cs.iter().map(Concept::negate).collect()),
            Concept::Or(cs) => Concept::And(cs.iter().map(Concept::negate).collect()),
            Concept::Forall(r, c) => Concept::exists(*r, c.negate()),
            Concept::AtLeast(n, r, c) => {
                if *n == 0 {
                    // ≥0 R.C ≡ ⊤
                    Concept::Bottom
                } else {
                    Concept::AtMost(n - 1, *r, c.clone())
                }
            }
            Concept::AtMost(n, r, c) => Concept::AtLeast(n + 1, *r, c.clone()),
        }
    }

    /// Structural simplification: flatten nested ⊓/⊔, drop ⊤/⊥ units.
    pub fn simplify(self) -> Concept {
        match self {
            Concept::And(cs) => {
                let mut out = Vec::new();
                for c in cs {
                    match c.simplify() {
                        Concept::Top => {}
                        Concept::Bottom => return Concept::Bottom,
                        Concept::And(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => Concept::Top,
                    1 => out.pop().unwrap(),
                    _ => {
                        out.sort();
                        out.dedup();
                        Concept::And(out)
                    }
                }
            }
            Concept::Or(cs) => {
                let mut out = Vec::new();
                for c in cs {
                    match c.simplify() {
                        Concept::Bottom => {}
                        Concept::Top => return Concept::Top,
                        Concept::Or(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => Concept::Bottom,
                    1 => out.pop().unwrap(),
                    _ => {
                        out.sort();
                        out.dedup();
                        Concept::Or(out)
                    }
                }
            }
            Concept::Forall(r, c) => Concept::Forall(r, Box::new(c.simplify())),
            Concept::AtLeast(n, r, c) => Concept::AtLeast(n, r, Box::new(c.simplify())),
            // ≤0 R.C ≡ ∀R.¬C — canonicalising makes double negation
            // structurally involutive and lets the tableau treat the
            // common case with the cheaper ∀-rule.
            Concept::AtMost(0, r, c) => Concept::Forall(r, Box::new(c.negate().simplify())),
            Concept::AtMost(n, r, c) => Concept::AtMost(n, r, Box::new(c.simplify())),
            other => other,
        }
    }
}

/// A TBox: name tables plus a set of *global constraints* — the
/// internalised form of the axioms `C ⊑ D`, kept as NNF concepts that
/// every individual must satisfy (`¬C ⊔ D`).
#[derive(Debug, Clone, Default)]
pub struct TBox {
    concept_names: Vec<String>,
    concept_by_name: BTreeMap<String, u32>,
    role_names: Vec<String>,
    role_by_name: BTreeMap<String, u32>,
    /// Concepts every individual must satisfy.
    pub globals: Vec<Concept>,
}

impl TBox {
    /// Creates an empty TBox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a concept name.
    pub fn concept(&mut self, name: &str) -> Concept {
        Concept::Name(self.concept_id(name))
    }

    /// Interns a concept name, returning its id.
    pub fn concept_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.concept_by_name.get(name) {
            return id;
        }
        let id = self.concept_names.len() as u32;
        self.concept_names.push(name.to_owned());
        self.concept_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned concept name.
    pub fn find_concept(&self, name: &str) -> Option<u32> {
        self.concept_by_name.get(name).copied()
    }

    /// The name of a concept id.
    pub fn concept_name(&self, id: u32) -> &str {
        &self.concept_names[id as usize]
    }

    /// Interns a role name.
    pub fn role(&mut self, name: &str) -> Role {
        if let Some(&id) = self.role_by_name.get(name) {
            return Role {
                name: id,
                inverse: false,
            };
        }
        let id = self.role_names.len() as u32;
        self.role_names.push(name.to_owned());
        self.role_by_name.insert(name.to_owned(), id);
        Role {
            name: id,
            inverse: false,
        }
    }

    /// The name of a role id.
    pub fn role_name(&self, id: u32) -> &str {
        &self.role_names[id as usize]
    }

    /// Number of interned concept names.
    pub fn concept_count(&self) -> usize {
        self.concept_names.len()
    }

    /// Adds the axiom `sub ⊑ sup` (internalised as the global constraint
    /// `¬sub ⊔ sup`).
    pub fn add_subsumption(&mut self, sub: Concept, sup: Concept) {
        self.globals
            .push(Concept::Or(vec![sub.negate(), sup]).simplify());
    }

    /// Adds the axiom `a ≡ b` (two subsumptions).
    pub fn add_equivalence(&mut self, a: Concept, b: Concept) {
        self.add_subsumption(a.clone(), b.clone());
        self.add_subsumption(b, a);
    }

    /// Renders a concept for debugging.
    pub fn render(&self, c: &Concept) -> String {
        struct R<'a>(&'a TBox, &'a Concept);
        impl fmt::Display for R<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let (tb, c) = (self.0, self.1);
                match c {
                    Concept::Top => write!(f, "⊤"),
                    Concept::Bottom => write!(f, "⊥"),
                    Concept::Name(n) => write!(f, "{}", tb.concept_name(*n)),
                    Concept::NegName(n) => write!(f, "¬{}", tb.concept_name(*n)),
                    Concept::And(cs) => {
                        write!(f, "(")?;
                        for (i, x) in cs.iter().enumerate() {
                            if i > 0 {
                                write!(f, " ⊓ ")?;
                            }
                            write!(f, "{}", R(tb, x))?;
                        }
                        write!(f, ")")
                    }
                    Concept::Or(cs) => {
                        write!(f, "(")?;
                        for (i, x) in cs.iter().enumerate() {
                            if i > 0 {
                                write!(f, " ⊔ ")?;
                            }
                            write!(f, "{}", R(tb, x))?;
                        }
                        write!(f, ")")
                    }
                    Concept::Forall(r, x) => {
                        write!(f, "∀{}{}.{}", tb.role_name(r.name), inv(r), R(tb, x))
                    }
                    Concept::AtLeast(n, r, x) => {
                        write!(f, "≥{n} {}{}.{}", tb.role_name(r.name), inv(r), R(tb, x))
                    }
                    Concept::AtMost(n, r, x) => {
                        write!(f, "≤{n} {}{}.{}", tb.role_name(r.name), inv(r), R(tb, x))
                    }
                }
            }
        }
        fn inv(r: &Role) -> &'static str {
            if r.inverse {
                "⁻"
            } else {
                ""
            }
        }
        R(self, c).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: u32) -> Concept {
        Concept::Name(n)
    }

    #[test]
    fn negation_is_involutive_in_nnf() {
        let mut tb = TBox::new();
        let r = tb.role("f");
        let samples = vec![
            Concept::Top,
            Concept::Bottom,
            name(0),
            Concept::NegName(1),
            Concept::And(vec![name(0), name(1)]),
            Concept::Or(vec![name(0), Concept::NegName(1)]),
            Concept::Forall(r, Box::new(name(0))),
            Concept::AtLeast(2, r, Box::new(name(0))),
            Concept::AtMost(1, r, Box::new(name(0))),
        ];
        for c in samples {
            let back = c.negate().negate().simplify();
            assert_eq!(back, c.clone().simplify(), "double negation of {c:?}");
        }
    }

    #[test]
    fn negate_number_restrictions() {
        let mut tb = TBox::new();
        let r = tb.role("f");
        // ¬(≥1 R.C) = ≤0 R.C
        assert_eq!(
            Concept::exists(r, name(0)).negate(),
            Concept::AtMost(0, r, Box::new(name(0)))
        );
        // ¬(≤1 R.C) = ≥2 R.C
        assert_eq!(
            Concept::AtMost(1, r, Box::new(name(0))).negate(),
            Concept::AtLeast(2, r, Box::new(name(0)))
        );
        // ¬∀R.C = ∃R.¬C
        assert_eq!(
            Concept::Forall(r, Box::new(name(0))).negate(),
            Concept::exists(r, Concept::NegName(0))
        );
    }

    #[test]
    fn simplify_flattens_and_prunes() {
        let c = Concept::And(vec![
            Concept::Top,
            Concept::And(vec![name(0), name(1)]),
            name(0),
        ])
        .simplify();
        assert_eq!(c, Concept::And(vec![name(0), name(1)]));
        let c = Concept::Or(vec![Concept::Bottom, name(2)]).simplify();
        assert_eq!(c, name(2));
        let c = Concept::Or(vec![Concept::Top, name(2)]).simplify();
        assert_eq!(c, Concept::Top);
        let c = Concept::And(vec![Concept::Bottom, name(2)]).simplify();
        assert_eq!(c, Concept::Bottom);
        assert_eq!(Concept::And(vec![]).simplify(), Concept::Top);
        assert_eq!(Concept::Or(vec![]).simplify(), Concept::Bottom);
    }

    #[test]
    fn interning_is_stable() {
        let mut tb = TBox::new();
        let a1 = tb.concept_id("A");
        let b = tb.concept_id("B");
        let a2 = tb.concept_id("A");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(tb.concept_name(a1), "A");
        assert_eq!(tb.find_concept("B"), Some(b));
        assert_eq!(tb.find_concept("C"), None);
        let r1 = tb.role("f");
        let r2 = tb.role("f");
        assert_eq!(r1, r2);
        assert_eq!(r1.inverted().inverted(), r1);
    }

    #[test]
    fn subsumption_internalises() {
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let b = tb.concept("B");
        tb.add_subsumption(a.clone(), b.clone());
        assert_eq!(tb.globals.len(), 1);
        // ¬A ⊔ B
        assert_eq!(
            tb.globals[0],
            Concept::Or(vec![b, Concept::NegName(0)]).simplify()
        );
    }

    #[test]
    fn render_is_readable() {
        let mut tb = TBox::new();
        let a = tb.concept("A");
        let r = tb.role("f");
        let c = Concept::AtMost(1, r.inverted(), Box::new(a));
        assert_eq!(tb.render(&c), "≤1 f⁻.A");
    }
}
