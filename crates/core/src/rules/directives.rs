//! Kernels for directive satisfaction — rules DS1–DS7 (Definition 5.2).
//!
//! DS7 (`@key`) is the one rule relating *pairs* of nodes, so its kernel
//! is split into a tuple-collect and a pair-emit phase. The three
//! [`Ds7Plan`](super::Ds7Plan)s compose them differently: [`ds7`] runs
//! both inline, [`ds7_map`] collects shard-local tables for a later
//! cross-shard [`ds7_emit`] reduce, and [`ds7_recheck`] maintains the
//! persistent [`KeyTable`]s of an incremental session.

use std::collections::HashMap;

use pgraph::{NodeId, PropertyGraph, Value};

use crate::pgschema::{KeyConstraint, PgSchema};
use crate::report::{Rule, Violation};
use crate::ValidationOptions;

use super::{Scope, Sink};

/// DS1 (`@distinct`): no parallel edges between the same endpoints with
/// the same label — via the parallel-edge groups whose source the scope
/// owns.
pub(crate) fn ds1(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS1, |sink| {
        let (g, s) = (scope.g, scope.s);
        for site in s.constraint_sites() {
            if !site.rel.distinct {
                continue;
            }
            for (src, label, dst, edges) in scope.ix.parallel_groups() {
                if sink.at_limit() {
                    return;
                }
                if label != site.rel.name || edges.len() < 2 || !scope.owns(src) {
                    continue;
                }
                sink.group_visited();
                if s.label_subtype(g.node_label(src).unwrap_or(""), site.site) {
                    sink.push(Violation::DistinctViolated {
                        source: src,
                        target: dst,
                        field: label.to_owned(),
                        count: edges.len(),
                    });
                }
            }
        }
    });
}

/// DS2 (`@noLoops`): no self-loops — one scan over the scope's edges per
/// run (all loop sites checked in the same pass).
pub(crate) fn ds2(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS2, |sink| {
        let (g, s) = (scope.g, scope.s);
        let loop_sites: Vec<_> = s
            .constraint_sites()
            .iter()
            .filter(|site| site.rel.no_loops)
            .collect();
        if loop_sites.is_empty() {
            return;
        }
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            if e.source() != e.target() {
                continue;
            }
            for site in &loop_sites {
                if e.label() == site.rel.name
                    && s.label_subtype(g.node_label(e.source()).unwrap_or(""), site.site)
                {
                    sink.push(Violation::LoopViolated {
                        node: e.source(),
                        field: site.rel.name.clone(),
                    });
                }
            }
        }
    });
}

/// DS3 (`@uniqueForTarget`): at most one incoming edge per target — via
/// the `(target, label)` in-groups whose target the scope owns, counting
/// only edges whose source is below the constraint site (cf. the DS3
/// reading note in the naive engine).
pub(crate) fn ds3(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS3, |sink| {
        let (g, s) = (scope.g, scope.s);
        for site in s.constraint_sites() {
            if !site.rel.unique_for_target {
                continue;
            }
            for (target, label, edges) in scope.ix.in_groups() {
                if sink.at_limit() {
                    return;
                }
                if label != site.rel.name || edges.len() < 2 || !scope.owns(target) {
                    continue;
                }
                sink.group_visited();
                let count = edges
                    .iter()
                    .filter(|&&e| {
                        let src = g.edge_endpoints(e).map(|(s0, _)| s0);
                        src.is_some_and(|v| {
                            s.label_subtype(g.node_label(v).unwrap_or(""), site.site)
                        })
                    })
                    .count();
                if count > 1 {
                    sink.push(Violation::UniqueForTargetViolated {
                        target,
                        field: label.to_owned(),
                        count,
                    });
                }
            }
        }
    });
}

/// DS4 (`@requiredForTarget`): at least one incoming edge per target —
/// via the label index: for every owned node whose label is below the
/// field type, check the incoming `(target, label)` group.
pub(crate) fn ds4(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS4, |sink| {
        let (g, s, ix) = (scope.g, scope.s, scope.ix);
        for site in s.constraint_sites() {
            if !site.rel.required_for_target {
                continue;
            }
            for label in scope.labels {
                if sink.at_limit() {
                    return;
                }
                if !s.label_subtype_wrapped(label, &site.rel.ty) {
                    continue;
                }
                for &n in ix.nodes_with_label(label) {
                    if !scope.owns(n) {
                        continue;
                    }
                    sink.group_visited();
                    let ok = ix.in_edges_labelled(n, &site.rel.name).iter().any(|&e| {
                        g.edge_endpoints(e).is_some_and(|(src, _)| {
                            s.label_subtype(g.node_label(src).unwrap_or(""), site.site)
                        })
                    });
                    if !ok {
                        sink.push(Violation::RequiredForTargetViolated {
                            target: n,
                            field: site.rel.name.clone(),
                            site: s.schema().type_name(site.site).to_owned(),
                        });
                    }
                }
            }
        }
    });
}

/// DS5 (`@required` on attributes): required properties are present and
/// non-empty — via the label index, over owned nodes.
pub(crate) fn ds5(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS5, |sink| {
        let (g, s, ix) = (scope.g, scope.s, scope.ix);
        let sites: Vec<_> = s
            .schema()
            .object_types()
            .chain(s.schema().interface_types())
            .flat_map(|t| {
                s.attributes(t)
                    .iter()
                    .filter(|a| a.required)
                    .map(move |a| (t, a))
            })
            .collect();
        for (t, attr) in sites {
            for label in scope.labels {
                if sink.at_limit() {
                    return;
                }
                if !s.label_subtype(label, t) {
                    continue;
                }
                for &n in ix.nodes_with_label(label) {
                    if !scope.owns(n) {
                        continue;
                    }
                    sink.group_visited();
                    match g.node_property(n, &attr.name) {
                        None => sink.push(Violation::RequiredPropertyMissing {
                            node: n,
                            field: attr.name.clone(),
                            empty_list: false,
                        }),
                        Some(Value::List(items)) if attr.ty.is_list() && items.is_empty() => {
                            sink.push(Violation::RequiredPropertyMissing {
                                node: n,
                                field: attr.name.clone(),
                                empty_list: true,
                            });
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    });
}

/// DS6 (`@required` on relationships): required outgoing edges exist —
/// via the label index and out-groups, over owned nodes.
pub(crate) fn ds6(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS6, |sink| {
        let (s, ix) = (scope.s, scope.ix);
        for site in s.constraint_sites() {
            if !site.rel.required {
                continue;
            }
            for label in scope.labels {
                if sink.at_limit() {
                    return;
                }
                if !s.label_subtype(label, site.site) {
                    continue;
                }
                for &n in ix.nodes_with_label(label) {
                    if !scope.owns(n) {
                        continue;
                    }
                    sink.group_visited();
                    if ix.out_edges_labelled(n, &site.rel.name).is_empty() {
                        sink.push(Violation::RequiredEdgeMissing {
                            node: n,
                            field: site.rel.name.clone(),
                        });
                    }
                }
            }
        }
    });
}

/// The scalar fields of a key (only those participate in DS7; condition
/// `typeS(t, fi) ∈ S∪WS`).
pub(crate) fn ds7_scalar_fields<'s>(s: &'s PgSchema, key: &'s KeyConstraint) -> Vec<&'s str> {
    key.fields
        .iter()
        .filter(|f| {
            s.schema()
                .field(key.site, f)
                .is_some_and(|fi| s.schema().is_scalar(fi.ty.base))
        })
        .map(String::as_str)
        .collect()
}

/// DS7 map phase: groups the owned nodes below the key's site by their
/// key tuple.
///
/// A key tuple is the vector of `Option<Value>` over the key's scalar
/// fields; DS7's "agree" relation (both lack the property, or both have
/// equal values) is exactly tuple equality, so tables from disjoint
/// shards merge by appending the node lists.
fn ds7_collect(
    scope: &Scope<'_, '_>,
    sink: &mut Sink<'_>,
    key: &KeyConstraint,
    scalar_fields: &[&str],
) -> HashMap<Vec<Option<Value>>, Vec<NodeId>> {
    let (g, s, ix) = (scope.g, scope.s, scope.ix);
    let mut groups: HashMap<Vec<Option<Value>>, Vec<NodeId>> = HashMap::new();
    for label in scope.labels {
        if !s.label_subtype(label, key.site) {
            continue;
        }
        for &n in ix.nodes_with_label(label) {
            if !scope.owns(n) {
                continue;
            }
            sink.group_visited();
            let tuple: Vec<Option<Value>> = scalar_fields
                .iter()
                .map(|f| g.node_property(n, f).cloned())
                .collect();
            groups.entry(tuple).or_default().push(n);
        }
    }
    groups
}

/// DS7 reduce phase: emits one violation per unordered pair of nodes
/// sharing a key tuple, in sorted node order. Used inline by [`ds7`] and
/// by the parallel engine's cross-shard merge.
pub(crate) fn ds7_emit(
    s: &PgSchema,
    key: &KeyConstraint,
    groups: HashMap<Vec<Option<Value>>, Vec<NodeId>>,
    r: &mut crate::report::ValidationReport,
) {
    for mut nodes in groups.into_values() {
        if nodes.len() < 2 {
            continue;
        }
        if r.at_limit() {
            return;
        }
        nodes.sort();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in nodes.iter().skip(i + 1) {
                r.push(Violation::KeyViolated {
                    a,
                    b,
                    ty: s.schema().type_name(key.site).to_owned(),
                    fields: key.fields.clone(),
                });
            }
        }
    }
}

/// DS7 (`@key`), inline plan: collect and emit per key (serial
/// full-graph engines).
pub(crate) fn ds7(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS7, |sink| {
        let s = scope.s;
        for key in s.keys() {
            if sink.at_limit() {
                return;
            }
            let scalar_fields = ds7_scalar_fields(s, key);
            let groups = ds7_collect(scope, sink, key, &scalar_fields);
            ds7_emit(s, key, groups, sink.report);
        }
    });
}

/// DS7, map plan: collect one shard-local tuple table per key (in schema
/// key order) for the caller's cross-shard reduce. Emits no violations
/// itself; the recorded DS7 timing covers the map side only — the
/// planner adds the reduce time after the join.
pub(crate) fn ds7_map(
    scope: &Scope<'_, '_>,
    sink: &mut Sink<'_>,
    tables: &mut Vec<HashMap<Vec<Option<Value>>, Vec<NodeId>>>,
) {
    sink.rule(Rule::DS7, |sink| {
        for key in scope.s.keys() {
            let scalar_fields = ds7_scalar_fields(scope.s, key);
            tables.push(ds7_collect(scope, sink, key, &scalar_fields));
        }
    });
}

/// Per-`@key` persistent state of an incremental session: each node's
/// current key tuple and the groups of nodes sharing one — the durable
/// form of the DS7 collect phase.
pub(crate) struct KeyTable {
    scalar_fields: Vec<String>,
    tuples: HashMap<NodeId, Vec<Option<Value>>>,
    groups: HashMap<Vec<Option<Value>>, Vec<NodeId>>,
}

/// Seeds one tuple table per key constraint (directives only) from a
/// full pass over the graph.
pub(crate) fn build_key_tables(
    s: &PgSchema,
    g: &PropertyGraph,
    options: &ValidationOptions,
) -> Vec<KeyTable> {
    if !options.directives {
        return Vec::new();
    }
    s.keys()
        .iter()
        .map(|key| {
            let scalar_fields: Vec<String> = ds7_scalar_fields(s, key)
                .into_iter()
                .map(str::to_owned)
                .collect();
            let mut table = KeyTable {
                scalar_fields,
                tuples: HashMap::new(),
                groups: HashMap::new(),
            };
            for n in g.nodes() {
                if s.label_subtype(n.label(), key.site) {
                    let tuple: Vec<Option<Value>> = table
                        .scalar_fields
                        .iter()
                        .map(|f| g.node_property(n.id, f).cloned())
                        .collect();
                    table.groups.entry(tuple.clone()).or_default().push(n.id);
                    table.tuples.insert(n.id, tuple);
                }
            }
            table
        })
        .collect()
}

/// DS7, recheck plan: move each dirty node between tuple groups and
/// re-emit the pairs it now participates in. Pairs between two non-dirty
/// nodes were never dropped and stay valid (their tuples did not
/// change). Requires a dirty scope.
pub(crate) fn ds7_recheck(scope: &Scope<'_, '_>, sink: &mut Sink<'_>, tables: &mut [KeyTable]) {
    let dirty = scope
        .dirty_nodes()
        .expect("DS7 recheck plan requires a dirty scope");
    sink.rule(Rule::DS7, |sink| {
        let (g, s) = (scope.g, scope.s);
        for (key, table) in s.keys().iter().zip(tables) {
            for &v in dirty {
                sink.group_visited();
                if let Some(old) = table.tuples.remove(&v) {
                    if let Some(group) = table.groups.get_mut(&old) {
                        group.retain(|&n| n != v);
                        if group.is_empty() {
                            table.groups.remove(&old);
                        }
                    }
                }
                let Some(label) = g.node_label(v) else {
                    continue; // removed node: it only leaves its group
                };
                if !s.label_subtype(label, key.site) {
                    continue;
                }
                let tuple: Vec<Option<Value>> = table
                    .scalar_fields
                    .iter()
                    .map(|f| g.node_property(v, f).cloned())
                    .collect();
                table.groups.entry(tuple.clone()).or_default().push(v);
                table.tuples.insert(v, tuple);
            }
            // Emit the pairs involving dirty members of their (new) groups.
            for &v in dirty {
                let Some(tuple) = table.tuples.get(&v) else {
                    continue;
                };
                for &w in &table.groups[tuple] {
                    if w == v {
                        continue;
                    }
                    let (a, b) = if v < w { (v, w) } else { (w, v) };
                    sink.push(Violation::KeyViolated {
                        a,
                        b,
                        ty: s.schema().type_name(key.site).to_owned(),
                        fields: key.fields.clone(),
                    });
                }
            }
        }
    });
}
