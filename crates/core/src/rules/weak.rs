//! Kernels for weak satisfaction — rules WS1–WS4 (Definition 5.1).

use crate::report::{Rule, Violation};

use super::{Scope, Sink};

/// WS1: node property values conform to their declared attribute types —
/// one scan over the scope's nodes.
pub(crate) fn ws1(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::WS1, |sink| {
        let s = scope.s;
        for n in scope.nodes() {
            if sink.at_limit() {
                return;
            }
            sink.node_visited();
            for (prop, value) in n.properties() {
                if let Some(attr) = s.attribute(n.label(), prop) {
                    if !s.schema().value_conforms(value, &attr.ty) {
                        sink.push(Violation::NodePropertyType {
                            node: n.id,
                            field: prop.to_owned(),
                            value: value.to_string(),
                            expected: s.display_type(&attr.ty),
                        });
                    }
                }
            }
        }
    });
}

/// WS2: edge property values conform to their declared argument types
/// (relationship fields only; attribute field arguments are ignored per
/// §3.6) — one scan over the scope's edges.
pub(crate) fn ws2(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::WS2, |sink| {
        let (g, s) = (scope.g, scope.s);
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            let src_label = g.node_label(e.source()).unwrap_or("");
            let Some(rel) = s.relationship(src_label, e.label()) else {
                continue;
            };
            for (prop, value) in e.properties() {
                if let Some(ep) = rel.edge_props.iter().find(|p| p.name == prop) {
                    if !s.schema().value_conforms(value, &ep.ty) {
                        sink.push(Violation::EdgePropertyType {
                            edge: e.id,
                            prop: prop.to_owned(),
                            value: value.to_string(),
                            expected: s.display_type(&ep.ty),
                        });
                    }
                }
            }
        }
    });
}

/// WS3: an edge's target label is a subtype of the field's base type —
/// checked over *all* field definitions of the source type, in one scan
/// over the scope's edges.
pub(crate) fn ws3(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::WS3, |sink| {
        let (g, s) = (scope.g, scope.s);
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            let src_label = g.node_label(e.source()).unwrap_or("");
            let Some(src_ty) = s.label_type(src_label) else {
                continue;
            };
            let Some(field) = s.schema().field(src_ty, e.label()) else {
                continue;
            };
            let target_label = g.node_label(e.target()).unwrap_or("");
            if !s.label_subtype(target_label, field.ty.base) {
                sink.push(Violation::EdgeTargetType {
                    edge: e.id,
                    target: e.target(),
                    target_label: target_label.to_owned(),
                    expected: s.schema().type_name(field.ty.base).to_owned(),
                });
            }
        }
    });
}

/// WS4: at most one outgoing edge per non-list relationship field — via
/// the `(source, label)` out-groups whose source the scope owns.
pub(crate) fn ws4(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::WS4, |sink| {
        let (g, s) = (scope.g, scope.s);
        for (source, label, edges) in scope.ix.out_groups() {
            if sink.at_limit() {
                return;
            }
            if edges.len() < 2 || !scope.owns(source) {
                continue;
            }
            sink.group_visited();
            let Some(src_label) = g.node_label(source) else {
                continue;
            };
            let Some(src_ty) = s.label_type(src_label) else {
                continue;
            };
            let Some(field) = s.schema().field(src_ty, label) else {
                continue;
            };
            if !field.ty.is_list() {
                sink.push(Violation::NonListFieldMultiEdge {
                    source,
                    field: label.to_owned(),
                    count: edges.len(),
                });
            }
        }
    });
}
