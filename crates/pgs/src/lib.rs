//! PG-Schema frontend for the property-graph validation suite.
//!
//! The paper defines property-graph schemas through the GraphQL SDL;
//! PG-Schema (Angles et al., "PG-Schema: Schemas for Property Graphs")
//! is the community's ISO-GQL-adjacent schema language for the same job.
//! This crate makes the rule kernels *language*-agnostic: a hand-rolled
//! [`lexer`]/[`parser`] for a practical PG-Schema subset, a [`lower`]ing
//! compiler onto the existing [`pg_schema::PgSchema`] core (so all four
//! engines, metrics, sessions, durability and replication just work),
//! and a [`print`]er rendering SDL documents back as PG-Schema over the
//! overlapping fragment.
//!
//! # The language pragma
//!
//! Persisted schema text (session WAL records, `SchemaChange` bodies,
//! snapshots, replication) stays SDL: a compiled PG-Schema document is
//! stored as its lowered SDL prefixed with a one-line comment pragma,
//!
//! ```text
//! # schema-language: pgschema loose
//! ```
//!
//! `#` comments are ignored tokens in SDL, so every existing store and
//! wire path handles the tagged text unchanged, while [`pragma_of`]
//! recovers the source language and type mode on rehydration — which is
//! how a `LOOSE` (open-world) session keeps its strong rule family off
//! across restarts, replicas and cross-language migration windows.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod print;
pub mod token;

pub mod corpus;

pub use ast::TypeMode;
pub use error::{ParseError, ParseErrorKind};
pub use lexer::Lexer;
pub use lower::{compile, Compiled};
pub use parser::parse;
pub use print::{print_pgschema, PrintError};

use pg_schema::ValidationOptions;

/// Which schema language a text is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchemaLanguage {
    /// The paper's GraphQL SDL dialect.
    #[default]
    Sdl,
    /// The PG-Schema subset this crate compiles.
    PgSchema,
}

impl SchemaLanguage {
    /// The accepted `--lang` / `?lang=` spellings.
    pub const NAMES: &'static [&'static str] = &["sdl", "pgschema"];

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SchemaLanguage::Sdl => "sdl",
            SchemaLanguage::PgSchema => "pgschema",
        }
    }

    /// Infers the language from a file extension: `.pgs`/`.pgschema` →
    /// PG-Schema, anything else (`.graphql`, `.sdl`, …) → SDL.
    pub fn detect(path: &std::path::Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some("pgs") | Some("pgschema") => SchemaLanguage::PgSchema,
            _ => SchemaLanguage::Sdl,
        }
    }
}

impl std::fmt::Display for SchemaLanguage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchemaLanguage {
    type Err = pgraph::ParseEnumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sdl" => Ok(SchemaLanguage::Sdl),
            "pgschema" => Ok(SchemaLanguage::PgSchema),
            other => Err(pgraph::ParseEnumError::new(
                "schema language",
                other,
                Self::NAMES,
            )),
        }
    }
}

/// The prefix of the language pragma comment (first line of persisted
/// schema text compiled from a non-SDL frontend). Quoted verbatim by
/// docs/replication.md's SchemaChange section and pinned by the
/// spec-parity tests.
pub const PRAGMA_PREFIX: &str = "# schema-language:";

/// The pragma line recorded for a compiled PG-Schema document.
pub fn pragma_line(mode: TypeMode) -> String {
    format!("{PRAGMA_PREFIX} pgschema {}", mode.name())
}

/// Recovers the source language and type mode from persisted schema
/// text. Returns `None` for plain SDL (no pragma, or one that does not
/// parse — unknown future tags are deliberately ignored, not errors).
pub fn pragma_of(sdl: &str) -> Option<(SchemaLanguage, TypeMode)> {
    let first = sdl.lines().find(|l| !l.trim().is_empty())?;
    let rest = first.trim().strip_prefix(PRAGMA_PREFIX)?;
    let mut words = rest.split_whitespace();
    let lang: SchemaLanguage = words.next()?.parse().ok()?;
    let mode: TypeMode = words.next()?.parse().ok()?;
    words.next().is_none().then_some((lang, mode))
}

/// Adjusts validation options per the text's language pragma: a `LOOSE`
/// graph type is open-world, so the strong (closed-world) rule family is
/// switched off. Plain SDL and `STRICT` text return `options` unchanged.
/// Server sessions apply this at every (re)hydration, which keeps the
/// mode durable without a store-format change.
pub fn apply_pragma(options: &ValidationOptions, sdl: &str) -> ValidationOptions {
    let mut out = *options;
    if let Some((_, TypeMode::Loose)) = pragma_of(sdl) {
        out.strong = false;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn language_names_parse_via_the_shared_enum_error() {
        assert_eq!(
            "sdl".parse::<SchemaLanguage>().unwrap(),
            SchemaLanguage::Sdl
        );
        assert_eq!(
            "pgschema".parse::<SchemaLanguage>().unwrap(),
            SchemaLanguage::PgSchema
        );
        let err = "gql".parse::<SchemaLanguage>().unwrap_err();
        assert!(err.to_string().contains("schema language"), "{err}");
        assert!(err.to_string().contains("sdl"), "{err}");
        let err = "open".parse::<TypeMode>().unwrap_err();
        assert!(err.to_string().contains("strict"), "{err}");
    }

    #[test]
    fn detection_by_extension() {
        use std::path::Path;
        assert_eq!(
            SchemaLanguage::detect(Path::new("a/b.pgs")),
            SchemaLanguage::PgSchema
        );
        assert_eq!(
            SchemaLanguage::detect(Path::new("b.pgschema")),
            SchemaLanguage::PgSchema
        );
        assert_eq!(
            SchemaLanguage::detect(Path::new("c.graphql")),
            SchemaLanguage::Sdl
        );
        assert_eq!(
            SchemaLanguage::detect(Path::new("noext")),
            SchemaLanguage::Sdl
        );
    }

    #[test]
    fn pragma_round_trips() {
        let line = pragma_line(TypeMode::Loose);
        assert_eq!(
            pragma_of(&format!("{line}\ntype T {{ x: Int! }}")),
            Some((SchemaLanguage::PgSchema, TypeMode::Loose))
        );
        assert_eq!(pragma_of("type T { x: Int! }"), None);
        assert_eq!(pragma_of("# just a comment\ntype T { x: Int! }"), None);
        // Unknown tags in a pragma-shaped line are ignored, not errors.
        assert_eq!(pragma_of("# schema-language: cypher strict\n"), None);
        assert_eq!(
            pragma_of("# schema-language: pgschema strict extra\n"),
            None
        );
    }

    #[test]
    fn loose_pragma_switches_off_the_strong_family() {
        let base = ValidationOptions::default();
        assert!(base.strong);
        let loose = apply_pragma(&base, &format!("{}\n", pragma_line(TypeMode::Loose)));
        assert!(!loose.strong && loose.weak && loose.directives);
        let strict = apply_pragma(&base, &format!("{}\n", pragma_line(TypeMode::Strict)));
        assert!(strict.strong);
        let sdl = apply_pragma(&base, "type T { x: Int! }");
        assert!(sdl.strong);
    }
}
