//! Building a [`Schema`] from a parsed SDL document.
//!
//! Building enforces everything Definition 4.1 requires structurally
//! (resolvable type references, the paper's wrapping-type restriction,
//! unions over object types, implements over interfaces) and *ignores with
//! a warning* the SDL features §3.6 of the paper excludes (input object
//! types, root-operation `schema` blocks, arguments of attribute fields,
//! complex argument types). Semantic consistency (Definitions 4.3–4.5) is
//! checked separately by [`crate::consistency::check`].

use std::collections::HashMap;

use gql_sdl::ast;
use gql_sdl::Span;
use pgraph::Value;

use crate::directives as dir;
use crate::model::*;
use crate::wrap::{Wrap, WrappedType};

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The schema cannot be built / used.
    Error,
    /// The construct is ignored by the Property-Graph semantics.
    Warning,
}

/// What the diagnostic is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// Two definitions share a name.
    DuplicateType(String),
    /// A referenced type name is not defined.
    UnknownType(String),
    /// A wrapping shape outside `t!`, `[t]`, `[t!]`, `[t]!`, `[t!]!`.
    UnsupportedWrapping(String),
    /// A union member that is not an object type.
    BadUnionMember {
        /** union name */
        union: String,
        /** offending member */
        member: String,
    },
    /// An `implements` target that is not an interface type.
    BadImplements {
        /** object name */
        object: String,
        /** offending target */
        target: String,
    },
    /// Duplicate field name within one type.
    DuplicateField {
        /** type name */
        ty: String,
        /** field name */
        field: String,
    },
    /// Duplicate argument name within one field.
    DuplicateArg {
        /** type name */
        ty: String,
        /** field name */
        field: String,
        /** arg name */
        arg: String,
    },
    /// Duplicate enum symbol.
    DuplicateEnumValue {
        /** enum name */
        ty: String,
        /** symbol */
        value: String,
    },
    /// An input object type: representable in SDL, ignored by the paper.
    IgnoredInputType(String),
    /// A `schema { ... }` block: ignored by the paper (§3.6).
    IgnoredSchemaBlock,
    /// A field argument whose type is not scalar-based: ignored (§3.6).
    IgnoredComplexArgument {
        /** type name */
        ty: String,
        /** field name */
        field: String,
        /** arg name */
        arg: String,
    },
    /// An argument on an *attribute* (scalar-typed) field: ignored (§3.6).
    IgnoredAttributeArgument {
        /** type name */
        ty: String,
        /** field name */
        field: String,
        /** arg name */
        arg: String,
    },
    /// A directive argument value that is an input object literal —
    /// not representable as a property value.
    UnrepresentableDirectiveArg {
        /** directive name */
        directive: String,
        /** arg name */
        arg: String,
    },
    /// A user redefinition of a built-in directive; the built-in wins.
    RedefinedBuiltinDirective(String),
    /// A type name that collides with a built-in scalar.
    RedefinedBuiltinScalar(String),
    /// A type extension could not be folded into its base definition.
    ExtensionError(String),
}

/// A build-time diagnostic with a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How severe it is.
    pub severity: Severity,
    /// What it is about.
    pub kind: DiagnosticKind,
    /// Where in the SDL source.
    pub span: Span,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev} at {}: {:?}", self.span.start, self.kind)
    }
}

/// Builds a schema, failing if any error-severity diagnostic arises.
/// Warnings are discarded; use [`build_schema_with_diagnostics`] to see
/// them.
pub fn build_schema(doc: &ast::Document) -> Result<Schema, Vec<Diagnostic>> {
    let (schema, diags) = build_schema_with_diagnostics(doc);
    match schema {
        Some(s) => Ok(s),
        None => Err(diags),
    }
}

/// Builds a schema and returns all diagnostics. The schema is `None` iff
/// an error-severity diagnostic was produced.
pub fn build_schema_with_diagnostics(doc: &ast::Document) -> (Option<Schema>, Vec<Diagnostic>) {
    // Fold `extend …` definitions into their bases first (spec §3.4.3).
    let doc = match gql_sdl::extensions::merge_extensions(doc) {
        Ok(merged) => merged,
        Err(e) => {
            return (
                None,
                vec![Diagnostic {
                    severity: Severity::Error,
                    kind: DiagnosticKind::ExtensionError(e.to_string()),
                    span: Span::at(gql_sdl::Pos::start()),
                }],
            );
        }
    };
    let doc = &doc;
    let mut b = Builder::default();
    b.register_builtins();
    b.register_names(doc);
    b.register_directive_defs(doc);
    b.build_payloads(doc);
    b.compute_implementors();
    let has_error = b.diags.iter().any(|d| d.severity == Severity::Error);
    if has_error {
        (None, b.diags)
    } else {
        (Some(b.schema), b.diags)
    }
}

#[derive(Default)]
struct Builder {
    schema: Schema,
    diags: Vec<Diagnostic>,
    /// input object type names (ignored, but must not be "unknown").
    input_names: HashMap<String, Span>,
}

impl Builder {
    fn error(&mut self, kind: DiagnosticKind, span: Span) {
        self.diags.push(Diagnostic {
            severity: Severity::Error,
            kind,
            span,
        });
    }

    fn warn(&mut self, kind: DiagnosticKind, span: Span) {
        self.diags.push(Diagnostic {
            severity: Severity::Warning,
            kind,
            span,
        });
    }

    fn add_type(&mut self, name: &str, kind: TypeKind) -> TypeId {
        let id = TypeId::from_index(self.schema.types.len());
        self.schema.types.push(TypeInfo {
            name: name.to_owned(),
            kind,
            directives: Vec::new(),
        });
        self.schema.by_name.insert(name.to_owned(), id);
        id
    }

    fn register_builtins(&mut self) {
        for s in BuiltinScalar::ALL {
            self.add_type(s.name(), TypeKind::Scalar(ScalarInfo::Builtin(s)));
        }
        let string = self.schema.by_name["String"];
        // The paper (§4.3): "we assume that D contains the directives
        // @distinct, @noLoops, @required, @requiredForTarget,
        // @uniqueForTarget and @key, … they have no arguments, except for
        // @key for which typeAD(@key, fields) = [String!]!".
        let no_args = |name: &str| DirectiveDecl {
            name: name.to_owned(),
            args: Vec::new(),
            locations: Vec::new(),
        };
        for name in [
            dir::REQUIRED,
            dir::DISTINCT,
            dir::NO_LOOPS,
            dir::UNIQUE_FOR_TARGET,
            dir::REQUIRED_FOR_TARGET,
        ] {
            self.add_directive_decl(no_args(name));
        }
        self.add_directive_decl(DirectiveDecl {
            name: dir::KEY.to_owned(),
            args: vec![ArgInfo {
                name: "fields".to_owned(),
                ty: WrappedType::list(string, true, true),
                scalar_based: true,
                default: None,
                directives: Vec::new(),
            }],
            locations: vec!["OBJECT".to_owned()],
        });
        // @deprecated is a spec built-in frequently present in real SDL;
        // declaring it keeps such schemas directives-consistent. It has no
        // Property-Graph meaning.
        self.add_directive_decl(DirectiveDecl {
            name: "deprecated".to_owned(),
            args: vec![ArgInfo {
                name: "reason".to_owned(),
                ty: WrappedType::bare(string),
                scalar_based: true,
                default: Some(Value::String("No longer supported".to_owned())),
                directives: Vec::new(),
            }],
            locations: vec!["FIELD_DEFINITION".to_owned(), "ENUM_VALUE".to_owned()],
        });
    }

    fn add_directive_decl(&mut self, decl: DirectiveDecl) {
        let ix = self.schema.directive_decls.len();
        self.schema.dir_by_name.insert(decl.name.clone(), ix);
        self.schema.directive_decls.push(decl);
    }

    fn register_names(&mut self, doc: &ast::Document) {
        for def in &doc.definitions {
            let ast::Definition::Type(t) = def else {
                if let ast::Definition::Schema(s) = def {
                    self.warn(DiagnosticKind::IgnoredSchemaBlock, s.span);
                }
                continue;
            };
            let name = t.name();
            if BuiltinScalar::ALL.iter().any(|b| b.name() == name) {
                self.error(
                    DiagnosticKind::RedefinedBuiltinScalar(name.to_owned()),
                    t.span(),
                );
                continue;
            }
            if self.schema.by_name.contains_key(name) || self.input_names.contains_key(name) {
                self.error(DiagnosticKind::DuplicateType(name.to_owned()), t.span());
                continue;
            }
            match t {
                ast::TypeDef::Scalar(_) => {
                    self.add_type(name, TypeKind::Scalar(ScalarInfo::Custom));
                }
                ast::TypeDef::Enum(e) => {
                    let mut values = Vec::with_capacity(e.values.len());
                    for v in &e.values {
                        if values.contains(&v.name) {
                            self.error(
                                DiagnosticKind::DuplicateEnumValue {
                                    ty: name.to_owned(),
                                    value: v.name.clone(),
                                },
                                e.span,
                            );
                        } else {
                            values.push(v.name.clone());
                        }
                    }
                    self.add_type(name, TypeKind::Scalar(ScalarInfo::Enum(values)));
                }
                ast::TypeDef::Object(_) => {
                    self.add_type(name, TypeKind::Object(ObjectInfo::default()));
                }
                ast::TypeDef::Interface(_) => {
                    self.add_type(name, TypeKind::Interface(ObjectInfo::default()));
                }
                ast::TypeDef::Union(_) => {
                    self.add_type(name, TypeKind::Union(Vec::new()));
                }
                ast::TypeDef::InputObject(io) => {
                    self.warn(DiagnosticKind::IgnoredInputType(name.to_owned()), io.span);
                    self.input_names.insert(name.to_owned(), io.span);
                    self.schema.ignored_input_types.push(name.to_owned());
                }
            }
        }
    }

    fn register_directive_defs(&mut self, doc: &ast::Document) {
        for def in &doc.definitions {
            let ast::Definition::Directive(d) = def else {
                continue;
            };
            let canonical = canonical_directive_name(&d.name);
            if self.schema.dir_by_name.contains_key(canonical.as_str()) {
                self.warn(
                    DiagnosticKind::RedefinedBuiltinDirective(d.name.clone()),
                    d.span,
                );
                continue;
            }
            let args = d
                .args
                .iter()
                .filter_map(|a| self.convert_arg(a, &d.name, "", true))
                .collect();
            self.add_directive_decl(DirectiveDecl {
                name: canonical,
                args,
                locations: d.locations.clone(),
            });
        }
    }

    fn build_payloads(&mut self, doc: &ast::Document) {
        for def in &doc.definitions {
            let ast::Definition::Type(t) = def else {
                continue;
            };
            let Some(&id) = self.schema.by_name.get(t.name()) else {
                continue; // duplicate or input type; already diagnosed
            };
            match t {
                ast::TypeDef::Object(o) => {
                    let implements = self.resolve_implements(o);
                    let fields = self.convert_fields(&o.name, &o.fields);
                    let directives = self.convert_directive_uses(&o.directives);
                    let info = &mut self.schema.types[id.index()];
                    info.directives = directives;
                    info.kind = TypeKind::Object(make_object(implements, fields));
                }
                ast::TypeDef::Interface(i) => {
                    let fields = self.convert_fields(&i.name, &i.fields);
                    let directives = self.convert_directive_uses(&i.directives);
                    let info = &mut self.schema.types[id.index()];
                    info.directives = directives;
                    info.kind = TypeKind::Interface(make_object(Vec::new(), fields));
                }
                ast::TypeDef::Union(u) => {
                    let mut members = Vec::with_capacity(u.members.len());
                    for m in &u.members {
                        match self.schema.by_name.get(m) {
                            Some(&mid)
                                if matches!(
                                    self.schema.types[mid.index()].kind,
                                    TypeKind::Object(_)
                                ) =>
                            {
                                members.push(mid);
                            }
                            Some(_) => self.error(
                                DiagnosticKind::BadUnionMember {
                                    union: u.name.clone(),
                                    member: m.clone(),
                                },
                                u.span,
                            ),
                            None => self.error(DiagnosticKind::UnknownType(m.clone()), u.span),
                        }
                    }
                    let directives = self.convert_directive_uses(&u.directives);
                    let info = &mut self.schema.types[id.index()];
                    info.directives = directives;
                    info.kind = TypeKind::Union(members);
                }
                ast::TypeDef::Scalar(s) => {
                    let directives = self.convert_directive_uses(&s.directives);
                    self.schema.types[id.index()].directives = directives;
                }
                ast::TypeDef::Enum(e) => {
                    let directives = self.convert_directive_uses(&e.directives);
                    self.schema.types[id.index()].directives = directives;
                }
                ast::TypeDef::InputObject(_) => {}
            }
        }
    }

    fn resolve_implements(&mut self, o: &ast::ObjectTypeDef) -> Vec<TypeId> {
        let mut out = Vec::with_capacity(o.implements.len());
        for target in &o.implements {
            match self.schema.by_name.get(target) {
                Some(&tid)
                    if matches!(self.schema.types[tid.index()].kind, TypeKind::Interface(_)) =>
                {
                    out.push(tid);
                }
                Some(_) => self.error(
                    DiagnosticKind::BadImplements {
                        object: o.name.clone(),
                        target: target.clone(),
                    },
                    o.span,
                ),
                None => self.error(DiagnosticKind::UnknownType(target.clone()), o.span),
            }
        }
        out
    }

    fn convert_fields(&mut self, ty_name: &str, fields: &[ast::FieldDef]) -> Vec<FieldInfo> {
        let mut out: Vec<FieldInfo> = Vec::with_capacity(fields.len());
        for f in fields {
            if out.iter().any(|x| x.name == f.name) {
                self.error(
                    DiagnosticKind::DuplicateField {
                        ty: ty_name.to_owned(),
                        field: f.name.clone(),
                    },
                    f.span,
                );
                continue;
            }
            let Some(wty) = self.convert_type(&f.ty, f.span) else {
                continue;
            };
            let field_is_attribute = self.schema.is_scalar(wty.base);
            let mut args: Vec<ArgInfo> = Vec::with_capacity(f.args.len());
            for a in &f.args {
                if args.iter().any(|x| x.name == a.name) {
                    self.error(
                        DiagnosticKind::DuplicateArg {
                            ty: ty_name.to_owned(),
                            field: f.name.clone(),
                            arg: a.name.clone(),
                        },
                        a.span,
                    );
                    continue;
                }
                if field_is_attribute {
                    // §3.6: "an attribute definition … should not contain
                    // field arguments (and if it does, we ignore these
                    // arguments)". We keep them (marked) for SDL fidelity.
                    self.warn(
                        DiagnosticKind::IgnoredAttributeArgument {
                            ty: ty_name.to_owned(),
                            field: f.name.clone(),
                            arg: a.name.clone(),
                        },
                        a.span,
                    );
                }
                if let Some(arg) = self.convert_arg(a, ty_name, &f.name, false) {
                    args.push(arg);
                }
            }
            out.push(FieldInfo {
                name: f.name.clone(),
                ty: wty,
                args,
                directives: self.convert_directive_uses(&f.directives),
            });
        }
        out
    }

    /// Converts one argument definition. `in_directive_def` selects the
    /// diagnostics context (directive declarations vs field arguments).
    fn convert_arg(
        &mut self,
        a: &ast::InputValueDef,
        owner: &str,
        field: &str,
        in_directive_def: bool,
    ) -> Option<ArgInfo> {
        // An argument may reference an input object type, which is not in
        // T; per §3.6 such argument definitions are ignored for the
        // Property-Graph semantics but must not be a hard error.
        if self.input_names.contains_key(a.ty.base_name()) {
            self.warn(
                DiagnosticKind::IgnoredComplexArgument {
                    ty: owner.to_owned(),
                    field: field.to_owned(),
                    arg: a.name.clone(),
                },
                a.span,
            );
            return None;
        }
        let wty = self.convert_type(&a.ty, a.span)?;
        let scalar_based = self.schema.is_scalar(wty.base);
        if !scalar_based && !in_directive_def {
            self.warn(
                DiagnosticKind::IgnoredComplexArgument {
                    ty: owner.to_owned(),
                    field: field.to_owned(),
                    arg: a.name.clone(),
                },
                a.span,
            );
        }
        let default = a.default.as_ref().map(const_to_value);
        Some(ArgInfo {
            name: a.name.clone(),
            ty: wty,
            scalar_based,
            default,
            directives: self.convert_directive_uses(&a.directives),
        })
    }

    /// Converts an AST type into the paper's restricted wrapping shapes.
    fn convert_type(&mut self, t: &ast::Type, span: Span) -> Option<WrappedType> {
        use ast::Type as T;
        let (wrap, base_name) = match t {
            T::Named(n) => (Wrap::Bare, n),
            T::NonNull(inner) => match inner.as_ref() {
                T::Named(n) => (Wrap::NonNull, n),
                T::List(l) => match l.as_ref() {
                    T::Named(n) => (
                        Wrap::List {
                            inner_non_null: false,
                            outer_non_null: true,
                        },
                        n,
                    ),
                    T::NonNull(inner2) => match inner2.as_ref() {
                        T::Named(n) => (
                            Wrap::List {
                                inner_non_null: true,
                                outer_non_null: true,
                            },
                            n,
                        ),
                        _ => return self.bad_wrapping(t, span),
                    },
                    _ => return self.bad_wrapping(t, span),
                },
                T::NonNull(_) => return self.bad_wrapping(t, span),
            },
            T::List(l) => match l.as_ref() {
                T::Named(n) => (
                    Wrap::List {
                        inner_non_null: false,
                        outer_non_null: false,
                    },
                    n,
                ),
                T::NonNull(inner) => match inner.as_ref() {
                    T::Named(n) => (
                        Wrap::List {
                            inner_non_null: true,
                            outer_non_null: false,
                        },
                        n,
                    ),
                    _ => return self.bad_wrapping(t, span),
                },
                T::List(_) => return self.bad_wrapping(t, span),
            },
        };
        match self.schema.by_name.get(base_name) {
            Some(&base) => Some(WrappedType { base, wrap }),
            None => {
                self.error(DiagnosticKind::UnknownType(base_name.clone()), span);
                None
            }
        }
    }

    fn bad_wrapping(&mut self, t: &ast::Type, span: Span) -> Option<WrappedType> {
        self.error(DiagnosticKind::UnsupportedWrapping(t.to_string()), span);
        None
    }

    fn convert_directive_uses(&mut self, uses: &[ast::DirectiveUse]) -> Vec<AppliedDirective> {
        uses.iter()
            .map(|u| {
                let args = u
                    .args
                    .iter()
                    .map(|(k, v)| {
                        if matches!(v, ast::ConstValue::Object(_)) {
                            self.warn(
                                DiagnosticKind::UnrepresentableDirectiveArg {
                                    directive: u.name.clone(),
                                    arg: k.clone(),
                                },
                                u.span,
                            );
                        }
                        (k.clone(), const_to_value(v))
                    })
                    .collect();
                AppliedDirective {
                    name: canonical_directive_name(&u.name),
                    args,
                }
            })
            .collect()
    }

    fn compute_implementors(&mut self) {
        let n = self.schema.types.len();
        let mut impls: Vec<Vec<TypeId>> = vec![Vec::new(); n];
        for id in 0..n {
            let TypeKind::Object(o) = &self.schema.types[id].kind else {
                continue;
            };
            for &it in &o.implements {
                impls[it.index()].push(TypeId::from_index(id));
            }
        }
        self.schema.implementors = impls;
    }
}

fn make_object(implements: Vec<TypeId>, fields: Vec<FieldInfo>) -> ObjectInfo {
    let field_index = fields
        .iter()
        .enumerate()
        .map(|(ix, f)| (f.name.clone(), ix))
        .collect();
    ObjectInfo {
        implements,
        fields,
        field_index,
    }
}

/// Canonicalises directive-name spelling: the paper uses `@noloops` in §3
/// and `@noLoops` in §4/§5. Everything else passes through.
fn canonical_directive_name(name: &str) -> String {
    if name.eq_ignore_ascii_case("noloops") {
        crate::directives::NO_LOOPS.to_owned()
    } else {
        name.to_owned()
    }
}

/// Converts a parsed constant into a property value. Input-object literals
/// have no property-value counterpart and become `Null` (diagnosed by the
/// caller).
fn const_to_value(c: &ast::ConstValue) -> Value {
    match c {
        ast::ConstValue::Int(i) => Value::Int(*i),
        ast::ConstValue::Float(x) => Value::Float(*x),
        ast::ConstValue::String(s) => Value::String(s.clone()),
        ast::ConstValue::Bool(b) => Value::Bool(*b),
        ast::ConstValue::Null => Value::Null,
        ast::ConstValue::Enum(n) => Value::Enum(n.clone()),
        ast::ConstValue::List(items) => Value::List(items.iter().map(const_to_value).collect()),
        ast::ConstValue::Object(_) => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> Schema {
        build_schema(&gql_sdl::parse(src).unwrap()).unwrap()
    }

    fn diags(src: &str) -> Vec<Diagnostic> {
        build_schema_with_diagnostics(&gql_sdl::parse(src).unwrap()).1
    }

    #[test]
    fn builds_example_3_1() {
        let s = build(
            r#"
            type UserSession {
                id: ID! @required
                user: User! @required
                startTime: Time! @required
                endTime: Time!
            }
            type User {
                id: ID! @required
                login: String! @required
                nicknames: [String!]!
            }
            scalar Time
            "#,
        );
        let session = s.type_id("UserSession").unwrap();
        let user_f = s.field(session, "user").unwrap();
        assert!(!s.is_scalar(user_f.ty.base));
        assert!(user_f.has_directive("required"));
        let user = s.type_id("User").unwrap();
        let nick = s.field(user, "nicknames").unwrap();
        assert_eq!(
            nick.ty.wrap,
            Wrap::List {
                inner_non_null: true,
                outer_non_null: true
            }
        );
        assert!(s.is_scalar(s.type_id("Time").unwrap()));
    }

    #[test]
    fn builtins_preexist() {
        let s = build("");
        for b in BuiltinScalar::ALL {
            assert!(s.type_id(b.name()).is_some(), "{} missing", b.name());
        }
        for d in [
            "required",
            "distinct",
            "noLoops",
            "uniqueForTarget",
            "requiredForTarget",
            "key",
        ] {
            assert!(s.directive_decl(d).is_some(), "@{d} missing");
        }
        let key = s.directive_decl("key").unwrap();
        assert_eq!(s.display_type(&key.arg("fields").unwrap().ty), "[String!]!");
    }

    #[test]
    fn enums_fold_into_scalars() {
        let s = build("enum LenUnit { METER FEET }");
        let id = s.type_id("LenUnit").unwrap();
        assert!(s.is_scalar(id));
        let Some(ScalarInfo::Enum(vals)) = s.scalar_info(id) else {
            panic!("expected enum scalar");
        };
        assert_eq!(vals, &["METER", "FEET"]);
    }

    #[test]
    fn unions_and_interfaces_resolve() {
        let s = build(
            r#"
            union Food = Pizza | Pasta
            type Pizza implements Edible { name: String! }
            type Pasta implements Edible { name: String! }
            interface Edible { name: String! }
            "#,
        );
        let food = s.type_id("Food").unwrap();
        assert_eq!(s.union_members(food).len(), 2);
        let edible = s.type_id("Edible").unwrap();
        let mut impls: Vec<_> = s
            .implementors(edible)
            .iter()
            .map(|&t| s.type_name(t))
            .collect();
        impls.sort();
        assert_eq!(impls, vec!["Pasta", "Pizza"]);
    }

    #[test]
    fn unknown_type_is_an_error() {
        let errs = diags("type T { f: Ghost }");
        assert!(errs
            .iter()
            .any(|d| d.kind == DiagnosticKind::UnknownType("Ghost".into())));
    }

    #[test]
    fn nested_lists_are_rejected() {
        let errs = diags("type T { f: [[Int]] }");
        assert!(errs
            .iter()
            .any(|d| matches!(&d.kind, DiagnosticKind::UnsupportedWrapping(w) if w == "[[Int]]")));
    }

    #[test]
    fn duplicate_types_fields_args_are_errors() {
        assert!(diags("type T { f: Int } type T { g: Int }")
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::DuplicateType(_))));
        assert!(diags("type T { f: Int f: String }")
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::DuplicateField { .. })));
        assert!(diags("type U {} type T { f(a: Int a: Int): U }")
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::DuplicateArg { .. })));
    }

    #[test]
    fn bad_union_member_and_implements_are_errors() {
        assert!(diags("union U = Int")
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::BadUnionMember { .. })));
        assert!(diags("type A {} type B implements A { f: Int }")
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::BadImplements { .. })));
    }

    #[test]
    fn input_types_and_schema_blocks_warn_but_build() {
        let (schema, ds) = build_schema_with_diagnostics(
            &gql_sdl::parse("schema { query: Q } type Q { f: Int } input P { x: Int }").unwrap(),
        );
        let s = schema.unwrap();
        assert_eq!(s.ignored_input_types(), &["P".to_owned()]);
        assert!(ds
            .iter()
            .any(|d| d.kind == DiagnosticKind::IgnoredSchemaBlock));
        assert!(ds.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn complex_args_warn_and_are_dropped_or_marked() {
        // Argument referencing an input type: dropped with a warning.
        let (schema, ds) = build_schema_with_diagnostics(
            &gql_sdl::parse("input P { x: Int } type U {} type T { f(p: P): U }").unwrap(),
        );
        let s = schema.unwrap();
        let t = s.type_id("T").unwrap();
        assert_eq!(s.field(t, "f").unwrap().args.len(), 0);
        assert!(ds
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::IgnoredComplexArgument { .. })));
        // Argument of object type: kept but marked non-scalar.
        let (schema, _) = build_schema_with_diagnostics(
            &gql_sdl::parse("type U {} type T { f(p: U): U }").unwrap(),
        );
        let s = schema.unwrap();
        let t = s.type_id("T").unwrap();
        let arg = &s.field(t, "f").unwrap().args[0];
        assert!(!arg.scalar_based);
    }

    #[test]
    fn attribute_arguments_warn() {
        let ds = diags("type T { len(unit: String): Float }");
        assert!(ds
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::IgnoredAttributeArgument { .. })));
    }

    #[test]
    fn noloops_spelling_is_canonicalised() {
        let s = build("type T { r: [T] @noloops }");
        let t = s.type_id("T").unwrap();
        assert!(s.field(t, "r").unwrap().has_directive("noLoops"));
    }

    #[test]
    fn key_directive_args_convert_to_values() {
        let s = build(r#"type User @key(fields: ["id", "login"]) { id: ID! login: String! }"#);
        let u = s.type_id("User").unwrap();
        let key = &s.type_directives(u)[0];
        assert_eq!(key.name, "key");
        let Value::List(items) = key.arg("fields").unwrap() else {
            panic!("fields should be a list");
        };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn redefining_builtin_scalar_is_an_error() {
        assert!(diags("scalar Int")
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::RedefinedBuiltinScalar(_))));
    }

    #[test]
    fn user_directive_definitions_are_registered() {
        let s = build("directive @weight(value: Float!) on FIELD_DEFINITION");
        let d = s.directive_decl("weight").unwrap();
        assert_eq!(s.display_type(&d.arg("value").unwrap().ty), "Float!");
        assert_eq!(d.locations, vec!["FIELD_DEFINITION"]);
    }

    #[test]
    fn redefined_builtin_directive_warns_and_keeps_builtin() {
        let (schema, ds) = build_schema_with_diagnostics(
            &gql_sdl::parse("directive @required(hard: Boolean) on FIELD_DEFINITION").unwrap(),
        );
        let s = schema.unwrap();
        assert!(s.directive_decl("required").unwrap().args.is_empty());
        assert!(ds
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::RedefinedBuiltinDirective(_))));
    }

    #[test]
    fn type_extensions_fold_into_the_schema() {
        let s = build(
            r#"
            type User { id: ID! }
            extend type User { email: String @required }
            "#,
        );
        let user = s.type_id("User").unwrap();
        assert_eq!(s.fields(user).count(), 2);
        assert!(s.field(user, "email").unwrap().has_directive("required"));
    }

    #[test]
    fn bad_extensions_are_build_errors() {
        let errs = diags("extend type Ghost { x: Int }");
        assert!(matches!(
            errs.as_slice(),
            [Diagnostic {
                kind: DiagnosticKind::ExtensionError(_),
                severity: Severity::Error,
                ..
            }]
        ));
    }

    #[test]
    fn empty_object_type_builds() {
        let s = build("type OT1 { }");
        let t = s.type_id("OT1").unwrap();
        assert_eq!(s.fields(t).count(), 0);
    }
}
