//! Property-based tests: the naive, indexed, parallel and incremental
//! validation engines decide the same relation, on random schemas ×
//! random (possibly mutated) graphs, across worker counts, and — for
//! the incremental engine — after every step of arbitrary mutation
//! sequences; generated conforming graphs conform; injected defects are
//! caught.

use pg_datagen::{DeltaGen, DeltaGenParams, GraphGen, GraphGenParams, SchemaGen, SchemaGenParams};
use pg_schema::{validate, Engine, IncrementalEngine, PgSchema, ValidationOptions};
use proptest::prelude::*;

fn schema_for(seed: u64) -> PgSchema {
    let sdl = SchemaGen::new(SchemaGenParams {
        num_types: 5,
        attrs_per_type: 3,
        rels_per_type: 2,
        seed,
        ..Default::default()
    })
    .generate();
    PgSchema::parse(&sdl).expect("generated schemas build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engines agree violation-for-violation on arbitrary (conforming or
    /// not) generated graphs — four ways (a bare validate through
    /// `Engine::Incremental` takes the delta engine's full-pass path),
    /// and for the parallel engine across worker counts (1 exercises the
    /// degenerate shard, 2 the cross-shard merge, 8 shards smaller than
    /// some label groups).
    #[test]
    fn engines_agree(schema_seed in 0u64..30, graph_seed in 0u64..30) {
        let schema = schema_for(schema_seed);
        let gen = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 6,
            seed: graph_seed,
            ..Default::default()
        });
        // Raw generate — may or may not conform (target obligations).
        let graph = gen.generate();
        let naive = validate(&graph, &schema, &ValidationOptions::with_engine(Engine::Naive));
        let indexed = validate(&graph, &schema, &ValidationOptions::with_engine(Engine::Indexed));
        prop_assert_eq!(&naive, &indexed, "naive:\n{}indexed:\n{}", naive, indexed);
        let incremental =
            validate(&graph, &schema, &ValidationOptions::with_engine(Engine::Incremental));
        prop_assert_eq!(
            &incremental, &indexed,
            "incremental:\n{}indexed:\n{}", incremental, indexed
        );
        for threads in [1usize, 2, 8] {
            let opts = ValidationOptions::builder()
                .engine(Engine::Parallel)
                .threads(threads)
                .build();
            let parallel = validate(&graph, &schema, &opts);
            prop_assert_eq!(
                &parallel, &indexed,
                "parallel ({} threads):\n{}indexed:\n{}", threads, parallel, indexed
            );
        }
    }

    /// Conforming generation + injection: each applicable defect is
    /// caught by its rule, on both engines.
    #[test]
    fn injected_defects_are_caught(schema_seed in 0u64..12, defect_ix in 0usize..15) {
        let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(5, schema_seed)).generate();
        let schema = PgSchema::parse(&sdl).unwrap();
        let Some(base) = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 6,
            ..Default::default()
        }).generate_conforming(5) else {
            return Ok(()); // schema obligations unsatisfiable — skip
        };
        let defect = pg_datagen::Defect::ALL[defect_ix];
        let mut g = base.clone();
        if !pg_datagen::inject(&mut g, &schema, defect) {
            return Ok(()); // defect not applicable to this schema
        }
        for engine in [
            Engine::Naive,
            Engine::Indexed,
            Engine::Parallel,
            Engine::Incremental,
        ] {
            let report = validate(&g, &schema, &ValidationOptions::with_engine(engine));
            prop_assert!(
                report.by_rule(defect.rule()).next().is_some(),
                "{:?} not caught by {:?}; report:\n{}", defect, engine, report
            );
        }
        // Injected defects survive sharding at any worker count.
        for threads in [2usize, 8] {
            let opts = ValidationOptions::builder()
                .engine(Engine::Parallel)
                .threads(threads)
                .build();
            let report = validate(&g, &schema, &opts);
            prop_assert!(
                report.by_rule(defect.rule()).next().is_some(),
                "{:?} lost at {} threads; report:\n{}", defect, threads, report
            );
        }
    }

    /// The incremental engine's patched report equals a full
    /// revalidation after **every** step of an arbitrary mutation
    /// sequence — the agreement property closes over deltas, not just
    /// static graphs. Sequences are drawn by [`DeltaGen`] against the
    /// engine's own evolving graph, so they mix structural ops
    /// (add/remove node/edge, cascading removals), property churn
    /// (well-typed and deliberately ill-typed writes) and relabels.
    #[test]
    fn incremental_agrees_after_mutation_sequences(
        schema_seed in 0u64..16,
        graph_seed in 0u64..8,
        delta_seed in 0u64..1_000,
    ) {
        let schema = schema_for(schema_seed);
        let graph = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 5,
            seed: graph_seed,
            ..Default::default()
        }).generate();
        let options = ValidationOptions::default();
        let mut engine = IncrementalEngine::new(graph, &schema, &options);
        let gen = DeltaGen::new(&schema, DeltaGenParams {
            ops: 8,
            p_structural: 0.5,
            ..Default::default()
        });
        for step in 0..6u64 {
            let seed = delta_seed.wrapping_mul(31).wrapping_add(step);
            let delta = gen.generate_seeded(engine.graph(), seed);
            engine.apply(&delta).expect("conflict-free by construction");
            let patched = engine.report();
            let full = validate(
                engine.graph(),
                &schema,
                &ValidationOptions::with_engine(Engine::Indexed),
            );
            prop_assert_eq!(
                &patched, &full,
                "step {}:\npatched:\n{}full:\n{}", step, patched, full
            );
        }
        // The end state also agrees with the reference transcription of
        // the paper's formulas.
        let naive = validate(
            engine.graph(),
            &schema,
            &ValidationOptions::with_engine(Engine::Naive),
        );
        let patched = engine.report();
        prop_assert_eq!(
            &patched, &naive,
            "end state:\npatched:\n{}naive:\n{}", patched, naive
        );
    }

    /// Graphs round-tripped through JSON validate identically.
    #[test]
    fn json_roundtrip_preserves_validation(schema_seed in 0u64..10, graph_seed in 0u64..10) {
        let schema = schema_for(schema_seed);
        let graph = GraphGen::new(&schema, GraphGenParams {
            nodes_per_type: 5,
            seed: graph_seed,
            ..Default::default()
        }).generate();
        let roundtripped = pgraph::json::from_json(&pgraph::json::to_json(&graph)).unwrap();
        let a = validate(&graph, &schema, &ValidationOptions::default());
        let b = validate(&roundtripped, &schema, &ValidationOptions::default());
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.counts(), b.counts());
    }
}

/// Weak ⊆ strong: a strong-conforming graph is weak-conforming, and
/// violations found in weak-only mode are a subset of the full run.
#[test]
fn weak_violations_are_a_subset_of_strong() {
    for seed in 0..10u64 {
        let schema = schema_for(seed);
        let graph = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: 6,
                seed,
                ..Default::default()
            },
        )
        .generate();
        let weak = validate(&graph, &schema, &ValidationOptions::weak_only());
        let full = validate(&graph, &schema, &ValidationOptions::default());
        for v in weak.violations() {
            assert!(
                full.violations().contains(v),
                "weak-only violation missing from full run: {v}"
            );
        }
    }
}
