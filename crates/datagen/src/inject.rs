//! Violation injection.
//!
//! [`inject`] mutates a conforming graph so that it violates (at least)
//! one chosen rule. Each [`Defect`] targets exactly one rule of §5; the
//! detection-matrix test (E10) asserts the validator flags the targeted
//! rule after injection. Injection is deterministic given the graph.
//!
//! Some defects are only *applicable* if the schema/graph has a matching
//! site (e.g. a `@noLoops` relationship for [`Defect::AddLoop`]);
//! `inject` returns `false` when no applicable site exists.

use pg_schema::{PgSchema, Rule};
use pgraph::{PropertyGraph, Value};

/// One class of injectable defect, mapped to the rule it violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// WS1: overwrite a declared node property with a wrong-typed value.
    WrongNodePropertyType,
    /// WS2: overwrite a declared edge property with a wrong-typed value.
    WrongEdgePropertyType,
    /// WS3: retarget-like defect — add an edge with a declared label to a
    /// node of the wrong type.
    WrongEdgeTarget,
    /// WS4: duplicate an edge of a non-list relationship.
    DuplicateNonListEdge,
    /// DS1: duplicate a `@distinct` edge (same endpoints).
    DuplicateDistinctEdge,
    /// DS2: add a self-loop on a `@noLoops` relationship.
    AddLoop,
    /// DS3: give a target a second incoming `@uniqueForTarget` edge.
    SecondIncomingEdge,
    /// DS4: strip all incoming `@requiredForTarget` edges from a target.
    RemoveRequiredIncoming,
    /// DS5: remove a `@required` property.
    RemoveRequiredProperty,
    /// DS6: remove all edges of a `@required` relationship from a node.
    RemoveRequiredEdge,
    /// DS7: copy one node's key values onto another node of the same type.
    DuplicateKey,
    /// SS1: relabel a node to an unknown label.
    UnknownNodeLabel,
    /// SS2: add an undeclared node property.
    UndeclaredNodeProperty,
    /// SS3: add an undeclared edge property.
    UndeclaredEdgeProperty,
    /// SS4: add an edge with an undeclared label.
    UndeclaredEdgeLabel,
}

impl Defect {
    /// All defects, in rule order.
    pub const ALL: [Defect; 15] = [
        Defect::WrongNodePropertyType,
        Defect::WrongEdgePropertyType,
        Defect::WrongEdgeTarget,
        Defect::DuplicateNonListEdge,
        Defect::DuplicateDistinctEdge,
        Defect::AddLoop,
        Defect::SecondIncomingEdge,
        Defect::RemoveRequiredIncoming,
        Defect::RemoveRequiredProperty,
        Defect::RemoveRequiredEdge,
        Defect::DuplicateKey,
        Defect::UnknownNodeLabel,
        Defect::UndeclaredNodeProperty,
        Defect::UndeclaredEdgeProperty,
        Defect::UndeclaredEdgeLabel,
    ];

    /// The rule this defect violates.
    pub fn rule(self) -> Rule {
        match self {
            Defect::WrongNodePropertyType => Rule::WS1,
            Defect::WrongEdgePropertyType => Rule::WS2,
            Defect::WrongEdgeTarget => Rule::WS3,
            Defect::DuplicateNonListEdge => Rule::WS4,
            Defect::DuplicateDistinctEdge => Rule::DS1,
            Defect::AddLoop => Rule::DS2,
            Defect::SecondIncomingEdge => Rule::DS3,
            Defect::RemoveRequiredIncoming => Rule::DS4,
            Defect::RemoveRequiredProperty => Rule::DS5,
            Defect::RemoveRequiredEdge => Rule::DS6,
            Defect::DuplicateKey => Rule::DS7,
            Defect::UnknownNodeLabel => Rule::SS1,
            Defect::UndeclaredNodeProperty => Rule::SS2,
            Defect::UndeclaredEdgeProperty => Rule::SS3,
            Defect::UndeclaredEdgeLabel => Rule::SS4,
        }
    }
}

/// Applies the defect to the first applicable site. Returns `true` if an
/// applicable site was found and mutated.
pub fn inject(g: &mut PropertyGraph, schema: &PgSchema, defect: Defect) -> bool {
    match defect {
        Defect::WrongNodePropertyType => {
            for n in g.node_ids().collect::<Vec<_>>() {
                let label = g.node_label(n).unwrap_or("").to_owned();
                let props: Vec<String> = g
                    .node(n)
                    .map(|nr| nr.properties().map(|(k, _)| k.to_owned()).collect())
                    .unwrap_or_default();
                for p in props {
                    if let Some(attr) = schema.attribute(&label, &p) {
                        // A bare list value never conforms to a non-list
                        // type and vice versa; Bool breaks most scalars.
                        let bad = if attr.ty.is_list() {
                            Value::Bool(true)
                        } else {
                            Value::List(vec![Value::Bool(true)])
                        };
                        g.set_node_property(n, p, bad);
                        return true;
                    }
                }
            }
            false
        }
        Defect::WrongEdgePropertyType => {
            for e in g.edge_ids().collect::<Vec<_>>() {
                let (src, _) = g.edge_endpoints(e).unwrap();
                let src_label = g.node_label(src).unwrap_or("").to_owned();
                let elabel = g.edge_label(e).unwrap_or("").to_owned();
                let Some(rel) = schema.relationship(&src_label, &elabel) else {
                    continue;
                };
                let props: Vec<String> = g
                    .edge(e)
                    .map(|er| er.properties().map(|(k, _)| k.to_owned()).collect())
                    .unwrap_or_default();
                for p in props {
                    if let Some(ep) = rel.edge_props.iter().find(|x| x.name == p) {
                        let bad = if ep.ty.is_list() {
                            Value::Bool(true)
                        } else {
                            Value::List(vec![Value::Bool(true)])
                        };
                        g.set_edge_property(e, p, bad);
                        return true;
                    }
                }
            }
            false
        }
        Defect::WrongEdgeTarget => {
            // Find a node with a relationship whose target base has no
            // subtype relation to the source's own type, then point the
            // edge at a node of the source's type.
            let nodes: Vec<_> = g.node_ids().collect();
            for &v in &nodes {
                let label = g.node_label(v).unwrap_or("").to_owned();
                let Some(t) = schema.label_type(&label) else {
                    continue;
                };
                for rel in schema.relationships(t).to_vec() {
                    // A same-labelled second node as (wrong) target.
                    let bad_target = nodes.iter().copied().find(|&w| {
                        g.node_label(w) == Some(&label)
                            && !schema.label_subtype(&label, rel.target_base)
                    });
                    if let Some(w) = bad_target {
                        g.add_edge(v, w, rel.name.clone()).unwrap();
                        return true;
                    }
                }
            }
            false
        }
        Defect::DuplicateNonListEdge => {
            for e in g.edge_ids().collect::<Vec<_>>() {
                let (src, dst) = g.edge_endpoints(e).unwrap();
                let src_label = g.node_label(src).unwrap_or("").to_owned();
                let elabel = g.edge_label(e).unwrap_or("").to_owned();
                if let Some(rel) = schema.relationship(&src_label, &elabel) {
                    if !rel.multi {
                        let new = g.add_edge(src, dst, elabel).unwrap();
                        copy_mandatory_props(g, schema, new);
                        return true;
                    }
                }
            }
            false
        }
        Defect::DuplicateDistinctEdge => {
            for e in g.edge_ids().collect::<Vec<_>>() {
                let (src, dst) = g.edge_endpoints(e).unwrap();
                let src_label = g.node_label(src).unwrap_or("").to_owned();
                let elabel = g.edge_label(e).unwrap_or("").to_owned();
                let distinct = schema.constraint_sites().iter().any(|site| {
                    site.rel.name == elabel
                        && site.rel.distinct
                        && schema.label_subtype(&src_label, site.site)
                });
                if distinct {
                    let new = g.add_edge(src, dst, elabel).unwrap();
                    copy_mandatory_props(g, schema, new);
                    return true;
                }
            }
            false
        }
        Defect::AddLoop => {
            for site in schema.constraint_sites() {
                if !site.rel.no_loops {
                    continue;
                }
                // A node below both the site (source side) and the target
                // base (so only DS2 fires, not WS3).
                let candidate = g.node_ids().find(|&v| {
                    let l = g.node_label(v).unwrap_or("");
                    schema.label_subtype(l, site.site)
                        && schema.label_subtype(l, site.rel.target_base)
                });
                if let Some(v) = candidate {
                    let e = g.add_edge(v, v, site.rel.name.clone()).unwrap();
                    copy_mandatory_props(g, schema, e);
                    return true;
                }
            }
            false
        }
        Defect::SecondIncomingEdge => {
            for e in g.edge_ids().collect::<Vec<_>>() {
                let (src, dst) = g.edge_endpoints(e).unwrap();
                let src_label = g.node_label(src).unwrap_or("").to_owned();
                let elabel = g.edge_label(e).unwrap_or("").to_owned();
                let unique = schema.constraint_sites().iter().any(|site| {
                    site.rel.name == elabel
                        && site.rel.unique_for_target
                        && schema.label_subtype(&src_label, site.site)
                });
                if !unique {
                    continue;
                }
                // A second source of the same type, not already pointing
                // at dst; parallel duplicates work too.
                let second = g
                    .node_ids()
                    .find(|&v| v != src && g.node_label(v) == Some(&src_label))
                    .unwrap_or(src);
                let rel_multi = schema
                    .relationship(&src_label, &elabel)
                    .is_some_and(|r| r.multi);
                if second == src && !rel_multi {
                    continue; // duplicating would hit WS4 instead
                }
                let new = g.add_edge(second, dst, elabel).unwrap();
                copy_mandatory_props(g, schema, new);
                return true;
            }
            false
        }
        Defect::RemoveRequiredIncoming => {
            for site in schema.constraint_sites() {
                if !site.rel.required_for_target {
                    continue;
                }
                let obligated = g.node_ids().find(|&w| {
                    g.node_label(w)
                        .is_some_and(|l| schema.label_subtype_wrapped(l, &site.rel.ty))
                });
                if let Some(w) = obligated {
                    let incoming: Vec<_> = g
                        .in_edges(w)
                        .filter(|e| e.label() == site.rel.name)
                        .map(|e| e.id)
                        .collect();
                    for e in incoming {
                        g.remove_edge(e).unwrap();
                    }
                    return true;
                }
            }
            false
        }
        Defect::RemoveRequiredProperty => {
            for n in g.node_ids().collect::<Vec<_>>() {
                let label = g.node_label(n).unwrap_or("").to_owned();
                let Some(t) = schema.label_type(&label) else {
                    continue;
                };
                for attr in schema.attributes(t).to_vec() {
                    if attr.required && g.node_property(n, &attr.name).is_some() {
                        g.remove_node_property(n, &attr.name);
                        return true;
                    }
                }
            }
            false
        }
        Defect::RemoveRequiredEdge => {
            for n in g.node_ids().collect::<Vec<_>>() {
                let label = g.node_label(n).unwrap_or("").to_owned();
                let Some(t) = schema.label_type(&label) else {
                    continue;
                };
                for rel in schema.relationships(t).to_vec() {
                    if !rel.required {
                        continue;
                    }
                    let out: Vec<_> = g
                        .out_edges(n)
                        .filter(|e| e.label() == rel.name)
                        .map(|e| e.id)
                        .collect();
                    if out.is_empty() {
                        continue;
                    }
                    for e in out {
                        g.remove_edge(e).unwrap();
                    }
                    return true;
                }
            }
            false
        }
        Defect::DuplicateKey => {
            for key in schema.keys() {
                let mut seen: Option<pgraph::NodeId> = None;
                let nodes: Vec<_> = g
                    .node_ids()
                    .filter(|&n| {
                        g.node_label(n)
                            .is_some_and(|l| schema.label_subtype(l, key.site))
                    })
                    .collect();
                for &n in &nodes {
                    match seen {
                        None => seen = Some(n),
                        Some(first) => {
                            for f in &key.fields {
                                match g.node_property(first, f).cloned() {
                                    Some(v) => {
                                        g.set_node_property(n, f.clone(), v);
                                    }
                                    None => {
                                        g.remove_node_property(n, f);
                                    }
                                }
                            }
                            return true;
                        }
                    }
                }
            }
            false
        }
        Defect::UnknownNodeLabel => {
            let first = g.node_ids().next();
            if let Some(n) = first {
                // Strip properties/edges so only SS1 fires.
                let props: Vec<String> = g
                    .node(n)
                    .map(|nr| nr.properties().map(|(k, _)| k.to_owned()).collect())
                    .unwrap_or_default();
                for p in props {
                    g.remove_node_property(n, &p);
                }
                let incident: Vec<_> = g
                    .edges()
                    .filter(|e| e.source() == n || e.target() == n)
                    .map(|e| e.id)
                    .collect();
                for e in incident {
                    g.remove_edge(e).unwrap();
                }
                g.set_node_label(n, "__Unknown__").unwrap();
                return true;
            }
            false
        }
        Defect::UndeclaredNodeProperty => {
            let first = g.node_ids().next();
            if let Some(n) = first {
                g.set_node_property(n, "__ghost__", Value::Int(1));
                return true;
            }
            false
        }
        Defect::UndeclaredEdgeProperty => {
            let first = g.edge_ids().next();
            if let Some(e) = first {
                g.set_edge_property(e, "__ghost__", Value::Int(1));
                return true;
            }
            false
        }
        Defect::UndeclaredEdgeLabel => {
            let nodes: Vec<_> = g.node_ids().collect();
            if let (Some(&a), Some(&b)) = (nodes.first(), nodes.get(1).or(nodes.first())) {
                g.add_edge(a, b, "__ghostRel__").unwrap();
                return true;
            }
            false
        }
    }
}

/// Fills the mandatory edge properties of a freshly injected edge so the
/// injection does not *additionally* trip WS2/DS-property rules.
fn copy_mandatory_props(g: &mut PropertyGraph, schema: &PgSchema, e: pgraph::EdgeId) {
    let (src, _) = g.edge_endpoints(e).unwrap();
    let src_label = g.node_label(src).unwrap_or("").to_owned();
    let elabel = g.edge_label(e).unwrap_or("").to_owned();
    if let Some(rel) = schema.relationship(&src_label, &elabel) {
        for ep in rel.edge_props.clone() {
            if ep.mandatory {
                let v = if ep.ty.is_list() {
                    Value::List(vec![Value::Float(1.0)])
                } else {
                    Value::Float(1.0)
                };
                g.set_edge_property(e, ep.name, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{GraphGen, GraphGenParams};
    use crate::schemagen::social_schema;
    use pg_schema::validate;

    #[test]
    fn each_applicable_defect_triggers_its_rule_on_the_social_schema() {
        let schema = PgSchema::parse(social_schema()).unwrap();
        let base = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: 12,
                ..Default::default()
            },
        )
        .generate_conforming(5)
        .unwrap();
        let mut applicable = 0;
        for defect in Defect::ALL {
            let mut g = base.clone();
            if !inject(&mut g, &schema, defect) {
                continue;
            }
            applicable += 1;
            let report = validate(&g, &schema, &Default::default());
            assert!(
                report.by_rule(defect.rule()).next().is_some(),
                "{defect:?} should trigger {} but report was:\n{report}",
                defect.rule()
            );
        }
        // The social schema has sites for most defects (no
        // required/uniqueForTarget relationships → 3 defects inapplicable,
        // and no wrong-target site without subtype overlap).
        assert!(applicable >= 10, "only {applicable} defects applicable");
    }

    #[test]
    fn injection_into_empty_graph_reports_inapplicable() {
        let schema = PgSchema::parse(social_schema()).unwrap();
        let mut g = PropertyGraph::new();
        for defect in Defect::ALL {
            assert!(!inject(&mut g, &schema, defect), "{defect:?}");
            assert_eq!(g.node_count(), 0);
        }
    }
}
