//! The shared worked-example workload: the paper's Examples 3.1–3.5
//! schema and a small conforming instance, used by the `pgload` load
//! generator, the CI smoke run and the integration tests so that all
//! three drive the daemon with the same traffic.

use pgraph::{GraphBuilder, GraphDelta, NodeId, PropertyGraph, Value};

/// The SDL of the paper's worked example (Example 3.1 with the edge
/// properties of 3.12 and the key of 3.4).
pub const SCHEMA_SDL: &str = r#"
type UserSession {
    id: ID! @required
    user(certainty: Float! comment: String): User! @required
    startTime: Time! @required
    endTime: Time!
}
type User @key(fields: ["id"]) {
    id: ID! @required
    login: String! @required
    nicknames: [String!]!
}
scalar Time
"#;

/// A conforming instance of [`SCHEMA_SDL`]: `users` user nodes, each
/// with one session pointing at it.
pub fn sample_graph(users: usize) -> PropertyGraph {
    let mut b = GraphBuilder::new();
    for i in 0..users {
        let u = format!("u{i}");
        let s = format!("s{i}");
        b = b
            .node(&u, "User")
            .prop(&u, "id", Value::Id(format!("u-{i}")))
            .prop(&u, "login", format!("user{i}"))
            .node(&s, "UserSession")
            .prop(&s, "id", Value::Id(format!("s-{i}")))
            .prop(&s, "startTime", "2019-06-30T10:00:00Z")
            .edge(&s, &u, "user")
            .edge_prop("certainty", 0.97);
    }
    b.build().expect("sample graph is well-formed")
}

/// The ids of the `User` nodes of [`sample_graph`], in creation order.
/// Because graph JSON round-trips preserve dense ids, these ids are
/// valid against a server session created from the same document.
pub fn user_ids(g: &PropertyGraph) -> Vec<NodeId> {
    g.nodes()
        .filter(|n| n.label() == "User")
        .map(|n| n.id)
        .collect()
}

/// The `i`-th delta of the canonical toggle sequence for one user node:
/// even `i` breaks `login`'s type (WS1 fires), odd `i` repairs it. Every
/// two deltas return the session to a conforming state, so a run of any
/// even length ends with a report equal to the seed report.
pub fn toggle_delta(user: NodeId, i: u64) -> GraphDelta {
    if i.is_multiple_of(2) {
        GraphDelta::new().set_node_property(user, "login", Value::Int(i as i64))
    } else {
        GraphDelta::new().set_node_property(user, "login", Value::String(format!("user-{i}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_schema::{strongly_satisfies, PgSchema};

    #[test]
    fn sample_conforms_and_toggles_flip_conformance() {
        let schema = PgSchema::parse(SCHEMA_SDL).unwrap();
        let mut g = sample_graph(3);
        assert!(strongly_satisfies(&g, &schema));
        let users = user_ids(&g);
        assert_eq!(users.len(), 3);
        toggle_delta(users[0], 0).apply_to(&mut g).unwrap();
        assert!(!strongly_satisfies(&g, &schema));
        toggle_delta(users[0], 1).apply_to(&mut g).unwrap();
        assert!(strongly_satisfies(&g, &schema));
    }
}
