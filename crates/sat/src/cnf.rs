//! CNF formulas and literals.

use std::fmt;

/// A literal: a propositional variable (0-based index) with a sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit {
    /// Encoded as `var << 1 | negated`.
    code: u32,
}

impl Lit {
    /// The positive literal of variable `var`.
    pub fn pos(var: usize) -> Self {
        Lit {
            code: (var as u32) << 1,
        }
    }

    /// The negative literal of variable `var`.
    pub fn neg(var: usize) -> Self {
        Lit {
            code: ((var as u32) << 1) | 1,
        }
    }

    /// The literal's variable.
    pub fn var(self) -> usize {
        (self.code >> 1) as usize
    }

    /// True if the literal is negated.
    pub fn is_neg(self) -> bool {
        self.code & 1 == 1
    }

    /// The complementary literal.
    pub fn negated(self) -> Self {
        Lit {
            code: self.code ^ 1,
        }
    }

    /// Evaluates the literal under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var()] ^ self.is_neg()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// A formula in conjunctive normal form over `num_vars` variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

/// A DIMACS parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// Missing or malformed `p cnf <vars> <clauses>` header.
    BadHeader(String),
    /// A token that is not an integer.
    BadToken(String),
    /// A literal referencing a variable ≥ the declared count.
    VarOutOfRange(i64),
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::BadHeader(l) => write!(f, "bad DIMACS header: {l:?}"),
            DimacsError::BadToken(t) => write!(f, "bad DIMACS token: {t:?}"),
            DimacsError::VarOutOfRange(v) => write!(f, "literal {v} out of declared range"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl Cnf {
    /// An empty formula over `num_vars` variables (trivially satisfiable).
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds one clause (a disjunction of literals). An empty clause makes
    /// the formula unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var() < self.num_vars,
                "literal {l} out of range (num_vars = {})",
                self.num_vars
            );
        }
        self.clauses.push(clause);
    }

    /// Evaluates the whole formula under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Parses the DIMACS CNF format (`p cnf <vars> <clauses>`, clauses as
    /// 1-based signed integers terminated by `0`, `c` comment lines).
    pub fn parse_dimacs(text: &str) -> Result<Self, DimacsError> {
        let mut cnf: Option<Cnf> = None;
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if line.starts_with('p') {
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() != 4 || parts[1] != "cnf" {
                    return Err(DimacsError::BadHeader(line.to_owned()));
                }
                let vars: usize = parts[2]
                    .parse()
                    .map_err(|_| DimacsError::BadHeader(line.to_owned()))?;
                cnf = Some(Cnf::new(vars));
                continue;
            }
            let cnf_ref = cnf
                .as_mut()
                .ok_or_else(|| DimacsError::BadHeader("missing p line".to_owned()))?;
            for tok in line.split_whitespace() {
                let v: i64 = tok
                    .parse()
                    .map_err(|_| DimacsError::BadToken(tok.to_owned()))?;
                if v == 0 {
                    cnf_ref.clauses.push(std::mem::take(&mut current));
                } else {
                    let var = v.unsigned_abs() as usize - 1;
                    if var >= cnf_ref.num_vars {
                        return Err(DimacsError::VarOutOfRange(v));
                    }
                    current.push(if v > 0 { Lit::pos(var) } else { Lit::neg(var) });
                }
            }
        }
        let mut cnf = cnf.ok_or_else(|| DimacsError::BadHeader("empty input".to_owned()))?;
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        Ok(cnf)
    }

    /// Renders in DIMACS format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let v = l.var() as i64 + 1;
                out.push_str(&format!("{} ", if l.is_neg() { -v } else { v }));
            }
            out.push_str("0\n");
        }
        out
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let p = Lit::pos(3);
        let n = Lit::neg(3);
        assert_eq!(p.var(), 3);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert_eq!(p.to_string(), "x3");
        assert_eq!(n.to_string(), "¬x3");
    }

    #[test]
    fn literal_eval() {
        let assignment = [true, false];
        assert!(Lit::pos(0).eval(&assignment));
        assert!(!Lit::neg(0).eval(&assignment));
        assert!(!Lit::pos(1).eval(&assignment));
        assert!(Lit::neg(1).eval(&assignment));
    }

    #[test]
    fn formula_eval() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(0), Lit::neg(1)]);
        cnf.add_clause([Lit::pos(1)]);
        assert!(cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[false, false])); // second clause fails
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([Lit::pos(1)]);
    }

    #[test]
    fn dimacs_roundtrip() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(0), Lit::neg(2)]);
        cnf.add_clause([Lit::neg(0), Lit::pos(1), Lit::pos(2)]);
        let text = cnf.to_dimacs();
        let parsed = Cnf::parse_dimacs(&text).unwrap();
        assert_eq!(cnf, parsed);
    }

    #[test]
    fn dimacs_parses_comments_and_multiline_clauses() {
        let text = "c a comment\np cnf 2 2\n1 -2 0\n2\n0\n";
        let cnf = Cnf::parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[1], vec![Lit::pos(1)]);
    }

    #[test]
    fn dimacs_errors() {
        assert!(matches!(
            Cnf::parse_dimacs(""),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            Cnf::parse_dimacs("p cnf x 1\n"),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            Cnf::parse_dimacs("p cnf 1 1\n2 0\n"),
            Err(DimacsError::VarOutOfRange(2))
        ));
        assert!(matches!(
            Cnf::parse_dimacs("p cnf 1 1\nzz 0\n"),
            Err(DimacsError::BadToken(_))
        ));
        assert!(matches!(
            Cnf::parse_dimacs("1 0\n"),
            Err(DimacsError::BadHeader(_))
        ));
    }

    #[test]
    fn display_renders_formula() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(0), Lit::neg(1)]);
        assert_eq!(cnf.to_string(), "(x0 ∨ ¬x1)");
    }
}
