//! Snapshot format compatibility: a data directory written by the
//! previous build (legacy `PGS1` snapshots, per-session binary graphs)
//! must open cleanly on this build and validate identically — the
//! canonical four-engine reports of the legacy decode path and the
//! current mmap (`PGS2`/`PGCS`) path are required to agree byte for
//! byte. A snapshot from a *future* format must fail recovery with an
//! explicit "unsupported snapshot version" error and leave the
//! directory untouched — never a silent fallback and never a torn-tail
//! truncation.

use std::path::Path;

use pg_schema::{validate, Engine, PgSchema, ValidationOptions};
use pg_server::workload::{sample_graph, SCHEMA_SDL};
use pgraph::{binary, snapshot, PropertyGraph};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pgschema-snapcompat-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a snapshot file exactly as the previous build's `PGS1`
/// encoder did: CRC frame around `[magic][base_seq][next_session_id]
/// [count]` + per-session `[id][last_seq][deltas_applied][sdl][graph
/// as a u32-length binary element stream][pending flag]`.
fn write_legacy_snapshot(dir: &Path, id: u64, sdl: &str, graph: &PropertyGraph) {
    let graph_bytes = binary::graph_to_bytes(graph);
    let mut entry = Vec::new();
    entry.extend_from_slice(&id.to_le_bytes());
    entry.extend_from_slice(&1u64.to_le_bytes()); // last_seq
    entry.extend_from_slice(&0u64.to_le_bytes()); // deltas_applied
    entry.extend_from_slice(&(sdl.len() as u32).to_le_bytes());
    entry.extend_from_slice(sdl.as_bytes());
    entry.extend_from_slice(&(graph_bytes.len() as u32).to_le_bytes());
    entry.extend_from_slice(&graph_bytes);
    entry.push(0); // no pending migration
    let mut payload = Vec::new();
    payload.extend_from_slice(&pg_store::wire::SNAPSHOT_MAGIC);
    payload.extend_from_slice(&1u64.to_le_bytes()); // base_seq
    payload.extend_from_slice(&(id + 1).to_le_bytes()); // next_session_id
    payload.extend_from_slice(&1u32.to_le_bytes()); // count
    payload.extend_from_slice(&entry);
    let mut file = Vec::new();
    file.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    file.extend_from_slice(&snapshot::crc32(&payload).to_le_bytes());
    file.extend_from_slice(&payload);
    std::fs::write(dir.join("snapshot-000001.snap"), file).unwrap();
}

/// Canonical report bytes of one engine over one graph.
fn canonical_report(graph: &PropertyGraph, schema: &PgSchema, engine: Engine) -> String {
    let mut report = validate(graph, schema, &ValidationOptions::with_engine(engine));
    report.canonicalize();
    report.to_json()
}

#[test]
fn legacy_snapshot_loads_and_agrees_with_mmap_path_byte_for_byte() {
    let graph = sample_graph(40);
    let schema = PgSchema::parse(SCHEMA_SDL).unwrap();

    // Path A: a directory as the previous build left it.
    let legacy_dir = tmp_dir("legacy");
    write_legacy_snapshot(&legacy_dir, 1, SCHEMA_SDL, &graph);
    let (_store_a, recovered_a) =
        pg_store::Store::open(&legacy_dir, pg_store::FsyncPolicy::Never).expect("legacy opens");
    assert_eq!(recovered_a.sessions.len(), 1);
    assert_eq!(recovered_a.info.snapshots_skipped, 0);
    let legacy = &recovered_a.sessions[0];
    assert!(
        !legacy.graph.is_mapped(),
        "legacy snapshots decode eagerly, not zero-copy"
    );
    let legacy_graph = legacy.graph.clone().into_graph().unwrap();

    // Path B: the same session written by this build (PGS2, mmap'd back).
    let current_dir = tmp_dir("current");
    {
        let (store, _) = pg_store::Store::open(&current_dir, pg_store::FsyncPolicy::Never).unwrap();
        store.append_create(1, SCHEMA_SDL, &graph).unwrap();
        let mut compaction = store.try_begin_compaction().unwrap().unwrap();
        compaction.add_session(1, 1, 0, SCHEMA_SDL, &graph, None);
        compaction.finish(2).unwrap();
    }
    let (_store_b, recovered_b) =
        pg_store::Store::open(&current_dir, pg_store::FsyncPolicy::Never).expect("reopens");
    assert_eq!(recovered_b.sessions.len(), 1);
    let mapped = &recovered_b.sessions[0];
    assert!(
        mapped.graph.is_mapped(),
        "a compacted session with no WAL tail recovers zero-copy"
    );
    let mapped_graph = mapped.graph.clone().into_graph().unwrap();
    assert_eq!(legacy_graph, mapped_graph);

    // The four-engine oracle agrees byte for byte across the two paths.
    for engine in [
        Engine::Naive,
        Engine::Indexed,
        Engine::Parallel,
        Engine::Incremental,
    ] {
        let a = canonical_report(&legacy_graph, &schema, engine);
        let b = canonical_report(&mapped_graph, &schema, engine);
        assert_eq!(a, b, "engine {engine:?} reports diverge across paths");
    }

    let _ = std::fs::remove_dir_all(&legacy_dir);
    let _ = std::fs::remove_dir_all(&current_dir);
}

#[test]
fn handoff_blob_installs_and_bootstraps_zero_copy() {
    let graph = sample_graph(25);
    let src = tmp_dir("handoff-src");
    let blob = {
        let (store, _) = pg_store::Store::open(&src, pg_store::FsyncPolicy::Never).unwrap();
        store.append_create(1, SCHEMA_SDL, &graph).unwrap();
        let mut handoff = store.begin_handoff();
        handoff.add_session(1, 1, 0, SCHEMA_SDL, &graph, None);
        handoff.finish(2)
    };
    let dst = tmp_dir("handoff-dst");
    let _ = std::fs::remove_dir_all(&dst);
    pg_store::install_snapshot(&dst, &blob).expect("installs");
    let (_store, recovered) =
        pg_store::Store::open(&dst, pg_store::FsyncPolicy::Never).expect("bootstraps");
    assert_eq!(recovered.sessions.len(), 1);
    assert!(
        recovered.sessions[0].graph.is_mapped(),
        "bootstrap leaves the graph zero-copy until first use"
    );
    assert_eq!(recovered.sessions[0].graph, graph);
    let _ = std::fs::remove_dir_all(&src);
    let _ = std::fs::remove_dir_all(&dst);
}

#[test]
fn future_snapshot_version_fails_loudly_and_mutates_nothing() {
    let graph = sample_graph(10);
    let dir = tmp_dir("future");
    {
        let (store, _) = pg_store::Store::open(&dir, pg_store::FsyncPolicy::Never).unwrap();
        store.append_create(1, SCHEMA_SDL, &graph).unwrap();
        let mut compaction = store.try_begin_compaction().unwrap().unwrap();
        compaction.add_session(1, 1, 0, SCHEMA_SDL, &graph, None);
        compaction.finish(2).unwrap();
    }
    // Rewrite the snapshot as an intact file from a future writer:
    // bump the magic to PGS9 and fix up the container CRC.
    let snap_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path()))
        .find(|p| p.extension().is_some_and(|x| x == "snap"))
        .expect("compaction wrote a snapshot");
    let mut bytes = std::fs::read(&snap_path).unwrap();
    bytes[8 + 3] = b'9'; // frame header is 8 bytes; magic is payload[0..4]
    let crc = snapshot::crc32(&bytes[8..]);
    bytes[4..8].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&snap_path, &bytes).unwrap();

    let before: Vec<(String, Vec<u8>)> = {
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(&p).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };

    let err = match pg_store::Store::open(&dir, pg_store::FsyncPolicy::Never) {
        Ok(_) => panic!("future format must not open"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    assert!(
        err.to_string().contains("unsupported snapshot version"),
        "error names the cause: {err}"
    );

    // Refusal means refusal: no truncation, no deletion, no fallback
    // side effects — every byte of the directory is as it was.
    let after: Vec<(String, Vec<u8>)> = {
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(&p).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };
    assert_eq!(before, after, "failed open must not mutate the directory");
    let _ = std::fs::remove_dir_all(&dir);
}
