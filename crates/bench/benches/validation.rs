//! Criterion benches for experiments E2/E3: schema validation wall time,
//! naive vs indexed engine, over graph and schema size sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_datagen::{GraphGen, GraphGenParams, SchemaGen, SchemaGenParams};
use pg_schema::{validate, Engine, PgSchema, ValidationOptions};

fn social_graph(nodes_per_type: usize) -> (PgSchema, pgraph::PropertyGraph) {
    let schema = PgSchema::parse(pg_datagen::schemagen::social_schema()).unwrap();
    let graph = GraphGen::new(
        &schema,
        GraphGenParams {
            nodes_per_type,
            ..Default::default()
        },
    )
    .generate_conforming(5)
    .expect("generable");
    (schema, graph)
}

/// E2: graph-size sweep for both engines.
fn bench_graph_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_validation_graph_scaling");
    group.sample_size(10);
    for npt in [100usize, 400, 1600] {
        let (schema, graph) = social_graph(npt);
        let elements = (graph.node_count() + graph.edge_count()) as u64;
        group.throughput(Throughput::Elements(elements));
        group.bench_with_input(
            BenchmarkId::new("indexed", graph.node_count()),
            &graph,
            |b, g| {
                b.iter(|| validate(g, &schema, &ValidationOptions::with_engine(Engine::Indexed)))
            },
        );
        if npt <= 400 {
            group.bench_with_input(
                BenchmarkId::new("naive", graph.node_count()),
                &graph,
                |b, g| {
                    b.iter(|| validate(g, &schema, &ValidationOptions::with_engine(Engine::Naive)))
                },
            );
        }
    }
    group.finish();
}

/// E3: schema-size sweep at constant graph size.
fn bench_schema_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_validation_schema_scaling");
    group.sample_size(10);
    for num_types in [4usize, 16, 64] {
        let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(num_types, 42)).generate();
        let schema = PgSchema::parse(&sdl).unwrap();
        let graph = GraphGen::new(
            &schema,
            GraphGenParams {
                nodes_per_type: (2000 / num_types).max(1),
                ..Default::default()
            },
        )
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(num_types), &graph, |b, g| {
            b.iter(|| validate(g, &schema, &ValidationOptions::default()))
        });
    }
    group.finish();
}

/// E10-adjacent: cost of a validation run that must report many
/// violations (worst-case reporting path).
fn bench_violating_graphs(c: &mut Criterion) {
    let (schema, mut graph) = social_graph(400);
    for defect in pg_datagen::Defect::ALL {
        let _ = pg_datagen::inject(&mut graph, &schema, defect);
    }
    c.bench_function("E10_validation_with_violations", |b| {
        b.iter(|| validate(&graph, &schema, &ValidationOptions::default()))
    });
}

criterion_group!(
    benches,
    bench_graph_scaling,
    bench_schema_scaling,
    bench_violating_graphs
);
criterion_main!(benches);
