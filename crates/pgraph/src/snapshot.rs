//! PGCS — the versioned, fixed-layout, CRC-guarded columnar graph
//! snapshot.
//!
//! The file bytes *are* the columnar tables of [`ColumnarGraph`]: a fixed
//! 288-byte header (magic, version, CRC-32, element counts, and a
//! 16-entry section table) followed by the sections themselves, each
//! 8-byte aligned. Loading a snapshot therefore costs a header check plus
//! one CRC pass — **no per-element deserialisation** — which is what lets
//! `pg-store` recovery and follower bootstrap `mmap` a snapshot and start
//! serving immediately; elements are only materialised when a session is
//! first validated ([`SnapshotView::thaw`]).
//!
//! The normative layout table lives in `docs/replication.md` and is
//! machine-checked against the constants below by the store's
//! `spec_parity` test. Summary:
//!
//! | field | bytes |
//! |---|---|
//! | magic `"PGCS"` | 0..4 |
//! | version (`u32` LE, currently 1) | 4..8 |
//! | CRC-32 of bytes `16..end` | 8..12 |
//! | section count (16) | 12..16 |
//! | node slots, edge slots, symbols, values (`u32` each) | 16..32 |
//! | section table: 16 × (offset `u64`, len `u64`) | 32..288 |
//!
//! Sections, in table order: `node_alive`, `node_label`,
//! `node_prop_start`, `node_prop_keys`, `node_prop_vals`, `edge_alive`,
//! `edge_label`, `edge_src`, `edge_dst`, `edge_prop_start`,
//! `edge_prop_keys`, `edge_prop_vals`, `sym_start`, `sym_heap`,
//! `val_start`, `val_heap`. All numeric columns are `u32` LE; the heaps
//! are raw UTF-8 and concatenated [`crate::binary`] value encodings, with
//! `*_start` prefix-sum columns delimiting entries. The derived CSR
//! adjacency is *not* stored — it is rebuilt on thaw.
//!
//! A snapshot with a recognisable magic but a newer version fails with
//! [`SnapshotError::UnsupportedVersion`] — never a silent fallback and
//! never a torn-tail truncation.

use std::fmt;

use crate::binary::{self, BinError};
use crate::columnar::{ColumnarGraph, ValueTable};
use crate::graph::{EdgeData, NodeData, PropMap};
use crate::symbols::{Sym, SymbolTable};
use crate::{NodeId, PropertyGraph};

/// Magic prefix of every PGCS snapshot.
pub const MAGIC: [u8; 4] = *b"PGCS";
/// Current (and only) format version.
pub const VERSION: u32 = 1;
/// Number of sections in the table.
pub const SECTION_COUNT: usize = 16;
/// Total header length: 32 fixed bytes + 16 × 16-byte table entries.
pub const HEADER_LEN: usize = 32 + SECTION_COUNT * 16;

/// Section names, in table order (used by `pgschema store inspect` and
/// the docs parity check).
pub const SECTION_NAMES: [&str; SECTION_COUNT] = [
    "node_alive",
    "node_label",
    "node_prop_start",
    "node_prop_keys",
    "node_prop_vals",
    "edge_alive",
    "edge_label",
    "edge_src",
    "edge_dst",
    "edge_prop_start",
    "edge_prop_keys",
    "edge_prop_vals",
    "sym_start",
    "sym_heap",
    "val_start",
    "val_heap",
];

/// Errors raised by snapshot parsing and thawing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the PGCS magic.
    BadMagic,
    /// The version field names a format this build does not understand.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file is shorter than its header (or a section) requires.
    Truncated,
    /// The CRC-32 over the body does not match the header.
    BadCrc,
    /// A structural invariant of the layout is violated.
    Layout(&'static str),
    /// An element failed to decode during thaw.
    Element(BinError),
    /// A live edge references an out-of-range or dead node slot.
    DanglingEdge {
        /// Index of the offending edge slot.
        edge_index: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a PGCS snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads {VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadCrc => write!(f, "snapshot CRC mismatch"),
            SnapshotError::Layout(what) => write!(f, "snapshot layout invalid: {what}"),
            SnapshotError::Element(e) => write!(f, "snapshot element invalid: {e}"),
            SnapshotError::DanglingEdge { edge_index } => {
                write!(f, "live edge slot {edge_index} references a missing node")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<BinError> for SnapshotError {
    fn from(e: BinError) -> Self {
        SnapshotError::Element(e)
    }
}

/// One section table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section {
    /// Byte offset from the start of the snapshot.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// The decoded fixed header of a PGCS snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphHeader {
    /// Format version.
    pub version: u32,
    /// CRC-32 recorded in the header.
    pub crc: u32,
    /// Raw node slot count (tombstones included).
    pub node_slots: u32,
    /// Raw edge slot count.
    pub edge_slots: u32,
    /// Distinct interned strings.
    pub symbols: u32,
    /// Distinct interned values.
    pub values: u32,
    /// The section table, in [`SECTION_NAMES`] order.
    pub sections: [Section; SECTION_COUNT],
}

impl GraphHeader {
    /// Decodes and structurally validates the header of `bytes` — magic,
    /// version, section bounds. Does **not** verify the CRC (see
    /// [`crc_ok`](Self::crc_ok)); `pgschema store inspect` uses this to
    /// describe snapshots whose body is damaged.
    pub fn parse(bytes: &[u8]) -> Result<GraphHeader, SnapshotError> {
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32_at(bytes, 4);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        if u32_at(bytes, 12) as usize != SECTION_COUNT {
            return Err(SnapshotError::Layout("section count"));
        }
        let mut sections = [Section { offset: 0, len: 0 }; SECTION_COUNT];
        let mut cursor = HEADER_LEN as u64;
        for (i, s) in sections.iter_mut().enumerate() {
            let base = 32 + i * 16;
            s.offset = u64_at(bytes, base);
            s.len = u64_at(bytes, base + 8);
            // Sections are laid out in table order, non-overlapping,
            // within the file.
            if s.offset < cursor {
                return Err(SnapshotError::Layout("section overlap"));
            }
            let end = s
                .offset
                .checked_add(s.len)
                .ok_or(SnapshotError::Layout("section end overflow"))?;
            if end > bytes.len() as u64 {
                return Err(SnapshotError::Truncated);
            }
            cursor = end;
        }
        let header = GraphHeader {
            version,
            crc: u32_at(bytes, 8),
            node_slots: u32_at(bytes, 16),
            edge_slots: u32_at(bytes, 20),
            symbols: u32_at(bytes, 24),
            values: u32_at(bytes, 28),
            sections,
        };
        header.check_section_sizes()?;
        Ok(header)
    }

    /// Whether the recorded CRC matches `bytes` — one linear pass, the
    /// only whole-file work a snapshot load performs.
    pub fn crc_ok(&self, bytes: &[u8]) -> bool {
        bytes.len() >= 16 && crc32(&bytes[16..]) == self.crc
    }

    /// O(1) consistency checks of section lengths against the counts.
    fn check_section_sizes(&self) -> Result<(), SnapshotError> {
        let n = self.node_slots as u64;
        let m = self.edge_slots as u64;
        let s = &self.sections;
        let want = [
            n,                             // node_alive
            n * 4,                         // node_label
            (n + 1) * 4,                   // node_prop_start
            s[3].len,                      // node_prop_keys (checked against prop_start below)
            s[3].len,                      // node_prop_vals parallel to keys
            m,                             // edge_alive
            m * 4,                         // edge_label
            m * 4,                         // edge_src
            m * 4,                         // edge_dst
            (m + 1) * 4,                   // edge_prop_start
            s[10].len,                     // edge_prop_keys
            s[10].len,                     // edge_prop_vals
            (self.symbols as u64 + 1) * 4, // sym_start
            s[13].len,                     // sym_heap (delimited by sym_start)
            (self.values as u64 + 1) * 4,  // val_start
            s[15].len,                     // val_heap
        ];
        for (i, (&section, &expected)) in s.iter().zip(want.iter()).enumerate() {
            if section.len != expected {
                let _ = i;
                return Err(SnapshotError::Layout("section length"));
            }
        }
        if s[3].len % 4 != 0 || s[10].len % 4 != 0 {
            return Err(SnapshotError::Layout("prop column alignment"));
        }
        Ok(())
    }
}

/// A parsed, CRC-verified view over snapshot bytes. Holding a view costs
/// nothing per element; [`thaw`](Self::thaw) materialises the graph.
#[derive(Debug)]
pub struct SnapshotView<'a> {
    bytes: &'a [u8],
    header: GraphHeader,
}

impl<'a> SnapshotView<'a> {
    /// Validates the header, section bounds and CRC of `bytes`.
    pub fn parse(bytes: &'a [u8]) -> Result<SnapshotView<'a>, SnapshotError> {
        let header = GraphHeader::parse(bytes)?;
        if !header.crc_ok(bytes) {
            return Err(SnapshotError::BadCrc);
        }
        Ok(SnapshotView { bytes, header })
    }

    /// The decoded header.
    pub fn header(&self) -> &GraphHeader {
        &self.header
    }

    fn section(&self, ix: usize) -> &'a [u8] {
        let s = self.header.sections[ix];
        &self.bytes[s.offset as usize..(s.offset + s.len) as usize]
    }

    fn u32_column(&self, ix: usize) -> Vec<u32> {
        self.section(ix)
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn sym_column(&self, ix: usize) -> Vec<Sym> {
        self.section(ix)
            .chunks_exact(4)
            .map(|c| Sym::from_index(u32::from_le_bytes(c.try_into().unwrap()) as usize))
            .collect()
    }

    fn bool_column(&self, ix: usize) -> Vec<bool> {
        self.section(ix).iter().map(|&b| b != 0).collect()
    }

    /// Decodes the columns into a [`ColumnarGraph`], fully validating
    /// every element (UTF-8 symbols, value encodings, prefix-sum
    /// monotonicity, edge endpoints). This is the per-element work a
    /// mapped snapshot defers until a session is first used.
    pub fn thaw_columnar(&self) -> Result<ColumnarGraph, SnapshotError> {
        let symbols = self.decode_symbols()?;
        let values = ValueTable::from_values(binary::decode_values(
            self.section(15),
            self.header.values as usize,
        )?);
        // val_start must delimit exactly the encodings decode_values
        // consumed; cheap monotonicity check.
        check_prefix(&self.u32_column(14), self.header.sections[15].len)?;

        let node_prop_start = self.u32_column(2);
        check_prefix(&node_prop_start, self.header.sections[3].len / 4)?;
        if node_prop_start.last().copied().unwrap_or(0) as u64 * 4 != self.header.sections[3].len {
            return Err(SnapshotError::Layout("node prop extent"));
        }
        let edge_prop_start = self.u32_column(9);
        if edge_prop_start.last().copied().unwrap_or(0) as u64 * 4 != self.header.sections[10].len {
            return Err(SnapshotError::Layout("edge prop extent"));
        }
        check_prefix(&edge_prop_start, self.header.sections[10].len / 4)?;

        let node_label = self.sym_column(1);
        let node_prop_keys = self.sym_column(3);
        let node_prop_vals = self.u32_column(4);
        let edge_label = self.sym_column(6);
        let edge_prop_keys = self.sym_column(10);
        let edge_prop_vals = self.u32_column(11);
        let sym_bound = symbols.len();
        let val_bound = values.len() as u32;
        for s in node_label
            .iter()
            .chain(&node_prop_keys)
            .chain(&edge_label)
            .chain(&edge_prop_keys)
        {
            if s.index() >= sym_bound {
                return Err(SnapshotError::Layout("symbol out of range"));
            }
        }
        for &v in node_prop_vals.iter().chain(&edge_prop_vals) {
            if v >= val_bound {
                return Err(SnapshotError::Layout("value out of range"));
            }
        }

        let node_alive = self.bool_column(0);
        let edge_alive = self.bool_column(5);
        let edge_src = self.u32_column(7);
        let edge_dst = self.u32_column(8);
        let n = node_alive.len() as u32;
        for (ix, &alive) in edge_alive.iter().enumerate() {
            let (src, dst) = (edge_src[ix], edge_dst[ix]);
            if src >= n || dst >= n {
                return Err(SnapshotError::Layout("edge endpoint out of range"));
            }
            if alive && (!node_alive[src as usize] || !node_alive[dst as usize]) {
                return Err(SnapshotError::DanglingEdge { edge_index: ix });
            }
        }

        Ok(ColumnarGraph::from_columns(
            symbols,
            values,
            node_alive,
            node_label,
            node_prop_start,
            node_prop_keys,
            node_prop_vals,
            edge_alive,
            edge_label,
            edge_src,
            edge_dst,
            edge_prop_start,
            edge_prop_keys,
            edge_prop_vals,
        ))
    }

    /// Materialises the mutable [`PropertyGraph`] — the columnar decode
    /// plus per-element map rebuilds. Identical to the graph the snapshot
    /// was written from, tombstones included.
    pub fn thaw(&self) -> Result<PropertyGraph, SnapshotError> {
        // Decode straight into NodeData/EdgeData without building the
        // derived CSR the ColumnarGraph path would.
        let symbols = self.decode_symbols()?;
        let values = binary::decode_values(self.section(15), self.header.values as usize)?;
        check_prefix(&self.u32_column(14), self.header.sections[15].len)?;
        let sym_bound = symbols.len();
        let val_bound = values.len() as u32;

        let resolve = |s: Sym| -> Result<String, SnapshotError> {
            symbols
                .try_resolve(s)
                .map(str::to_owned)
                .ok_or(SnapshotError::Layout("symbol out of range"))
        };
        let props = |start: &[u32],
                     keys: &[Sym],
                     vals: &[u32],
                     ix: usize|
         -> Result<PropMap, SnapshotError> {
            let (a, b) = (start[ix] as usize, start[ix + 1] as usize);
            if a > b || b > keys.len() || b > vals.len() {
                return Err(SnapshotError::Layout("prop range"));
            }
            let mut map = PropMap::new();
            for i in a..b {
                if keys[i].index() >= sym_bound || vals[i] >= val_bound {
                    return Err(SnapshotError::Layout("prop entry out of range"));
                }
                map.insert(
                    symbols.resolve(keys[i]).to_owned(),
                    values[vals[i] as usize].clone(),
                );
            }
            Ok(map)
        };

        let node_alive = self.bool_column(0);
        let node_label = self.sym_column(1);
        let node_prop_start = self.u32_column(2);
        let node_prop_keys = self.sym_column(3);
        let node_prop_vals = self.u32_column(4);
        if node_prop_start.first() != Some(&0) && !node_prop_start.is_empty() {
            return Err(SnapshotError::Layout("prop start origin"));
        }
        let mut nodes = Vec::with_capacity(node_alive.len());
        for ix in 0..node_alive.len() {
            nodes.push(NodeData {
                label: resolve(node_label[ix])?,
                props: props(&node_prop_start, &node_prop_keys, &node_prop_vals, ix)?,
                alive: node_alive[ix],
            });
        }

        let edge_alive = self.bool_column(5);
        let edge_label = self.sym_column(6);
        let edge_src = self.u32_column(7);
        let edge_dst = self.u32_column(8);
        let edge_prop_start = self.u32_column(9);
        let edge_prop_keys = self.sym_column(10);
        let edge_prop_vals = self.u32_column(11);
        let n = nodes.len() as u32;
        let mut edges = Vec::with_capacity(edge_alive.len());
        for ix in 0..edge_alive.len() {
            let (src, dst) = (edge_src[ix], edge_dst[ix]);
            if src >= n || dst >= n {
                return Err(SnapshotError::Layout("edge endpoint out of range"));
            }
            if edge_alive[ix] && (!nodes[src as usize].alive || !nodes[dst as usize].alive) {
                return Err(SnapshotError::DanglingEdge { edge_index: ix });
            }
            edges.push(EdgeData {
                label: resolve(edge_label[ix])?,
                src: NodeId::from_index(src as usize),
                dst: NodeId::from_index(dst as usize),
                props: props(&edge_prop_start, &edge_prop_keys, &edge_prop_vals, ix)?,
                alive: edge_alive[ix],
            });
        }
        Ok(PropertyGraph::from_raw_parts(nodes, edges))
    }

    fn decode_symbols(&self) -> Result<SymbolTable, SnapshotError> {
        let sym_start = self.u32_column(12);
        let heap = self.section(13);
        check_prefix(&sym_start, heap.len() as u64)?;
        if sym_start.last().copied().unwrap_or(0) as usize != heap.len() {
            return Err(SnapshotError::Layout("symbol heap extent"));
        }
        let mut strings = Vec::with_capacity(sym_start.len().saturating_sub(1));
        for w in sym_start.windows(2) {
            let s = std::str::from_utf8(&heap[w[0] as usize..w[1] as usize])
                .map_err(|_| SnapshotError::Layout("symbol not UTF-8"))?;
            strings.push(s.to_owned());
        }
        Ok(SymbolTable::from_strings(strings))
    }
}

/// A prefix-sum column must start at 0, be monotone, and stay in bounds.
fn check_prefix(start: &[u32], bound_bytes: u64) -> Result<(), SnapshotError> {
    if start.first().is_some_and(|&f| f != 0) {
        return Err(SnapshotError::Layout("prefix origin"));
    }
    for w in start.windows(2) {
        if w[0] > w[1] {
            return Err(SnapshotError::Layout("prefix not monotone"));
        }
    }
    if let Some(&last) = start.last() {
        if last as u64 > bound_bytes {
            return Err(SnapshotError::Layout("prefix out of bounds"));
        }
    }
    Ok(())
}

/// Encodes a frozen graph as PGCS bytes.
pub fn encode(cg: &ColumnarGraph) -> Vec<u8> {
    // Build the heaps first so section lengths are known.
    let mut sym_start: Vec<u32> = Vec::with_capacity(cg.symbols.len() + 1);
    let mut sym_heap: Vec<u8> = Vec::new();
    sym_start.push(0);
    for s in cg.symbols.strings() {
        sym_heap.extend_from_slice(s.as_bytes());
        sym_start.push(sym_heap.len() as u32);
    }
    let mut val_start: Vec<u32> = Vec::with_capacity(cg.values.len() + 1);
    let mut val_heap: Vec<u8> = Vec::new();
    val_start.push(0);
    for v in cg.values.values() {
        binary::encode_value(&mut val_heap, v);
        val_start.push(val_heap.len() as u32);
    }

    let bools = |col: &[bool]| col.iter().map(|&b| b as u8).collect::<Vec<u8>>();
    let u32s = |col: &[u32]| {
        let mut out = Vec::with_capacity(col.len() * 4);
        for &v in col {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    };
    let syms = |col: &[Sym]| {
        let mut out = Vec::with_capacity(col.len() * 4);
        for &s in col {
            out.extend_from_slice(&(s.index() as u32).to_le_bytes());
        }
        out
    };

    let sections: [Vec<u8>; SECTION_COUNT] = [
        bools(&cg.node_alive),
        syms(&cg.node_label),
        u32s(&cg.node_prop_start),
        syms(&cg.node_prop_keys),
        u32s(&cg.node_prop_vals),
        bools(&cg.edge_alive),
        syms(&cg.edge_label),
        u32s(&cg.edge_src),
        u32s(&cg.edge_dst),
        u32s(&cg.edge_prop_start),
        syms(&cg.edge_prop_keys),
        u32s(&cg.edge_prop_vals),
        u32s(&sym_start),
        sym_heap,
        u32s(&val_start),
        val_heap,
    ];

    let mut out = vec![0u8; HEADER_LEN];
    out[0..4].copy_from_slice(&MAGIC);
    out[4..8].copy_from_slice(&VERSION.to_le_bytes());
    // CRC patched at the end.
    out[12..16].copy_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    out[16..20].copy_from_slice(&(cg.node_alive.len() as u32).to_le_bytes());
    out[20..24].copy_from_slice(&(cg.edge_alive.len() as u32).to_le_bytes());
    out[24..28].copy_from_slice(&(cg.symbols.len() as u32).to_le_bytes());
    out[28..32].copy_from_slice(&(cg.values.len() as u32).to_le_bytes());
    for (i, section) in sections.iter().enumerate() {
        // 8-byte alignment keeps numeric columns directly addressable.
        while out.len() % 8 != 0 {
            out.push(0);
        }
        let offset = out.len() as u64;
        let base = 32 + i * 16;
        out[base..base + 8].copy_from_slice(&offset.to_le_bytes());
        out[base + 8..base + 16].copy_from_slice(&(section.len() as u64).to_le_bytes());
        out.extend_from_slice(section);
    }
    let crc = crc32(&out[16..]);
    out[8..12].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Freezes and encodes a graph in one step.
pub fn graph_to_snapshot_bytes(g: &PropertyGraph) -> Vec<u8> {
    encode(&ColumnarGraph::freeze(g))
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

// CRC-32 (IEEE 802.3, reflected), slicing-by-8 — the same polynomial and
// check value as the store's WAL framing, duplicated here because
// `pgraph` sits below `pg-store` in the crate graph. Eight bytes per
// step through eight derived tables (`tables[k][b]` = crc of byte `b`
// followed by `k` zero bytes); byte-identical to the classic loop.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = build_tables();

/// The CRC-32 of `data` (`crc32(b"123456789") == 0xCBF43926`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = t[0][((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Value};

    fn sample() -> PropertyGraph {
        let mut g = GraphBuilder::new()
            .node("a", "User")
            .prop("a", "login", "alice")
            .prop("a", "score", 0.0f64)
            .node("b", "User")
            .prop("b", "login", "bob")
            .prop("b", "score", -0.0f64)
            .node("s", "Session")
            .edge("a", "b", "follows")
            .edge("s", "a", "user")
            .build()
            .unwrap();
        let doomed = g.add_node("Doomed");
        g.set_node_property(doomed, "nan", Value::Float(f64::NAN));
        let e = g.add_edge(doomed, doomed, "selfie").unwrap();
        g.remove_edge(e).unwrap();
        g.remove_node(doomed).unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = sample();
        let bytes = graph_to_snapshot_bytes(&g);
        let view = SnapshotView::parse(&bytes).unwrap();
        assert_eq!(view.header().version, VERSION);
        assert_eq!(view.header().node_slots as usize, g.node_index_bound());
        assert_eq!(view.thaw().unwrap(), g);
        assert_eq!(view.thaw_columnar().unwrap().thaw(), g);
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = sample();
        assert_eq!(graph_to_snapshot_bytes(&g), graph_to_snapshot_bytes(&g));
    }

    #[test]
    fn negative_zero_and_nan_survive_bit_exactly() {
        let g = sample();
        let bytes = graph_to_snapshot_bytes(&g);
        let back = SnapshotView::parse(&bytes).unwrap().thaw().unwrap();
        let b = back
            .nodes()
            .find(|n| n.property("login") == Some(&Value::from("bob")))
            .expect("node b");
        let Some(Value::Float(x)) = b.property("score") else {
            panic!()
        };
        assert_eq!(x.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn wrong_magic_and_version_are_explicit() {
        let g = sample();
        let mut bytes = graph_to_snapshot_bytes(&g);
        bytes[0] = b'X';
        assert_eq!(
            GraphHeader::parse(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut bytes = graph_to_snapshot_bytes(&g);
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            GraphHeader::parse(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 9 }
        );
        assert!(SnapshotError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains("unsupported snapshot version"));
    }

    #[test]
    fn every_truncation_and_bit_flip_is_rejected() {
        let g = sample();
        let bytes = graph_to_snapshot_bytes(&g);
        for cut in 0..bytes.len() {
            assert!(
                SnapshotView::parse(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
        // Flipping any byte of the body breaks the CRC; flipping the
        // header breaks magic/version/crc/layout checks.
        for at in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            let r = SnapshotView::parse(&bad);
            assert!(r.is_err(), "flip at {at} parsed");
        }
    }

    #[test]
    fn corrupt_columns_fail_thaw_not_parse() {
        // A snapshot can be CRC-clean yet structurally hostile (a buggy
        // writer): thaw must reject it. Build one by encoding a graph and
        // then re-CRC-ing after corrupting a column.
        let g = sample();
        let mut bytes = graph_to_snapshot_bytes(&g);
        let view = SnapshotView::parse(&bytes).unwrap();
        // Point node 0's label at an out-of-range symbol.
        let label_off = view.header().sections[1].offset as usize;
        bytes[label_off..label_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = crc32(&bytes[16..]);
        bytes[8..12].copy_from_slice(&crc.to_le_bytes());
        let view = SnapshotView::parse(&bytes).unwrap();
        assert!(view.thaw().is_err());
        assert!(view.thaw_columnar().is_err());
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = PropertyGraph::new();
        let bytes = graph_to_snapshot_bytes(&g);
        let view = SnapshotView::parse(&bytes).unwrap();
        assert_eq!(view.thaw().unwrap(), g);
    }

    #[test]
    fn crc_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
