//! Crash-injection harness for the durable session store: a real
//! `pgschema serve --data-dir` process is SIGKILLed mid-load at random
//! points, relaunched on the same directory, and the recovered state is
//! required to agree byte-for-byte with a from-scratch four-engine
//! oracle validation — and to be exactly some acknowledged prefix of the
//! delta stream. A second phase truncates and bit-flips WAL tails of
//! copies of the crashed directory at random offsets and requires
//! recovery to land on a valid earlier prefix (or, when the cut reaches
//! back past the session's Create record, on an empty store), never on
//! fabricated state.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pg_schema::{validate, Engine, PgSchema, ValidationOptions};
use pg_server::http::read_response;
use pg_server::workload::{sample_graph, toggle_delta, user_ids, SCHEMA_SDL};
use pgraph::json::{self, Json};
use pgraph::{GraphDelta, PropertyGraph};
use rand::prelude::*;

struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: crash\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        let (status, _headers, body) = read_response(&mut self.stream, &mut self.buf)?;
        Ok((status, body))
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("pgschema-crash-tests")
        .join(format!("{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(addr: &str, data_dir: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_pgschema"))
        .args([
            "serve",
            "--addr",
            addr,
            "--cores",
            "2",
            "--log-format",
            "off",
            "--fsync",
            "always",
            "--data-dir",
        ])
        .arg(data_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pgschema serve")
}

fn wait_ready(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut client) = Client::connect(addr) {
            if matches!(client.request("GET", "/healthz", b""), Ok((200, _))) {
                return client;
            }
        }
        assert!(Instant::now() < deadline, "daemon on {addr} never came up");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn envelope(graph: &PropertyGraph) -> Vec<u8> {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    pg_server::http::push_json_string(&mut out, SCHEMA_SDL);
    out.push_str(",\"graph\":");
    out.push_str(&json::to_json(graph));
    out.push('}');
    out.into_bytes()
}

/// The `conforms` and `violations` members of a report document —
/// everything that must agree across engines and restarts (timing
/// metrics and the engine label legitimately differ).
fn report_essence(doc: &Json) -> (Json, Json) {
    (
        doc.get("conforms").cloned().expect("report has conforms"),
        doc.get("violations")
            .cloned()
            .expect("report has violations"),
    )
}

/// The from-scratch oracle: all four engines over `graph` must agree
/// with each other and with the served report's essence.
fn assert_four_engine_agreement(graph: &PropertyGraph, served_report: &Json, context: &str) {
    let schema = PgSchema::parse(SCHEMA_SDL).unwrap();
    let served = report_essence(served_report);
    for engine in [
        Engine::Naive,
        Engine::Indexed,
        Engine::Parallel,
        Engine::Incremental,
    ] {
        let scratch = validate(graph, &schema, &ValidationOptions::with_engine(engine));
        let scratch_doc = Json::parse(&scratch.to_json()).unwrap();
        assert_eq!(
            served,
            report_essence(&scratch_doc),
            "{context}: {} disagrees with the served report",
            engine.name()
        );
    }
}

/// SIGKILL the daemon at random points while a loader hammers one
/// durable session, relaunch on the same directory, and require the
/// recovered graph to be exactly the acknowledged prefix of the delta
/// stream (in-flight deltas may add at most one more) and the recovered
/// report to pass the four-engine oracle.
#[test]
fn sigkill_mid_load_recovers_an_acknowledged_prefix() {
    let data_dir = test_dir("sigkill");
    let port = TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .unwrap()
        .port();
    let addr = format!("127.0.0.1:{port}");
    let mut rng = StdRng::seed_from_u64(0xC4A5_11ED);

    let initial = sample_graph(4);
    let user = user_ids(&initial)[0];

    let mut child = spawn_daemon(&addr, &data_dir);
    let mut client = wait_ready(&addr);
    let (status, body) = client
        .request("POST", "/sessions", &envelope(&initial))
        .unwrap();
    assert_eq!(status, 201, "create session");
    let id = Json::parse(&String::from_utf8_lossy(&body))
        .ok()
        .and_then(|d| d.get("session")?.as_i64())
        .unwrap();
    drop(client);

    // `applied` tracks the deltas the server has durably absorbed so
    // far, adopted after each crash by matching the served graph against
    // the candidate prefixes.
    let mut applied: Vec<GraphDelta> = Vec::new();
    let mut delta_counter = 0u64;

    for round in 0..3 {
        // Loader: synchronous deltas on one connection until the kill.
        let acked = AtomicU64::new(0);
        let sent = AtomicU64::new(0);
        let kill_after = Duration::from_millis(rng.gen_range(30u64..250));
        let round_deltas: Vec<GraphDelta> = (0..400)
            .map(|i| toggle_delta(user, delta_counter + i))
            .collect();
        std::thread::scope(|scope| {
            let loader = scope.spawn(|| {
                let Ok(mut client) = Client::connect(&addr) else {
                    return;
                };
                for delta in &round_deltas {
                    sent.fetch_add(1, Ordering::SeqCst);
                    let body = json::delta_to_json(delta);
                    match client.request("POST", &format!("/sessions/{id}/deltas"), body.as_bytes())
                    {
                        Ok((200, _)) => {
                            acked.fetch_add(1, Ordering::SeqCst);
                        }
                        _ => return, // connection died: the kill landed
                    }
                }
            });
            std::thread::sleep(kill_after);
            child.kill().expect("SIGKILL daemon");
            let _ = child.wait();
            loader.join().unwrap();
        });
        let acked = acked.load(Ordering::SeqCst) as usize;
        let sent = sent.load(Ordering::SeqCst) as usize;

        // Relaunch on the same directory and read the recovered state.
        child = spawn_daemon(&addr, &data_dir);
        let mut client = wait_ready(&addr);
        let (status, graph_body) = client
            .request("GET", &format!("/sessions/{id}/graph"), b"")
            .unwrap();
        assert_eq!(status, 200, "round {round}: session survives the crash");
        let served_graph_json = String::from_utf8(graph_body).unwrap();
        let (status, report_body) = client
            .request("GET", &format!("/sessions/{id}/report"), b"")
            .unwrap();
        assert_eq!(status, 200);
        let served_report = Json::parse(&String::from_utf8_lossy(&report_body)).unwrap();
        drop(client);

        // Every acknowledged delta must have survived; the one that may
        // have been in flight at the kill is allowed either way.
        let mut matched = None;
        let mut candidate = {
            let mut g = initial.clone();
            for d in &applied {
                d.apply_to(&mut g).unwrap();
            }
            g
        };
        for (k, delta) in std::iter::once(None)
            .chain(round_deltas.iter().map(Some))
            .enumerate()
        {
            if let Some(delta) = delta {
                delta.apply_to(&mut candidate).unwrap();
            }
            let within_ambiguity = k >= acked && k <= sent;
            if within_ambiguity && json::to_json(&candidate) == served_graph_json {
                matched = Some((k, candidate.clone()));
                break;
            }
            if k > sent {
                break;
            }
        }
        let (k, adopted) = matched.unwrap_or_else(|| {
            panic!(
                "round {round}: recovered graph is not an acknowledged prefix \
                 (acked {acked}, sent {sent})"
            )
        });
        assert_four_engine_agreement(&adopted, &served_report, &format!("round {round}"));

        applied.extend(round_deltas[..k].iter().cloned());
        delta_counter += sent as u64;
    }

    // Leave a crashed (not drained) directory behind for the tail-
    // corruption phase.
    let _ = child.kill();
    let _ = child.wait();

    corrupt_tails_and_recover(&data_dir, &initial, &applied);
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// Phase two: truncate and bit-flip the WAL tail of *copies* of the
/// crashed directory at random offsets; recovery must always produce a
/// valid prefix of the delta history (possibly none at all), and that
/// prefix must pass the four-engine oracle.
fn corrupt_tails_and_recover(data_dir: &Path, initial: &PropertyGraph, applied: &[GraphDelta]) {
    let mut rng = StdRng::seed_from_u64(0xDEAD_7A11);
    // All graphs the WAL could legally rewind to: the initial graph plus
    // every delta prefix.
    let mut prefixes = vec![json::to_json(initial)];
    {
        let mut g = initial.clone();
        for d in applied {
            d.apply_to(&mut g).unwrap();
            prefixes.push(json::to_json(&g));
        }
    }
    let schema = PgSchema::parse(SCHEMA_SDL).unwrap();

    let segments: Vec<PathBuf> = std::fs::read_dir(data_dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name()?.to_str()?.to_owned();
            (name.starts_with("wal-") && name.ends_with(".log")).then_some(p)
        })
        .collect();
    assert!(!segments.is_empty(), "crashed directory has WAL segments");
    let tail = segments.iter().max().unwrap();
    let tail_len = std::fs::metadata(tail).unwrap().len();

    for trial in 0..12 {
        let copy = test_dir(&format!("corrupt-{trial}"));
        for entry in std::fs::read_dir(data_dir).unwrap() {
            let p = entry.unwrap().path();
            std::fs::copy(&p, copy.join(p.file_name().unwrap())).unwrap();
        }
        let tail_copy = copy.join(tail.file_name().unwrap());
        if trial % 2 == 0 {
            // Torn tail: cut at a random byte offset.
            let cut = rng.gen_range(0..tail_len);
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&tail_copy)
                .unwrap();
            f.set_len(cut).unwrap();
        } else {
            // Bit flip at a random offset.
            let mut bytes = std::fs::read(&tail_copy).unwrap();
            if bytes.is_empty() {
                continue;
            }
            let at = rng.gen_range(0..bytes.len() as u64) as usize;
            bytes[at] ^= 1 << rng.gen_range(0u32..8);
            std::fs::write(&tail_copy, &bytes).unwrap();
        }

        let (_store, recovered) =
            pg_store::Store::open(&copy, pg_store::FsyncPolicy::Never).expect("recovery succeeds");
        match recovered.sessions.as_slice() {
            [] => {} // the cut reached past the Create record
            [session] => {
                let graph = session.graph.clone().into_graph().expect("materializes");
                let got = json::to_json(&graph);
                assert!(
                    prefixes.contains(&got),
                    "trial {trial}: recovered graph is not a prefix of the history"
                );
                let reports: Vec<_> = [
                    Engine::Naive,
                    Engine::Indexed,
                    Engine::Parallel,
                    Engine::Incremental,
                ]
                .into_iter()
                .map(|e| validate(&graph, &schema, &ValidationOptions::with_engine(e)))
                .collect();
                for r in &reports {
                    assert_eq!(
                        r.violations(),
                        reports[0].violations(),
                        "trial {trial}: engines disagree on the recovered graph"
                    );
                }
            }
            more => panic!("trial {trial}: unexpected sessions: {}", more.len()),
        }
        let _ = std::fs::remove_dir_all(&copy);
    }
}
