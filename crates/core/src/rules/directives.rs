//! Kernels for directive satisfaction — rules DS1–DS7 (Definition 5.2).
//!
//! DS7 (`@key`) is the one rule relating *pairs* of nodes, so its kernel
//! is split into a tuple-collect and a pair-emit phase. The three
//! [`Ds7Plan`](super::Ds7Plan)s compose them differently: [`ds7`] runs
//! both inline, [`ds7_map`] collects shard-local tables for a later
//! cross-shard [`ds7_emit`] reduce, and [`ds7_recheck`] maintains the
//! persistent [`KeyTable`]s of an incremental session.
//!
//! Over a columnar scope the collect phase is allocation-free per node:
//! a key tuple is the vector of `Option<u32>` *value-class ids* over the
//! key's scalar fields ([`ValueTable::eq_rep`](pgraph::ValueTable)
//! collapses ids to one representative per `Value`-equal class), so
//! tuple equality coincides with the `Value`-tuple equality the paper's
//! "agree" relation asks for — including across shards, because the ids
//! are graph-global.

use std::collections::HashMap;
use std::hash::Hash;

use pgraph::{NodeId, PropertyGraph, Value};

use crate::pgschema::{KeyConstraint, PgSchema};
use crate::report::{Rule, ValidationReport, Violation};
use crate::ValidationOptions;

use super::symschema::KeySlot;
use super::{Scope, Sink};

/// DS1 (`@distinct`): no parallel edges between the same endpoints with
/// the same label — via the parallel-edge groups whose source the scope
/// owns.
pub(crate) fn ds1(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS1, |sink| {
        let ss = scope.ss;
        for site in &ss.sites {
            if !site.distinct {
                continue;
            }
            scope.for_parallel_runs(site.rel_sym, &mut |src, dst, edges| {
                if sink.at_limit() {
                    return false;
                }
                if edges.len() < 2 {
                    return true;
                }
                sink.group_visited();
                if ss.label_subtype_opt(scope.label_sym(src), site.site) {
                    sink.push(Violation::DistinctViolated {
                        source: src,
                        target: dst,
                        field: site.rel_name.clone(),
                        count: edges.len(),
                    });
                }
                true
            });
        }
    });
}

/// DS2 (`@noLoops`): no self-loops — one scan over the scope's edges per
/// run (all loop sites checked in the same pass).
pub(crate) fn ds2(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS2, |sink| {
        let ss = scope.ss;
        let loop_sites: Vec<_> = ss.sites.iter().filter(|site| site.no_loops).collect();
        if loop_sites.is_empty() {
            return;
        }
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            if e.src != e.dst {
                continue;
            }
            for site in &loop_sites {
                if e.label == site.rel_sym
                    && ss.label_subtype_opt(scope.label_sym(e.src), site.site)
                {
                    sink.push(Violation::LoopViolated {
                        node: e.src,
                        field: site.rel_name.clone(),
                    });
                }
            }
        }
    });
}

/// DS3 (`@uniqueForTarget`): at most one incoming edge per target — via
/// the `(target, label)` in-groups whose target the scope owns, counting
/// only edges whose source is below the constraint site (cf. the DS3
/// reading note in the naive engine).
pub(crate) fn ds3(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS3, |sink| {
        let ss = scope.ss;
        for site in &ss.sites {
            if !site.unique_for_target {
                continue;
            }
            scope.for_in_runs(site.rel_sym, &mut |target, edges| {
                if sink.at_limit() {
                    return false;
                }
                if edges.len() < 2 {
                    return true;
                }
                sink.group_visited();
                let count = edges
                    .iter()
                    .filter(|&e| {
                        let src = scope.edge_source(e);
                        src.is_some_and(|v| ss.label_subtype_opt(scope.label_sym(v), site.site))
                    })
                    .count();
                if count > 1 {
                    sink.push(Violation::UniqueForTargetViolated {
                        target,
                        field: site.rel_name.clone(),
                        count,
                    });
                }
                true
            });
        }
    });
}

/// DS4 (`@requiredForTarget`): at least one incoming edge per target —
/// via the label index: for every owned node whose label is below the
/// field type, check the incoming `(target, label)` group.
pub(crate) fn ds4(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS4, |sink| {
        let ss = scope.ss;
        for (si, site) in ss.sites.iter().enumerate() {
            if !site.required_for_target {
                continue;
            }
            for &label in scope.labels() {
                if sink.at_limit() {
                    return;
                }
                if !ss.row(label).site_target_ok(si) {
                    continue;
                }
                for n in scope.nodes_with_label(label) {
                    if !scope.owns(n) {
                        continue;
                    }
                    sink.group_visited();
                    let ok = scope.in_edges_labelled(n, site.rel_sym).iter().any(|e| {
                        scope.edge_source(e).is_some_and(|src| {
                            ss.label_subtype_opt(scope.label_sym(src), site.site)
                        })
                    });
                    if !ok {
                        sink.push(Violation::RequiredForTargetViolated {
                            target: n,
                            field: site.rel_name.clone(),
                            site: site.site_name.clone(),
                        });
                    }
                }
            }
        }
    });
}

/// DS5 (`@required` on attributes): required properties are present and
/// non-empty — via the label index, over owned nodes.
pub(crate) fn ds5(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS5, |sink| {
        let ss = scope.ss;
        for site in &ss.ds5_sites {
            for &label in scope.labels() {
                if sink.at_limit() {
                    return;
                }
                if !ss.label_subtype(label, site.t) {
                    continue;
                }
                for n in scope.nodes_with_label(label) {
                    if !scope.owns(n) {
                        continue;
                    }
                    sink.group_visited();
                    match scope.node_prop(n, site.sym) {
                        None => sink.push(Violation::RequiredPropertyMissing {
                            node: n,
                            field: site.name.clone(),
                            empty_list: false,
                        }),
                        Some(Value::List(items)) if site.is_list && items.is_empty() => {
                            sink.push(Violation::RequiredPropertyMissing {
                                node: n,
                                field: site.name.clone(),
                                empty_list: true,
                            });
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    });
}

/// DS6 (`@required` on relationships): required outgoing edges exist —
/// via the label index and out-groups, over owned nodes.
pub(crate) fn ds6(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS6, |sink| {
        let ss = scope.ss;
        for site in &ss.sites {
            if !site.required {
                continue;
            }
            for &label in scope.labels() {
                if sink.at_limit() {
                    return;
                }
                if !ss.label_subtype(label, site.site) {
                    continue;
                }
                for n in scope.nodes_with_label(label) {
                    if !scope.owns(n) {
                        continue;
                    }
                    sink.group_visited();
                    if scope.out_edges_labelled(n, site.rel_sym).is_empty() {
                        sink.push(Violation::RequiredEdgeMissing {
                            node: n,
                            field: site.rel_name.clone(),
                        });
                    }
                }
            }
        }
    });
}

/// The scalar fields of a key (only those participate in DS7; condition
/// `typeS(t, fi) ∈ S∪WS`). String-keyed helper for the persistent
/// incremental tables; the columnar collect uses the precompiled
/// [`KeySlot::scalar_syms`].
pub(crate) fn ds7_scalar_fields<'s>(s: &'s PgSchema, key: &'s KeyConstraint) -> Vec<&'s str> {
    key.fields
        .iter()
        .filter(|f| {
            s.schema()
                .field(key.site, f)
                .is_some_and(|fi| s.schema().is_scalar(fi.ty.base))
        })
        .map(String::as_str)
        .collect()
}

/// DS7 map phase over a columnar scope: groups the owned nodes below the
/// key's site by their key tuple of value-class ids.
///
/// DS7's "agree" relation (both lack the property, or both have equal
/// values) is exactly tuple equality, so tables from disjoint shards
/// merge by appending the node lists.
fn ds7_collect_vids(
    scope: &Scope<'_, '_>,
    sink: &mut Sink<'_>,
    key: &KeySlot,
) -> HashMap<Vec<Option<u32>>, Vec<NodeId>> {
    let ss = scope.ss;
    let cols = scope.cols().expect("vid collect requires a columnar scope");
    let vt = cols.values();
    let mut groups: HashMap<Vec<Option<u32>>, Vec<NodeId>> = HashMap::new();
    for &label in scope.labels() {
        if !ss.label_subtype(label, key.site) {
            continue;
        }
        for n in scope.nodes_with_label(label) {
            if !scope.owns(n) {
                continue;
            }
            sink.group_visited();
            let tuple: Vec<Option<u32>> = key
                .scalar_syms
                .iter()
                .map(|&f| cols.node_prop_vid(n, f).map(|vid| vt.eq_rep(vid)))
                .collect();
            groups.entry(tuple).or_default().push(n);
        }
    }
    groups
}

/// DS7 map phase over the dirty scope: same grouping, with owned `Value`
/// tuples read back from the graph (the dirty region is too small to
/// justify a freeze).
fn ds7_collect_values(
    scope: &Scope<'_, '_>,
    sink: &mut Sink<'_>,
    key: &KeySlot,
) -> HashMap<Vec<Option<Value>>, Vec<NodeId>> {
    let (g, ss) = (scope.g, scope.ss);
    let mut groups: HashMap<Vec<Option<Value>>, Vec<NodeId>> = HashMap::new();
    for &label in scope.labels() {
        if !ss.label_subtype(label, key.site) {
            continue;
        }
        for n in scope.nodes_with_label(label) {
            if !scope.owns(n) {
                continue;
            }
            sink.group_visited();
            let tuple: Vec<Option<Value>> = key
                .scalar_names
                .iter()
                .map(|f| g.node_property(n, f).cloned())
                .collect();
            groups.entry(tuple).or_default().push(n);
        }
    }
    groups
}

/// DS7 reduce phase: emits one violation per unordered pair of nodes
/// sharing a key tuple, in sorted node order. Generic over the tuple
/// representation (value-class ids or `Value`s); used inline by [`ds7`]
/// and by the parallel engine's cross-shard merge.
pub(crate) fn ds7_emit<K: Hash + Eq>(
    ty: &str,
    fields: &[String],
    groups: HashMap<K, Vec<NodeId>>,
    r: &mut ValidationReport,
) {
    for mut nodes in groups.into_values() {
        if nodes.len() < 2 {
            continue;
        }
        if r.at_limit() {
            return;
        }
        nodes.sort();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in nodes.iter().skip(i + 1) {
                r.push(Violation::KeyViolated {
                    a,
                    b,
                    ty: ty.to_owned(),
                    fields: fields.to_vec(),
                });
            }
        }
    }
}

/// DS7 (`@key`), inline plan: collect and emit per key (serial
/// full-graph engines, and the dirty-region revalidation of migrations).
pub(crate) fn ds7(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::DS7, |sink| {
        for key in &scope.ss.keys {
            if sink.at_limit() {
                return;
            }
            if scope.cols().is_some() {
                let groups = ds7_collect_vids(scope, sink, key);
                ds7_emit(&key.ty_name, &key.fields, groups, sink.report);
            } else {
                let groups = ds7_collect_values(scope, sink, key);
                ds7_emit(&key.ty_name, &key.fields, groups, sink.report);
            }
        }
    });
}

/// DS7, map plan: collect one shard-local tuple table per key (in schema
/// key order) for the caller's cross-shard reduce. Emits no violations
/// itself; the recorded DS7 timing covers the map side only — the
/// planner adds the reduce time after the join. Columnar scopes only.
pub(crate) fn ds7_map(
    scope: &Scope<'_, '_>,
    sink: &mut Sink<'_>,
    tables: &mut Vec<HashMap<Vec<Option<u32>>, Vec<NodeId>>>,
) {
    sink.rule(Rule::DS7, |sink| {
        for key in &scope.ss.keys {
            tables.push(ds7_collect_vids(scope, sink, key));
        }
    });
}

/// Per-`@key` persistent state of an incremental session: each node's
/// current key tuple and the groups of nodes sharing one — the durable
/// form of the DS7 collect phase. Tuples stay `Value`-based here: the
/// tables outlive any one frozen columnar view, so value-class ids
/// (which are per-freeze) cannot name them.
pub(crate) struct KeyTable {
    scalar_fields: Vec<String>,
    tuples: HashMap<NodeId, Vec<Option<Value>>>,
    groups: HashMap<Vec<Option<Value>>, Vec<NodeId>>,
}

/// Seeds one tuple table per key constraint (directives only) from a
/// full pass over the graph.
pub(crate) fn build_key_tables(
    s: &PgSchema,
    g: &PropertyGraph,
    options: &ValidationOptions,
) -> Vec<KeyTable> {
    if !options.directives {
        return Vec::new();
    }
    s.keys()
        .iter()
        .map(|key| {
            let scalar_fields: Vec<String> = ds7_scalar_fields(s, key)
                .into_iter()
                .map(str::to_owned)
                .collect();
            let mut table = KeyTable {
                scalar_fields,
                tuples: HashMap::new(),
                groups: HashMap::new(),
            };
            for n in g.nodes() {
                if s.label_subtype(n.label(), key.site) {
                    let tuple: Vec<Option<Value>> = table
                        .scalar_fields
                        .iter()
                        .map(|f| g.node_property(n.id, f).cloned())
                        .collect();
                    table.groups.entry(tuple.clone()).or_default().push(n.id);
                    table.tuples.insert(n.id, tuple);
                }
            }
            table
        })
        .collect()
}

/// DS7, recheck plan: move each dirty node between tuple groups and
/// re-emit the pairs it now participates in. Pairs between two non-dirty
/// nodes were never dropped and stay valid (their tuples did not
/// change). Requires a dirty scope.
pub(crate) fn ds7_recheck(scope: &Scope<'_, '_>, sink: &mut Sink<'_>, tables: &mut [KeyTable]) {
    let dirty = scope
        .dirty_nodes()
        .expect("DS7 recheck plan requires a dirty scope");
    sink.rule(Rule::DS7, |sink| {
        let (g, s) = (scope.g, scope.s);
        for (key, table) in s.keys().iter().zip(tables) {
            for &v in dirty {
                sink.group_visited();
                if let Some(old) = table.tuples.remove(&v) {
                    if let Some(group) = table.groups.get_mut(&old) {
                        group.retain(|&n| n != v);
                        if group.is_empty() {
                            table.groups.remove(&old);
                        }
                    }
                }
                let Some(label) = g.node_label(v) else {
                    continue; // removed node: it only leaves its group
                };
                if !s.label_subtype(label, key.site) {
                    continue;
                }
                let tuple: Vec<Option<Value>> = table
                    .scalar_fields
                    .iter()
                    .map(|f| g.node_property(v, f).cloned())
                    .collect();
                table.groups.entry(tuple.clone()).or_default().push(v);
                table.tuples.insert(v, tuple);
            }
            // Emit the pairs involving dirty members of their (new) groups.
            for &v in dirty {
                let Some(tuple) = table.tuples.get(&v) else {
                    continue;
                };
                for &w in &table.groups[tuple] {
                    if w == v {
                        continue;
                    }
                    let (a, b) = if v < w { (v, w) } else { (w, v) };
                    sink.push(Violation::KeyViolated {
                        a,
                        b,
                        ty: s.schema().type_name(key.site).to_owned(),
                        fields: key.fields.clone(),
                    });
                }
            }
        }
    });
}
