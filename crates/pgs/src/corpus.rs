//! Deterministic generator of *overlapping-fragment* schemas.
//!
//! The translation-parity suite needs schemas expressible in both
//! languages: every construct must sit inside the fragment the
//! [`crate::print`]er accepts (the canonical shapes of the lowering
//! table), unlike `pg_datagen::SchemaGen` output, which freely uses
//! wrappings such as bare `T @required` that PG-Schema cannot render
//! losslessly. Generation is seeded and uses a local LCG, so corpus
//! membership is stable across runs and platforms.

use std::fmt::Write as _;

/// A tiny splitmix-style generator — enough entropy for corpus shaping,
/// no dependency on the vendored `rand`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

const SCALARS: &[&str] = &["String", "Int", "Float", "Boolean", "ID"];

/// Generates one fragment-corpus schema as SDL text.
///
/// The output always parses, builds a consistent schema, and renders to
/// PG-Schema without errors; it exercises all four property shapes, all
/// four edge cardinalities, the five constraint directives, edge
/// properties, interface inheritance with redeclared copies, keys, and
/// a custom scalar.
pub fn corpus_sdl(seed: u64) -> String {
    let mut rng = Rng(seed.wrapping_mul(2).wrapping_add(1));
    let n_types = 3 + rng.below(3) as usize; // T0..T{n-1}
    let with_iface = rng.chance(60);
    let custom_scalar = rng.chance(40);

    let mut out = String::new();

    // Interface: one or two attributes, sometimes a constrained edge.
    let mut iface_fields: Vec<String> = Vec::new();
    if with_iface {
        iface_fields.push(attr_field(&mut rng, "i0", custom_scalar));
        if rng.chance(50) {
            iface_fields.push(attr_field(&mut rng, "i1", custom_scalar));
        }
        if rng.chance(50) {
            let target = format!("T{}", rng.below(n_types as u64));
            let dir = *rng.pick(&[" @uniqueForTarget", " @requiredForTarget", ""]);
            iface_fields.push(format!("iref: [{target}]{dir}"));
        }
        out.push_str("interface I {\n");
        for f in &iface_fields {
            let _ = writeln!(out, "    {f}");
        }
        out.push_str("}\n\n");
    }

    for t in 0..n_types {
        let implements = with_iface && t < 2 && rng.chance(70);
        let keyed = t == 0 && rng.chance(50);
        let head = if implements {
            format!("type T{t} implements I")
        } else {
            format!("type T{t}")
        };
        if keyed {
            let _ = writeln!(out, "{head} @key(fields: [\"a{t}_0\"]) {{");
        } else {
            let _ = writeln!(out, "{head} {{");
        }
        if implements {
            // SDL requires implementors to redeclare interface fields.
            for f in &iface_fields {
                let _ = writeln!(out, "    {f}");
            }
        }
        // Attributes: the four canonical shapes.
        let n_attrs = 1 + rng.below(3);
        for a in 0..n_attrs {
            let name = format!("a{t}_{a}");
            let field = if keyed && a == 0 {
                // Key fields are mandatory ID properties.
                format!("{name}: ID! @required")
            } else {
                attr_field(&mut rng, &name, custom_scalar)
            };
            let _ = writeln!(out, "    {field}");
        }
        // Relationships: canonical cardinality shapes plus directives.
        let n_rels = rng.below(3);
        for r in 0..n_rels {
            let target = format!("T{}", rng.below(n_types as u64));
            let args = match rng.below(3) {
                0 => String::new(),
                1 => "(w: Float!)".to_owned(),
                _ => "(w: Float! note: String)".to_owned(),
            };
            let (ty, required) = match rng.below(4) {
                0 => (target.clone(), false),
                1 => (format!("{target}!"), true),
                2 => (format!("[{target}]"), false),
                _ => (format!("[{target}]"), true),
            };
            let mut dirs = String::new();
            if required {
                dirs.push_str(" @required");
            }
            if rng.chance(30) {
                dirs.push_str(" @distinct");
            }
            if rng.chance(20) {
                dirs.push_str(" @noLoops");
            }
            if rng.chance(20) {
                dirs.push_str(" @uniqueForTarget");
            }
            if rng.chance(15) {
                dirs.push_str(" @requiredForTarget");
            }
            let _ = writeln!(out, "    r{t}_{r}{args}: {ty}{dirs}");
        }
        out.push_str("}\n\n");
    }
    // Declared only when used: the PG-Schema rendering re-materialises
    // custom scalars from use sites, so an unused declaration would not
    // survive the round trip.
    if out.contains(": Stamp") || out.contains("[Stamp") {
        out.push_str("scalar Stamp\n");
    }
    out
}

/// One attribute in a canonical shape: `T!`, `T! @required`, `[T!]!`, or
/// `[T!]! @required`.
fn attr_field(rng: &mut Rng, name: &str, custom_scalar: bool) -> String {
    let scalar = if custom_scalar && rng.chance(15) {
        "Stamp"
    } else {
        rng.pick(SCALARS)
    };
    let array = rng.chance(25);
    let required = rng.chance(50);
    let ty = if array {
        format!("[{scalar}!]!")
    } else {
        format!("{scalar}!")
    };
    let req = if required { " @required" } else { "" };
    format!("{name}: {ty}{req}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TypeMode;

    #[test]
    fn every_corpus_schema_is_bilingual() {
        for seed in 0..50 {
            let sdl = corpus_sdl(seed);
            let doc = gql_sdl::parse(&sdl).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{sdl}"));
            let schema = pg_schema::PgSchema::from_document(&doc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{sdl}"));
            drop(schema);
            let pgs = crate::print_pgschema(&doc, "G", TypeMode::Strict)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{sdl}"));
            let compiled =
                crate::compile(&pgs).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{pgs}"));
            // Lowering the rendering reproduces the same classified
            // schema: same types, same attribute/relationship shapes.
            let lowered = gql_sdl::print_document(&compiled.document);
            let direct = gql_sdl::print_document(&doc);
            assert_eq!(
                sorted_lines(&lowered),
                sorted_lines(&direct),
                "seed {seed}:\n--- sdl\n{direct}\n--- via pgs\n{lowered}"
            );
        }
    }

    /// Field order may differ (PG-Schema groups properties before
    /// edges); the *set* of printed lines must not.
    fn sorted_lines(s: &str) -> Vec<&str> {
        let mut v: Vec<&str> = s.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
        v.sort_unstable();
        v
    }
}
