//! # dpll — a small CNF toolkit and SAT solver
//!
//! The NP-hardness proof of Theorem 2 reduces CNF-SAT to object-type
//! satisfiability. To reproduce the reduction *executably* we need a SAT
//! substrate: a CNF representation ([`Cnf`], [`Lit`]), a complete solver
//! ([`solve`] — DPLL with unit propagation and pure-literal elimination),
//! a DIMACS-style parser ([`Cnf::parse_dimacs`]) and a random k-SAT
//! generator ([`random_ksat`]) for the phase-transition benchmark (E4).
//!
//! ```
//! use dpll::{Cnf, Lit};
//!
//! // (x1 ∨ ¬x2) ∧ (x2)
//! let mut cnf = Cnf::new(2);
//! cnf.add_clause([Lit::pos(0), Lit::neg(1)]);
//! cnf.add_clause([Lit::pos(1)]);
//! let model = dpll::solve(&cnf).expect("satisfiable");
//! assert!(model[0] && model[1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdcl;
mod cnf;
mod gen;
mod solver;

pub use cdcl::{solve_cdcl, solve_cdcl_with_stats, CdclStats};
pub use cnf::{Cnf, DimacsError, Lit};
pub use gen::{random_ksat, KsatParams};
pub use solver::{solve, solve_with_stats, SolveStats};
