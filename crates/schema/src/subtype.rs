//! The subtype relation `⊑S` (paper §4.3).
//!
//! `⊑S` is the smallest relation over `T ∪ W_T` closed under:
//!
//! ```text
//! (1) t ⊑ t
//! (2) t ∈ implementationS(s)  ⟹  t ⊑ s
//! (3) t ∈ unionS(s)           ⟹  t ⊑ s
//! (4) t ⊑ s ⟹ [t] ⊑ [s]
//! (5) t ⊑ s ⟹  t  ⊑ [s]
//! (6) t ⊑ s ⟹  t! ⊑ s
//! (7) t ⊑ s ⟹  t! ⊑ s!
//! ```
//!
//! Because implementation/union hierarchies are one level deep and
//! wrappings at most three levels, membership is decidable by direct
//! structural recursion (this is the observation behind the AC0 bound in
//! the proof of Theorem 1).

use crate::model::{Schema, TypeId, TypeKind};
use crate::wrap::{Wrap, WrappedType};

/// Decides `sub ⊑S sup` for *named* types (rules 1–3).
pub fn named_subtype(schema: &Schema, sub: TypeId, sup: TypeId) -> bool {
    if sub == sup {
        return true;
    }
    match &schema.type_info(sup).kind {
        TypeKind::Interface(_) => schema.implementors(sup).contains(&sub),
        TypeKind::Union(members) => members.contains(&sub),
        _ => false,
    }
}

/// A type expression in the shape the paper's rules operate on.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ty {
    Named(TypeId),
    NonNull(Box<Ty>),
    List(Box<Ty>),
}

fn expand(w: &WrappedType) -> Ty {
    let named = Ty::Named(w.base);
    match w.wrap {
        Wrap::Bare => named,
        Wrap::NonNull => Ty::NonNull(Box::new(named)),
        Wrap::List {
            inner_non_null,
            outer_non_null,
        } => {
            let inner = if inner_non_null {
                Ty::NonNull(Box::new(named))
            } else {
                named
            };
            let list = Ty::List(Box::new(inner));
            if outer_non_null {
                Ty::NonNull(Box::new(list))
            } else {
                list
            }
        }
    }
}

fn le(schema: &Schema, a: &Ty, b: &Ty) -> bool {
    match (a, b) {
        (Ty::Named(x), Ty::Named(y)) => named_subtype(schema, *x, *y),
        // Rule 7 first, then rule 6 lets a non-null left drop its `!`
        // against any right-hand side.
        (Ty::NonNull(x), Ty::NonNull(y)) => le(schema, x, y),
        (Ty::NonNull(x), _) => le(schema, x, b),
        // Rule 4.
        (Ty::List(x), Ty::List(y)) => le(schema, x, y),
        // Rule 5: promote a non-list left into a singleton-list reading.
        (_, Ty::List(y)) => le(schema, a, y),
        _ => false,
    }
}

/// Decides `sub ⊑S sup` for possibly wrapped types (rules 1–7).
pub fn wrapped_subtype(schema: &Schema, sub: &WrappedType, sup: &WrappedType) -> bool {
    le(schema, &expand(sub), &expand(sup))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_schema;

    fn schema() -> Schema {
        build_schema(
            &gql_sdl::parse(
                r#"
                interface Food { name: String! }
                type Pizza implements Food { name: String! }
                type Pasta implements Food { name: String! }
                union Meal = Pizza | Pasta
                type Person { name: String! }
                "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn reflexive_on_named_types() {
        let s = schema();
        for id in s.type_ids() {
            assert!(named_subtype(&s, id, id));
        }
    }

    #[test]
    fn implementation_and_union_membership() {
        let s = schema();
        let pizza = s.type_id("Pizza").unwrap();
        let pasta = s.type_id("Pasta").unwrap();
        let food = s.type_id("Food").unwrap();
        let meal = s.type_id("Meal").unwrap();
        let person = s.type_id("Person").unwrap();
        assert!(named_subtype(&s, pizza, food));
        assert!(named_subtype(&s, pasta, food));
        assert!(named_subtype(&s, pizza, meal));
        assert!(!named_subtype(&s, person, food));
        assert!(!named_subtype(&s, food, pizza)); // not symmetric
        assert!(!named_subtype(&s, food, meal)); // interfaces ⋢ unions
    }

    #[test]
    fn wrapped_rules_4_to_7() {
        let s = schema();
        let pizza = s.type_id("Pizza").unwrap();
        let food = s.type_id("Food").unwrap();
        let bare = |t| WrappedType::bare(t);
        let nn = |t| WrappedType::non_null(t);
        let list = |t| WrappedType::list(t, false, false);
        let list_nn_inner = |t| WrappedType::list(t, true, false);

        // Rule 4: [Pizza] ⊑ [Food]
        assert!(wrapped_subtype(&s, &list(pizza), &list(food)));
        // Rule 5: Pizza ⊑ [Food]
        assert!(wrapped_subtype(&s, &bare(pizza), &list(food)));
        // Rule 6: Pizza! ⊑ Food
        assert!(wrapped_subtype(&s, &nn(pizza), &bare(food)));
        // Rule 7: Pizza! ⊑ Food!
        assert!(wrapped_subtype(&s, &nn(pizza), &nn(food)));
        // Rules 6+5: Pizza! ⊑ [Food]
        assert!(wrapped_subtype(&s, &nn(pizza), &list(food)));
        // Rules 4 with inner non-null: [Pizza!] ⊑ [Food]
        assert!(wrapped_subtype(&s, &list_nn_inner(pizza), &list(food)));
        // [Pizza!]! ⊑ [Food!]! via rules 7 + 4 + 7.
        assert!(wrapped_subtype(
            &s,
            &WrappedType::list(pizza, true, true),
            &WrappedType::list(food, true, true)
        ));
    }

    #[test]
    fn non_derivable_judgements_fail() {
        let s = schema();
        let pizza = s.type_id("Pizza").unwrap();
        let food = s.type_id("Food").unwrap();
        // No rule introduces `!` on the right from a plain left.
        assert!(!wrapped_subtype(
            &s,
            &WrappedType::bare(pizza),
            &WrappedType::non_null(food)
        ));
        // [Pizza] ⊑ [Food]! needs a non-null left.
        assert!(!wrapped_subtype(
            &s,
            &WrappedType::list(pizza, false, false),
            &WrappedType::list(food, false, true)
        ));
        // Lists never subsume named types.
        assert!(!wrapped_subtype(
            &s,
            &WrappedType::list(pizza, false, false),
            &WrappedType::bare(food)
        ));
        // [Food] ⊑ [Pizza] is not derivable (no contravariance).
        assert!(!wrapped_subtype(
            &s,
            &WrappedType::list(food, false, false),
            &WrappedType::list(pizza, false, false)
        ));
        // Inner nullability mismatch: [Pizza] ⊑ [Food!] fails because
        // Pizza ⊑ Food! is not derivable.
        assert!(!wrapped_subtype(
            &s,
            &WrappedType::list(pizza, false, false),
            &WrappedType::list(food, true, false)
        ));
    }

    #[test]
    fn outer_non_null_list_drops_on_left() {
        let s = schema();
        let pizza = s.type_id("Pizza").unwrap();
        let food = s.type_id("Food").unwrap();
        // [Pizza]! ⊑ [Food] via rule 6 then rule 4.
        assert!(wrapped_subtype(
            &s,
            &WrappedType::list(pizza, false, true),
            &WrappedType::list(food, false, false)
        ));
    }
}
