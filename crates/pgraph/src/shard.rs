//! Read-only shard views over a [`PropertyGraph`].
//!
//! A [`GraphShards`] partitions the node and edge id spaces into `k`
//! contiguous raw-index ranges. Each [`GraphShard`] is a cheap view
//! (`Copy`-sized: a reference plus two ranges) that iterates only the
//! live elements of its slice, so `k` workers can scan disjoint parts of
//! one shared graph without any synchronisation — the graph is borrowed
//! immutably for the lifetime of the shards.
//!
//! Contiguous ranges (rather than `id % k` striping) keep each worker's
//! memory accesses sequential over the underlying element tables. With
//! tombstones present the *live* populations of equal-width ranges can
//! differ; [`GraphShard::node_count`]/[`GraphShard::edge_count`] expose
//! the real per-shard populations so callers can report skew.

use std::ops::Range;

use crate::graph::{EdgeRef, NodeRef};
use crate::{EdgeId, NodeId, PropertyGraph};

/// A partition of one graph's id spaces into `k` contiguous slices.
#[derive(Debug, Clone)]
pub struct GraphShards<'g> {
    graph: &'g PropertyGraph,
    node_ranges: Vec<Range<usize>>,
    edge_ranges: Vec<Range<usize>>,
}

/// Splits `0..bound` into `k` near-equal contiguous ranges (the first
/// `bound % k` ranges are one longer). Always returns exactly `k` ranges;
/// trailing ones are empty when `bound < k`.
fn even_ranges(bound: usize, k: usize) -> Vec<Range<usize>> {
    assert!(k > 0, "shard count must be positive");
    let base = bound / k;
    let extra = bound % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

impl<'g> GraphShards<'g> {
    /// Partitions `graph` into `k` shards (`k >= 1`).
    pub fn new(graph: &'g PropertyGraph, k: usize) -> Self {
        GraphShards {
            graph,
            node_ranges: even_ranges(graph.node_index_bound(), k),
            edge_ranges: even_ranges(graph.edge_index_bound(), k),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.node_ranges.len()
    }

    /// True when there are no shards (never: `k >= 1`). Exists for
    /// clippy's `len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        self.node_ranges.is_empty()
    }

    /// The `i`-th shard view.
    pub fn shard(&self, i: usize) -> GraphShard<'g> {
        GraphShard {
            graph: self.graph,
            index: i,
            nodes: self.node_ranges[i].clone(),
            edges: self.edge_ranges[i].clone(),
        }
    }

    /// All shard views in order.
    pub fn iter(&self) -> impl Iterator<Item = GraphShard<'g>> + '_ {
        (0..self.len()).map(|i| self.shard(i))
    }
}

/// One contiguous slice of a graph's node and edge id spaces.
#[derive(Debug, Clone)]
pub struct GraphShard<'g> {
    graph: &'g PropertyGraph,
    index: usize,
    nodes: Range<usize>,
    edges: Range<usize>,
}

impl<'g> GraphShard<'g> {
    /// This shard's position within its partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g PropertyGraph {
        self.graph
    }

    /// Live nodes whose raw index falls in this shard.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef<'g>> + '_ {
        let g = self.graph;
        self.nodes
            .clone()
            .filter_map(move |ix| g.node(NodeId::from_index(ix)))
    }

    /// Live edges whose raw index falls in this shard.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'g>> + '_ {
        let g = self.graph;
        self.edges
            .clone()
            .filter_map(move |ix| g.edge(EdgeId::from_index(ix)))
    }

    /// The raw node-index range this shard covers (tombstones included).
    /// Columnar planners use this to scan the same slice of a frozen
    /// [`crate::ColumnarGraph`] the shard owns.
    pub fn node_range(&self) -> Range<usize> {
        self.nodes.clone()
    }

    /// The raw edge-index range this shard covers.
    pub fn edge_range(&self) -> Range<usize> {
        self.edges.clone()
    }

    /// True iff this shard owns the node id (live or not). Group-keyed
    /// work (e.g. "all out-edges of v") is assigned to the shard owning
    /// the key node, so each group is processed exactly once.
    pub fn owns_node(&self, id: NodeId) -> bool {
        self.nodes.contains(&id.index())
    }

    /// True iff this shard owns the edge id (live or not).
    pub fn owns_edge(&self, id: EdgeId) -> bool {
        self.edges.contains(&id.index())
    }

    /// Number of live nodes in this shard (walks the slice).
    pub fn node_count(&self) -> usize {
        self.nodes().count()
    }

    /// Number of live edges in this shard (walks the slice).
    pub fn edge_count(&self) -> usize {
        self.edges().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("T{}", i % 3))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], "next").unwrap();
        }
        g
    }

    #[test]
    fn even_ranges_cover_and_balance() {
        for (bound, k) in [(10, 3), (0, 4), (7, 7), (3, 8), (100, 1)] {
            let ranges = even_ranges(bound, k);
            assert_eq!(ranges.len(), k);
            assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), bound);
            // Contiguous and ordered.
            let mut pos = 0;
            for r in &ranges {
                assert_eq!(r.start, pos);
                pos = r.end;
            }
            // Balanced within one element.
            let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(hi - lo <= 1, "{lens:?}");
        }
    }

    #[test]
    fn shards_partition_nodes_and_edges() {
        let g = sample(23);
        for k in [1, 2, 5, 64] {
            let shards = GraphShards::new(&g, k);
            let nodes: usize = shards.iter().map(|s| s.node_count()).sum();
            let edges: usize = shards.iter().map(|s| s.edge_count()).sum();
            assert_eq!(nodes, g.node_count());
            assert_eq!(edges, g.edge_count());
            // Every node is owned by exactly one shard.
            for id in g.node_ids() {
                assert_eq!(shards.iter().filter(|s| s.owns_node(id)).count(), 1);
            }
        }
    }

    #[test]
    fn shards_skip_tombstones() {
        let mut g = sample(10);
        let victim = g.node_ids().nth(4).unwrap();
        let _ = g.remove_node(victim);
        let shards = GraphShards::new(&g, 3);
        let seen: Vec<NodeId> = shards
            .iter()
            .flat_map(|s| s.nodes().map(|n| n.id).collect::<Vec<_>>())
            .collect();
        assert_eq!(seen.len(), g.node_count());
        assert!(!seen.contains(&victim));
        // Ownership still covers the tombstoned id (exactly one shard).
        assert_eq!(shards.iter().filter(|s| s.owns_node(victim)).count(), 1);
    }
}
