//! The daemon itself: listener, worker pool, routing and request
//! logging. See the crate docs for the architecture overview and the
//! route table.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pg_schema::{validate, Engine, PgSchema, ValidationOptions};
use pgraph::json::{self, Json};

use crate::http::{self, push_json_string, ReadOutcome, Request, Response};
use crate::metrics::Metrics;
use crate::pool::BoundedQueue;
use crate::registry::SessionRegistry;

/// How workers poll the shutdown flag while waiting on an idle
/// keep-alive connection, and how the accept loop sleeps when idle.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Shape of the per-request log lines (`--log-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `method=… path=… status=… micros=… engine=…` key-value text.
    #[default]
    Text,
    /// One JSON object per line.
    Json,
    /// No request logging (load-test runs).
    Off,
}

impl LogFormat {
    /// Parses the `--log-format` flag value.
    pub fn from_name(name: &str) -> Option<LogFormat> {
        match name {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            "off" => Some(LogFormat::Off),
            _ => None,
        }
    }
}

/// Daemon configuration (the `serve` subcommand's flags).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Accept-queue capacity; connections beyond it are shed with `503`.
    pub queue_depth: usize,
    /// Request-log shape.
    pub log_format: LogFormat,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_owned(),
            threads: 8,
            queue_depth: 64,
            log_format: LogFormat::Text,
        }
    }
}

/// Shared state every worker sees.
struct Ctx {
    metrics: Metrics,
    registry: SessionRegistry,
    queue: BoundedQueue<TcpStream>,
    log_format: LogFormat,
}

/// A bound, not-yet-running daemon. [`bind`](Server::bind) first, read
/// [`local_addr`](Server::local_addr) (tests bind port 0), then
/// [`run`](Server::run) until the shutdown flag flips.
pub struct Server {
    listener: TcpListener,
    threads: usize,
    ctx: Ctx,
}

impl Server {
    /// Binds the listener. The listener is switched to nonblocking so
    /// the accept loop can interleave accepts with shutdown polling —
    /// glibc installs SA_RESTART handlers, so a blocking `accept(2)`
    /// would sleep straight through SIGTERM.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            threads: config.threads.max(1),
            ctx: Ctx {
                metrics: Metrics::new(),
                registry: SessionRegistry::new(),
                queue: BoundedQueue::new(config.queue_depth),
                log_format: config.log_format,
            },
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` becomes true, then drains: the accept
    /// loop stops, queued connections are still served, and each worker
    /// finishes its in-flight request before exiting. Returns once every
    /// worker has exited.
    pub fn run(self, shutdown: &AtomicBool) -> io::Result<()> {
        let ctx = &self.ctx;
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(move || {
                    while let Some(stream) = ctx.queue.pop() {
                        serve_connection(ctx, stream, shutdown);
                    }
                });
            }

            while !shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Err(stream) = ctx.queue.try_push(stream) {
                            shed(ctx, stream);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            // Drain: no new connections, wake idle workers, serve what
            // is queued, exit.
            ctx.queue.close();
        });
        Ok(())
    }
}

/// Answers a connection the queue has no room for: `503` with a
/// `Retry-After` hint, written from the accept thread, then close.
fn shed(ctx: &Ctx, mut stream: TcpStream) {
    ctx.metrics.record_shed();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let response =
        Response::error(503, "accept queue full, retry shortly").with_header("retry-after", "1");
    let _ = response.write_to(&mut stream, true);
    ctx.metrics.record_request("(shed)", 503, 0);
    log_request(ctx.log_format, "-", "(shed)", 503, 0, None);
}

/// One worker's keep-alive loop over a single connection.
fn serve_connection(ctx: &Ctx, mut stream: TcpStream, shutdown: &AtomicBool) {
    if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    // The read timeout is the worker's shutdown poll: an idle keep-alive
    // connection wakes every tick to check the flag.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut buf = Vec::new();
    loop {
        match http::read_request(&mut stream, &mut buf) {
            Ok(ReadOutcome::Request(request)) => {
                let started = Instant::now();
                let handled = route(ctx, &request);
                let close = request.wants_close() || shutdown.load(Ordering::Relaxed);
                let write_ok = handled.response.write_to(&mut stream, close).is_ok();
                let micros = started.elapsed().as_micros() as u64;
                ctx.metrics
                    .record_request(handled.route, handled.response.status, micros);
                log_request(
                    ctx.log_format,
                    &request.method,
                    &request.path,
                    handled.response.status,
                    micros,
                    handled.engine,
                );
                if close || !write_ok {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::TimedOut) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let response = Response::error(400, &e.to_string());
                let _ = response.write_to(&mut stream, true);
                ctx.metrics.record_request("(bad-request)", 400, 0);
                log_request(ctx.log_format, "-", "(bad-request)", 400, 0, None);
                return;
            }
            Err(_) => return,
        }
    }
}

/// A routed response plus its labels for metrics and the request log.
struct Handled {
    route: &'static str,
    response: Response,
    engine: Option<&'static str>,
}

impl Handled {
    fn plain(route: &'static str, response: Response) -> Handled {
        Handled {
            route,
            response,
            engine: None,
        }
    }
}

fn route(ctx: &Ctx, request: &Request) -> Handled {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => Handled::plain("/healthz", Response::text(200, "ok\n")),
        ("GET", "/metrics") => Handled::plain(
            "/metrics",
            Response::text(
                200,
                ctx.metrics.render(ctx.queue.depth(), ctx.registry.len()),
            ),
        ),
        ("POST", "/validate") => handle_validate(ctx, request),
        ("POST", "/sessions") => handle_create_session(ctx, request),
        (_, "/healthz" | "/metrics" | "/validate" | "/sessions") => Handled::plain(
            path_template(path),
            Response::error(405, "method not allowed"),
        ),
        _ => match parse_session_path(path) {
            Some((id, tail)) => route_session(ctx, request, id, tail),
            None => Handled::plain("(unknown)", Response::error(404, "no such route")),
        },
    }
}

fn path_template(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/validate" => "/validate",
        "/sessions" => "/sessions",
        _ => "(unknown)",
    }
}

/// Splits `/sessions/{id}` or `/sessions/{id}/{tail}`.
fn parse_session_path(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/sessions/")?;
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    Some((id.parse().ok()?, tail))
}

fn route_session(ctx: &Ctx, request: &Request, id: u64, tail: &str) -> Handled {
    match (request.method.as_str(), tail) {
        ("POST", "deltas") => handle_delta(ctx, request, id),
        ("GET", "report") => handle_report(ctx, id),
        ("GET", "graph") => handle_graph(ctx, id),
        ("DELETE", "") => Handled::plain(
            "/sessions/{id}",
            if ctx.registry.remove(id) {
                Response::json(200, "{\"deleted\":true}")
            } else {
                Response::error(404, "no such session")
            },
        ),
        ("POST" | "GET" | "DELETE", "deltas" | "report" | "graph" | "") => {
            Handled::plain("(unknown)", Response::error(405, "method not allowed"))
        }
        _ => Handled::plain("(unknown)", Response::error(404, "no such route")),
    }
}

/// Decodes the `{"schema": <sdl string>, "graph": <graph document>}`
/// envelope shared by `POST /validate` and `POST /sessions`.
fn parse_envelope(body: &[u8]) -> Result<(PgSchema, pgraph::PropertyGraph), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let sdl = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field \"schema\"".to_owned())?;
    let schema = PgSchema::parse(sdl).map_err(|e| format!("schema: {e}"))?;
    let graph_value = doc
        .get("graph")
        .ok_or_else(|| "missing field \"graph\"".to_owned())?;
    let graph = json::graph_from_value(graph_value).map_err(|e| format!("graph: {e}"))?;
    Ok((schema, graph))
}

fn handle_validate(ctx: &Ctx, request: &Request) -> Handled {
    let engine = match request.query_param("engine") {
        None => Engine::Indexed,
        Some(name) => match Engine::from_name(name) {
            Some(engine) => engine,
            None => {
                return Handled::plain(
                    "/validate",
                    Response::error(400, &format!("unknown engine {name:?}")),
                )
            }
        },
    };
    let (schema, graph) = match parse_envelope(&request.body) {
        Ok(parts) => parts,
        Err(message) => return Handled::plain("/validate", Response::error(400, &message)),
    };
    let options = ValidationOptions::builder()
        .engine(engine)
        .collect_metrics(true)
        .build();
    let report = validate(&graph, &schema, &options);
    ctx.metrics.record_validation(engine, report.metrics());
    Handled {
        route: "/validate",
        response: Response::json(200, report.to_json()),
        engine: Some(engine.name()),
    }
}

fn handle_create_session(ctx: &Ctx, request: &Request) -> Handled {
    let (schema, graph) = match parse_envelope(&request.body) {
        Ok(parts) => parts,
        Err(message) => return Handled::plain("/sessions", Response::error(400, &message)),
    };
    let options = ValidationOptions::builder().collect_metrics(true).build();
    let id = ctx.registry.create(graph, Arc::new(schema), &options);
    let session = ctx.registry.get(id).expect("session just created");
    let report = session.lock().unwrap().engine.report();
    ctx.metrics
        .record_validation(Engine::Incremental, report.metrics());
    let body = format!("{{\"session\":{},\"report\":{}}}", id, report.to_json());
    Handled {
        route: "/sessions",
        response: Response::json(201, body),
        engine: Some("incremental"),
    }
}

fn handle_delta(ctx: &Ctx, request: &Request, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/deltas";
    let delta = match std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_owned())
        .and_then(|text| json::delta_from_json(text).map_err(|e| e.to_string()))
    {
        Ok(delta) => delta,
        Err(message) => return Handled::plain(ROUTE, Response::error(400, &message)),
    };
    let session = match ctx.registry.get(id) {
        Some(session) => session,
        None => return Handled::plain(ROUTE, Response::error(404, "no such session")),
    };
    let mut session = session.lock().unwrap();
    match session.engine.apply(&delta) {
        Ok(outcome) => {
            session.deltas_applied += 1;
            let report = session.engine.report();
            let deltas_applied = session.deltas_applied;
            drop(session);
            ctx.metrics
                .record_validation(Engine::Incremental, report.metrics());
            let body = format!(
                "{{\"outcome\":{{\"elements_rechecked\":{},\"elements_total\":{},\
                 \"violations_added\":{},\"violations_removed\":{}}},\
                 \"deltas_applied\":{},\"report\":{}}}",
                outcome.elements_rechecked,
                outcome.elements_total,
                outcome.violations_added,
                outcome.violations_removed,
                deltas_applied,
                report.to_json()
            );
            Handled {
                route: ROUTE,
                response: Response::json(200, body),
                engine: Some("incremental"),
            }
        }
        // The delta named elements the session's graph does not have:
        // the state is untouched (the engine reseeds), report the
        // conflict to the client.
        Err(e) => Handled::plain(ROUTE, Response::error(409, &e.to_string())),
    }
}

fn handle_report(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/report";
    match ctx.registry.get(id) {
        Some(session) => {
            let report = session.lock().unwrap().engine.report();
            Handled {
                route: ROUTE,
                response: Response::json(200, report.to_json()),
                engine: Some("incremental"),
            }
        }
        None => Handled::plain(ROUTE, Response::error(404, "no such session")),
    }
}

fn handle_graph(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/graph";
    match ctx.registry.get(id) {
        Some(session) => {
            let body = json::to_json(session.lock().unwrap().engine.graph());
            Handled::plain(ROUTE, Response::json(200, body))
        }
        None => Handled::plain(ROUTE, Response::error(404, "no such session")),
    }
}

/// Writes the one-line request log to stderr.
fn log_request(
    format: LogFormat,
    method: &str,
    path: &str,
    status: u16,
    micros: u64,
    engine: Option<&'static str>,
) {
    let line = match format {
        LogFormat::Off => return,
        LogFormat::Text => format!(
            "method={method} path={path} status={status} micros={micros} engine={}",
            engine.unwrap_or("-")
        ),
        LogFormat::Json => {
            let mut line = String::with_capacity(96);
            line.push_str("{\"method\":");
            push_json_string(&mut line, method);
            line.push_str(",\"path\":");
            push_json_string(&mut line, path);
            line.push_str(&format!(
                ",\"status\":{status},\"micros\":{micros},\"engine\":"
            ));
            match engine {
                Some(engine) => push_json_string(&mut line, engine),
                None => line.push_str("null"),
            }
            line.push('}');
            line
        }
    };
    let stderr = io::stderr();
    let mut out = stderr.lock();
    let _ = writeln!(out, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_paths_parse() {
        assert_eq!(
            parse_session_path("/sessions/7/deltas"),
            Some((7, "deltas"))
        );
        assert_eq!(parse_session_path("/sessions/12"), Some((12, "")));
        assert_eq!(parse_session_path("/sessions/x/report"), None);
        assert_eq!(parse_session_path("/metrics"), None);
    }

    #[test]
    fn log_formats_parse() {
        assert_eq!(LogFormat::from_name("text"), Some(LogFormat::Text));
        assert_eq!(LogFormat::from_name("json"), Some(LogFormat::Json));
        assert_eq!(LogFormat::from_name("off"), Some(LogFormat::Off));
        assert_eq!(LogFormat::from_name("xml"), None);
    }
}
