//! # pg-schema — GraphQL SDL schemas for Property Graphs
//!
//! The primary contribution of Hartig & Hidders: interpreting a GraphQL
//! schema as a schema *for Property Graphs* and deciding whether a graph
//! satisfies it.
//!
//! The semantics (paper §5) is split into three nested notions, all
//! implemented here rule-by-rule:
//!
//! * **weak satisfaction** — rules [`Rule::WS1`]–[`Rule::WS4`]: typed
//!   node/edge properties, typed edge targets, at-most-one edge for
//!   non-list relationship fields;
//! * **directives satisfaction** — rules [`Rule::DS1`]–[`Rule::DS7`]:
//!   `@distinct`, `@noLoops`, `@uniqueForTarget`, `@requiredForTarget`,
//!   `@required` (for properties and for edges), and `@key`;
//! * **strong satisfaction** — rules [`Rule::SS1`]–[`Rule::SS4`]: every
//!   node, property and edge must be *justified* by a schema element.
//!
//! Two interchangeable engines decide the same relation:
//!
//! * [`Engine::Naive`] transcribes the paper's first-order formulas
//!   directly (nested loops; the `O(n²)`–`O(n³)` algorithm discussed after
//!   Theorem 1), and
//! * [`Engine::Indexed`] is the production engine: one `O(|V| + |E|)`
//!   indexing pass plus hash-group checks, near-linear in practice.
//!
//! Engine agreement is property-tested; benchmark E2 in EXPERIMENTS.md
//! measures the separation.
//!
//! ```
//! use pg_schema::{PgSchema, validate, ValidationOptions};
//! use pgraph::GraphBuilder;
//!
//! let doc = gql_sdl::parse(r#"
//!     type User { id: ID! @required login: String! @required }
//! "#).unwrap();
//! let schema = PgSchema::from_document(&doc).unwrap();
//! let graph = GraphBuilder::new()
//!     .node("u", "User")
//!     .prop("u", "id", "u-1")
//!     .prop("u", "login", "alice")
//!     .build()
//!     .unwrap();
//! let report = validate(&graph, &schema, &ValidationOptions::default());
//! assert!(report.conforms());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api_extension;
pub mod diff;
mod indexed;
mod naive;
mod pgschema;
pub mod report;

pub use pgschema::{
    AttributeDef, ConstraintSite, FieldClass, KeyConstraint, PgSchema, PgSchemaError,
    RelationshipDef,
};
pub use report::{Rule, RuleFamily, ValidationReport, Violation};

/// Which implementation decides satisfaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Direct transcription of the paper's first-order rules
    /// (quadratic/cubic nested loops). Reference implementation.
    Naive,
    /// Index-assisted engine (near-linear). Default.
    #[default]
    Indexed,
}

/// Which rule families to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationOptions {
    /// The engine to use.
    pub engine: Engine,
    /// Check weak satisfaction (WS1–WS4). Default true.
    pub weak: bool,
    /// Check directive satisfaction (DS1–DS7). Default true.
    pub directives: bool,
    /// Check strong satisfaction (SS1–SS4). Default true.
    pub strong: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            engine: Engine::Indexed,
            weak: true,
            directives: true,
            strong: true,
        }
    }
}

impl ValidationOptions {
    /// All rule families with the given engine.
    pub fn with_engine(engine: Engine) -> Self {
        ValidationOptions {
            engine,
            ..Default::default()
        }
    }

    /// Only weak satisfaction (Definition 5.1).
    pub fn weak_only() -> Self {
        ValidationOptions {
            weak: true,
            directives: false,
            strong: false,
            ..Default::default()
        }
    }
}

/// Validates `graph` against `schema` — the Schema Validation Problem of
/// §6.1 ("Does G strongly satisfy S?"), with per-rule violation reporting.
pub fn validate(
    graph: &pgraph::PropertyGraph,
    schema: &PgSchema,
    options: &ValidationOptions,
) -> ValidationReport {
    let mut report = match options.engine {
        Engine::Naive => naive::run(graph, schema, options),
        Engine::Indexed => indexed::run(graph, schema, options),
    };
    report.canonicalize();
    report
}

/// Convenience: true iff `graph` strongly satisfies `schema`
/// (Definition 5.3).
pub fn strongly_satisfies(graph: &pgraph::PropertyGraph, schema: &PgSchema) -> bool {
    validate(graph, schema, &ValidationOptions::default()).conforms()
}
