//! The normative wire constants of the pg-store log format.
//!
//! Replication ships WAL frames byte-for-byte (`docs/replication.md` is
//! the protocol spec; its frame-layout tables are checked against these
//! constants by `tests/spec_parity.rs`). Everything a second
//! implementation needs to frame, checksum and name the files lives
//! here; the codec itself is in [`crate::StoreRecord`]'s module.
//!
//! A WAL frame is laid out as
//!
//! ```text
//! offset  size  field
//! 0       4     payload_len   u32 LE, length of payload in bytes
//! 4       4     crc32         u32 LE, CRC-32 (IEEE) over the payload
//! 8       8     seq           u64 LE, strictly monotonic sequence number
//! 16      1     kind          u8: 1 Create, 2 Delta, 3 Delete, 4 SchemaChange
//! 17      …     body          kind-specific, `pgraph::binary` codec
//! ```
//!
//! (`seq` onwards *is* the payload: `payload_len` counts from offset 8.)

/// Size of the frame header (`payload_len` + `crc32`), in bytes.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Byte offset of the `payload_len` field within a frame.
pub const FRAME_LEN_OFFSET: usize = 0;

/// Size of the `payload_len` field (`u32` little-endian).
pub const FRAME_LEN_BYTES: usize = 4;

/// Byte offset of the `crc32` field within a frame.
pub const FRAME_CRC_OFFSET: usize = 4;

/// Size of the `crc32` field (`u32` little-endian, CRC-32/IEEE over the
/// whole payload).
pub const FRAME_CRC_BYTES: usize = 4;

/// Byte offset of the `seq` field within a frame (the payload starts
/// here; the CRC covers everything from this offset on).
pub const FRAME_SEQ_OFFSET: usize = 8;

/// Size of the `seq` field (`u64` little-endian).
pub const FRAME_SEQ_BYTES: usize = 8;

/// Byte offset of the `kind` byte within a frame.
pub const FRAME_KIND_OFFSET: usize = 16;

/// Size of the `kind` field.
pub const FRAME_KIND_BYTES: usize = 1;

/// Byte offset of the kind-specific body within a frame.
pub const FRAME_BODY_OFFSET: usize = 17;

/// Smallest legal payload: `seq` + `kind` with an empty body. A frame
/// declaring less is corrupt.
pub const MIN_PAYLOAD_BYTES: usize = 9;

/// Largest legal payload (64 MiB, matching the HTTP body cap upstream).
/// A `payload_len` beyond this is treated as corruption, not as an
/// allocation request.
pub const MAX_PAYLOAD_BYTES: usize = 64 << 20;

/// `kind` byte of a `Create` record (session id, schema SDL, initial
/// graph).
pub const KIND_CREATE: u8 = 1;

/// `kind` byte of a `Delta` record (session id, mutation log).
pub const KIND_DELTA: u8 = 2;

/// `kind` byte of a `Delete` record (session id only; the body is
/// empty).
pub const KIND_DELETE: u8 = 3;

/// `kind` byte of a `SchemaChange` record (session id, migration phase,
/// new schema SDL — non-empty only for the begin phase).
pub const KIND_SCHEMA: u8 = 4;

/// Any `kind` byte above this is unknown to this implementation: readers
/// must refuse it with an explicit "unknown record kind" error rather
/// than misclassify the (CRC-valid) frame as corruption.
pub const KIND_MAX: u8 = KIND_SCHEMA;

/// Magic bytes opening a legacy (v1) snapshot payload: sessions carry
/// their graphs as `pgraph::binary` element streams, decoded eagerly.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PGS1";

/// Magic bytes opening a current (v2) snapshot payload: sessions embed
/// their graphs as verbatim `PGCS` columnar images
/// ([`pgraph::snapshot`]), each 8-byte aligned *in the file* so a
/// memory-mapped snapshot hands out aligned zero-copy graph views.
pub const SNAPSHOT_MAGIC_V2: [u8; 4] = *b"PGS2";

/// File-offset alignment of every embedded `PGCS` graph image inside a
/// v2 snapshot. Because the CRC frame header is itself 8 bytes
/// ([`FRAME_HEADER_BYTES`]), payload-relative and file-relative
/// alignment coincide.
pub const SNAPSHOT_GRAPH_ALIGN: usize = 8;

/// Magic bytes opening an embedded columnar graph image (re-exported
/// from the graph crate so the spec-parity tests can check the snapshot
/// table against one source of truth).
pub const PGCS_MAGIC: [u8; 4] = pgraph::snapshot::MAGIC;

/// Version of the embedded columnar graph format this build writes.
pub const PGCS_VERSION: u32 = pgraph::snapshot::VERSION;

/// Length of a `PGCS` graph header in bytes.
pub const PGCS_HEADER_LEN: usize = pgraph::snapshot::HEADER_LEN;

/// Number of sections in a `PGCS` graph image.
pub const PGCS_SECTION_COUNT: usize = pgraph::snapshot::SECTION_COUNT;

/// WAL segment file names: `wal-{first_seq:020}.log`, zero-padded so
/// lexicographic order equals replay order.
pub const SEGMENT_PREFIX: &str = "wal-";

/// WAL segment file suffix.
pub const SEGMENT_SUFFIX: &str = ".log";

/// Digits in a zero-padded segment sequence number.
pub const SEGMENT_SEQ_DIGITS: usize = 20;

/// Snapshot file names: `snapshot-{generation:06}.snap`.
pub const SNAPSHOT_PREFIX: &str = "snapshot-";

/// Snapshot file suffix.
pub const SNAPSHOT_SUFFIX: &str = ".snap";

/// Digits in a zero-padded snapshot generation.
pub const SNAPSHOT_GENERATION_DIGITS: usize = 6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous() {
        assert_eq!(FRAME_LEN_OFFSET + FRAME_LEN_BYTES, FRAME_CRC_OFFSET);
        assert_eq!(FRAME_CRC_OFFSET + FRAME_CRC_BYTES, FRAME_SEQ_OFFSET);
        assert_eq!(FRAME_SEQ_OFFSET, FRAME_HEADER_BYTES);
        assert_eq!(FRAME_SEQ_OFFSET + FRAME_SEQ_BYTES, FRAME_KIND_OFFSET);
        assert_eq!(FRAME_KIND_OFFSET + FRAME_KIND_BYTES, FRAME_BODY_OFFSET);
        assert_eq!(
            MIN_PAYLOAD_BYTES,
            FRAME_SEQ_BYTES + FRAME_KIND_BYTES,
            "minimum payload is seq + kind"
        );
    }
}
