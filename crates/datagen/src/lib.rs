//! # pg-datagen — workload generation
//!
//! Drives the benchmarks and the property-based tests:
//!
//! * [`SchemaGen`] draws random but *consistent* SDL schemas with
//!   controllable size and directive density;
//! * [`GraphGen`] draws Property Graphs that **strongly satisfy** a given
//!   schema (the generator mirrors the validator's rules constructively);
//! * [`inject()`] mutates a conforming graph so that it violates exactly
//!   one chosen rule — the detection-matrix experiment (E10) checks that
//!   precisely that rule fires;
//! * [`DeltaGen`] draws conflict-free random [`pgraph::GraphDelta`]s
//!   against a live graph — the mutation workload behind the
//!   incremental-revalidation benchmark (E2i) and the four-way
//!   engine-agreement property test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deltagen;
pub mod graphgen;
pub mod inject;
pub mod schemagen;

pub use deltagen::{DeltaGen, DeltaGenParams};
pub use graphgen::{GraphGen, GraphGenParams};
#[doc(inline)]
pub use inject::{inject, Defect};
pub use schemagen::{SchemaGen, SchemaGenParams};
