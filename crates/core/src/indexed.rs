//! The indexed validation engine.
//!
//! One `O(|V| + |E|)` pass builds a [`GraphIndex`] (label index, adjacency
//! grouped by edge label, parallel-edge groups); every rule then reduces
//! to hash-group lookups:
//!
//! * WS1/WS2/SS1–SS3 are single scans over properties,
//! * WS3/SS4 are single scans over edges,
//! * WS4/DS1/DS3 read the precomputed `(source, label)` / `(source,
//!   label, target)` / `(target, label)` groups,
//! * DS4–DS6 scan label buckets of the node-label index,
//! * DS7 builds one hash map from key tuples to nodes per `@key`.
//!
//! The result is near-linear in `|V| + |E|` for a fixed schema — the
//! practical counterpart of the paper's AC0/`O(n²)` analysis — and is
//! property-tested to agree violation-for-violation with the naive
//! engine.

use std::collections::HashMap;

use pgraph::index::GraphIndex;
use pgraph::{NodeId, PropertyGraph, Value};

use crate::pgschema::PgSchema;
use crate::report::{ValidationReport, Violation};
use crate::ValidationOptions;

pub(crate) fn run(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
) -> ValidationReport {
    let mut r = ValidationReport::default();
    let ix = GraphIndex::build(g);
    // Labels actually present, with their subtype relationships to the
    // schema's constraint sites resolved once.
    let labels: Vec<String> = ix.node_labels().map(str::to_owned).collect();

    if options.weak || options.strong {
        scan_node_properties(g, s, options, &mut r);
        scan_edges(g, s, options, &mut r);
    }
    if options.weak {
        ws4(g, s, &ix, &mut r);
    }
    if options.directives {
        ds1(g, s, &ix, &mut r);
        ds2(g, s, &mut r);
        ds3(g, s, &ix, &mut r);
        ds4(g, s, &ix, &labels, &mut r);
        ds5(g, s, &ix, &labels, &mut r);
        ds6(g, s, &ix, &labels, &mut r);
        ds7(g, s, &ix, &labels, &mut r);
    }
    if options.strong {
        ss1(g, s, &mut r);
    }
    r
}

/// WS1 + SS2 in one property scan.
fn scan_node_properties(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
    r: &mut ValidationReport,
) {
    for n in g.nodes() {
        for (prop, value) in n.properties() {
            match s.attribute(n.label(), prop) {
                Some(attr) => {
                    if options.weak && !s.schema().value_conforms(value, &attr.ty) {
                        r.push(Violation::NodePropertyType {
                            node: n.id,
                            field: prop.to_owned(),
                            value: value.to_string(),
                            expected: s.display_type(&attr.ty),
                        });
                    }
                }
                None => {
                    if options.strong {
                        r.push(Violation::UnjustifiedNodeProperty {
                            node: n.id,
                            prop: prop.to_owned(),
                        });
                    }
                }
            }
        }
    }
}

/// WS2 + WS3 + SS3 + SS4 in one edge scan.
fn scan_edges(
    g: &PropertyGraph,
    s: &PgSchema,
    options: &ValidationOptions,
    r: &mut ValidationReport,
) {
    for e in g.edges() {
        let src_label = g.node_label(e.source()).unwrap_or("");
        let rel = s.relationship(src_label, e.label());
        if options.strong {
            if rel.is_none() {
                r.push(Violation::UnjustifiedEdge {
                    edge: e.id,
                    label: e.label().to_owned(),
                    source_label: src_label.to_owned(),
                });
            }
            for (prop, _) in e.properties() {
                let justified =
                    rel.is_some_and(|rd| rd.edge_props.iter().any(|p| p.name == prop));
                if !justified {
                    r.push(Violation::UnjustifiedEdgeProperty {
                        edge: e.id,
                        prop: prop.to_owned(),
                    });
                }
            }
        }
        if !options.weak {
            continue;
        }
        // WS2: typed edge properties (relationship fields only; attribute
        // field arguments are ignored per §3.6).
        if let Some(rel) = rel {
            for (prop, value) in e.properties() {
                if let Some(ep) = rel.edge_props.iter().find(|p| p.name == prop) {
                    if !s.schema().value_conforms(value, &ep.ty) {
                        r.push(Violation::EdgePropertyType {
                            edge: e.id,
                            prop: prop.to_owned(),
                            value: value.to_string(),
                            expected: s.display_type(&ep.ty),
                        });
                    }
                }
            }
        }
        // WS3: over *all* field definitions of the source type.
        if let Some(src_ty) = s.label_type(src_label) {
            if let Some(field) = s.schema().field(src_ty, e.label()) {
                let target_label = g.node_label(e.target()).unwrap_or("");
                if !s.label_subtype(target_label, field.ty.base) {
                    r.push(Violation::EdgeTargetType {
                        edge: e.id,
                        target: e.target(),
                        target_label: target_label.to_owned(),
                        expected: s.schema().type_name(field.ty.base).to_owned(),
                    });
                }
            }
        }
    }
}

/// WS4 via the `(source, label)` out-groups.
fn ws4(g: &PropertyGraph, s: &PgSchema, ix: &GraphIndex, r: &mut ValidationReport) {
    for (source, label, edges) in ix.out_groups() {
        if edges.len() < 2 {
            continue;
        }
        let Some(src_label) = g.node_label(source) else {
            continue;
        };
        let Some(src_ty) = s.label_type(src_label) else {
            continue;
        };
        let Some(field) = s.schema().field(src_ty, label) else {
            continue;
        };
        if !field.ty.is_list() {
            r.push(Violation::NonListFieldMultiEdge {
                source,
                field: label.to_owned(),
                count: edges.len(),
            });
        }
    }
}

/// DS1 via the parallel-edge groups.
fn ds1(g: &PropertyGraph, s: &PgSchema, ix: &GraphIndex, r: &mut ValidationReport) {
    for site in s.constraint_sites() {
        if !site.rel.distinct {
            continue;
        }
        for (src, label, dst, edges) in ix.parallel_groups() {
            if label != site.rel.name || edges.len() < 2 {
                continue;
            }
            if s.label_subtype(g.node_label(src).unwrap_or(""), site.site) {
                r.push(Violation::DistinctViolated {
                    source: src,
                    target: dst,
                    field: label.to_owned(),
                    count: edges.len(),
                });
            }
        }
    }
}

/// DS2 via one edge scan per site.
fn ds2(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    let loop_sites: Vec<_> = s
        .constraint_sites()
        .iter()
        .filter(|site| site.rel.no_loops)
        .collect();
    if loop_sites.is_empty() {
        return;
    }
    for e in g.edges() {
        if e.source() != e.target() {
            continue;
        }
        for site in &loop_sites {
            if e.label() == site.rel.name
                && s.label_subtype(g.node_label(e.source()).unwrap_or(""), site.site)
            {
                r.push(Violation::LoopViolated {
                    node: e.source(),
                    field: site.rel.name.clone(),
                });
            }
        }
    }
}

/// DS3 via the `(target, label)` in-groups, counting only edges whose
/// source is below the constraint site (cf. the DS3 reading note in the
/// naive engine).
fn ds3(g: &PropertyGraph, s: &PgSchema, ix: &GraphIndex, r: &mut ValidationReport) {
    for site in s.constraint_sites() {
        if !site.rel.unique_for_target {
            continue;
        }
        for (target, label, edges) in ix.in_groups() {
            if label != site.rel.name || edges.len() < 2 {
                continue;
            }
            let count = edges
                .iter()
                .filter(|&&e| {
                    let src = g.edge_endpoints(e).map(|(s0, _)| s0);
                    src.is_some_and(|v| {
                        s.label_subtype(g.node_label(v).unwrap_or(""), site.site)
                    })
                })
                .count();
            if count > 1 {
                r.push(Violation::UniqueForTargetViolated {
                    target,
                    field: label.to_owned(),
                    count,
                });
            }
        }
    }
}

/// DS4 via the label index: for every node whose label is below the field
/// type, check the incoming `(target, label)` group.
fn ds4(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    labels: &[String],
    r: &mut ValidationReport,
) {
    for site in s.constraint_sites() {
        if !site.rel.required_for_target {
            continue;
        }
        for label in labels {
            if !s.label_subtype_wrapped(label, &site.rel.ty) {
                continue;
            }
            for &n in ix.nodes_with_label(label) {
                let ok = ix.in_edges_labelled(n, &site.rel.name).iter().any(|&e| {
                    g.edge_endpoints(e).is_some_and(|(src, _)| {
                        s.label_subtype(g.node_label(src).unwrap_or(""), site.site)
                    })
                });
                if !ok {
                    r.push(Violation::RequiredForTargetViolated {
                        target: n,
                        field: site.rel.name.clone(),
                        site: s.schema().type_name(site.site).to_owned(),
                    });
                }
            }
        }
    }
}

/// DS5 via the label index.
fn ds5(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    labels: &[String],
    r: &mut ValidationReport,
) {
    let sites: Vec<_> = s
        .schema()
        .object_types()
        .chain(s.schema().interface_types())
        .flat_map(|t| {
            s.attributes(t)
                .iter()
                .filter(|a| a.required)
                .map(move |a| (t, a))
        })
        .collect();
    for (t, attr) in sites {
        for label in labels {
            if !s.label_subtype(label, t) {
                continue;
            }
            for &n in ix.nodes_with_label(label) {
                match g.node_property(n, &attr.name) {
                    None => r.push(Violation::RequiredPropertyMissing {
                        node: n,
                        field: attr.name.clone(),
                        empty_list: false,
                    }),
                    Some(Value::List(items)) if attr.ty.is_list() && items.is_empty() => {
                        r.push(Violation::RequiredPropertyMissing {
                            node: n,
                            field: attr.name.clone(),
                            empty_list: true,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }
}

/// DS6 via the label index and out-groups.
fn ds6(
    _g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    labels: &[String],
    r: &mut ValidationReport,
) {
    for site in s.constraint_sites() {
        if !site.rel.required {
            continue;
        }
        for label in labels {
            if !s.label_subtype(label, site.site) {
                continue;
            }
            for &n in ix.nodes_with_label(label) {
                if ix.out_edges_labelled(n, &site.rel.name).is_empty() {
                    r.push(Violation::RequiredEdgeMissing {
                        node: n,
                        field: site.rel.name.clone(),
                    });
                }
            }
        }
    }
}

/// DS7 via a hash map from key tuples to node lists.
///
/// A key tuple is the vector of `Option<Value>` over the key's scalar
/// fields; DS7's "agree" relation (both lack the property, or both have
/// equal values) is exactly tuple equality.
fn ds7(
    g: &PropertyGraph,
    s: &PgSchema,
    ix: &GraphIndex,
    labels: &[String],
    r: &mut ValidationReport,
) {
    for key in s.keys() {
        let scalar_fields: Vec<&str> = key
            .fields
            .iter()
            .filter(|f| {
                s.schema()
                    .field(key.site, f)
                    .is_some_and(|fi| s.schema().is_scalar(fi.ty.base))
            })
            .map(String::as_str)
            .collect();
        let mut groups: HashMap<Vec<Option<Value>>, Vec<NodeId>> = HashMap::new();
        for label in labels {
            if !s.label_subtype(label, key.site) {
                continue;
            }
            for &n in ix.nodes_with_label(label) {
                let tuple: Vec<Option<Value>> = scalar_fields
                    .iter()
                    .map(|f| g.node_property(n, f).cloned())
                    .collect();
                groups.entry(tuple).or_default().push(n);
            }
        }
        for mut nodes in groups.into_values() {
            if nodes.len() < 2 {
                continue;
            }
            nodes.sort();
            for (i, &a) in nodes.iter().enumerate() {
                for &b in nodes.iter().skip(i + 1) {
                    r.push(Violation::KeyViolated {
                        a,
                        b,
                        ty: s.schema().type_name(key.site).to_owned(),
                        fields: key.fields.clone(),
                    });
                }
            }
        }
    }
}

/// SS1 via one node scan.
fn ss1(g: &PropertyGraph, s: &PgSchema, r: &mut ValidationReport) {
    for n in g.nodes() {
        if !s.is_object_label(n.label()) {
            r.push(Violation::UnjustifiedNode {
                node: n.id,
                label: n.label().to_owned(),
            });
        }
    }
}
