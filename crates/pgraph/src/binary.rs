//! Compact binary codec for graphs and deltas.
//!
//! The JSON interchange form ([`crate::json`]) is the *wire* format: it is
//! human-readable and, for graphs, intentionally re-densifies ids on load.
//! The write-ahead log and snapshot files of `pg-store` need the opposite
//! trade-offs — small records, cheap encode/decode, and **exact** id-space
//! preservation (tombstones included), because replaying a logged
//! [`GraphDelta`] only produces the original graph if every `AddNode` /
//! `AddEdge` continuation id lands on the same index it did the first time.
//!
//! The encoding is little-endian throughout, with length-prefixed strings
//! and one tag byte per [`Value`] / [`DeltaOp`] variant. It carries no
//! framing, checksums or versioning of its own: the store wraps every
//! record in a length+CRC frame and owns corruption detection, so a
//! payload handed to [`graph_from_bytes`] / [`delta_from_bytes`] is
//! expected to be intact — decoding still validates structurally (no
//! out-of-range endpoints, no dangling live edges) and fails with a
//! [`BinError`] rather than panicking on adversarial input.
//!
//! ```
//! use pgraph::{binary, GraphDelta};
//!
//! let mut g = pgraph::PropertyGraph::new();
//! let u = g.add_node("User");
//! g.remove_node(u).unwrap(); // tombstone survives the round-trip
//! let bytes = binary::graph_to_bytes(&g);
//! assert_eq!(binary::graph_from_bytes(&bytes).unwrap(), g);
//!
//! let delta = GraphDelta::new().add_node("User");
//! let bytes = binary::delta_to_bytes(&delta);
//! assert_eq!(binary::delta_from_bytes(&bytes).unwrap(), delta);
//! ```

use std::fmt;

use crate::graph::{EdgeData, NodeData, PropMap};
use crate::{DeltaOp, EdgeId, GraphDelta, NodeId, PropertyGraph, Value};

/// Errors raised when decoding binary payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The payload ended before the announced structure was complete.
    Truncated {
        /// Byte offset at which more input was required.
        at: usize,
    },
    /// An unknown tag byte for the named kind of structure.
    BadTag {
        /// What was being decoded (`"value"`, `"op"`).
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the string payload.
        at: usize,
    },
    /// A live edge referenced a node slot that is out of range or dead.
    DanglingEdge {
        /// Index of the offending edge slot.
        edge_index: usize,
    },
    /// The payload decoded cleanly but trailing bytes remained.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Truncated { at } => write!(f, "payload truncated at byte {at}"),
            BinError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            BinError::BadUtf8 { at } => write!(f, "invalid UTF-8 in string at byte {at}"),
            BinError::DanglingEdge { edge_index } => {
                write!(f, "live edge slot {edge_index} references a missing node")
            }
            BinError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for BinError {}

// ---------------------------------------------------------------- encoding

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            out.push(2);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(*b as u8);
        }
        Value::Id(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Enum(s) => {
            out.push(5);
            put_str(out, s);
        }
        Value::List(items) => {
            out.push(6);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item);
            }
        }
        Value::Null => out.push(7),
    }
}

/// Encodes one value in the tagged binary form — shared with the columnar
/// snapshot codec ([`crate::snapshot`]), whose value heap is a
/// concatenation of exactly these encodings.
pub(crate) fn encode_value(out: &mut Vec<u8>, v: &Value) {
    put_value(out, v);
}

/// Decodes `count` consecutive values, requiring the buffer to be fully
/// consumed. Inverse of `count` × [`encode_value`].
pub(crate) fn decode_values(buf: &[u8], count: usize) -> Result<Vec<Value>, BinError> {
    let mut c = Cursor { buf, pos: 0 };
    let mut values = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        values.push(c.value()?);
    }
    c.finish()?;
    Ok(values)
}

fn put_props(out: &mut Vec<u8>, props: &PropMap) {
    put_u32(out, props.len() as u32);
    for (name, value) in props {
        put_str(out, name);
        put_value(out, value);
    }
}

/// Serialises a delta to the binary form.
pub fn delta_to_bytes(delta: &GraphDelta) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * delta.len() + 4);
    put_u32(&mut out, delta.len() as u32);
    for op in delta.ops() {
        match op {
            DeltaOp::AddNode { label } => {
                out.push(0);
                put_str(&mut out, label);
            }
            DeltaOp::RemoveNode { node } => {
                out.push(1);
                put_u32(&mut out, node.index() as u32);
            }
            DeltaOp::AddEdge {
                source,
                target,
                label,
            } => {
                out.push(2);
                put_u32(&mut out, source.index() as u32);
                put_u32(&mut out, target.index() as u32);
                put_str(&mut out, label);
            }
            DeltaOp::RemoveEdge { edge } => {
                out.push(3);
                put_u32(&mut out, edge.index() as u32);
            }
            DeltaOp::SetNodeProperty { node, name, value } => {
                out.push(4);
                put_u32(&mut out, node.index() as u32);
                put_str(&mut out, name);
                put_value(&mut out, value);
            }
            DeltaOp::RemoveNodeProperty { node, name } => {
                out.push(5);
                put_u32(&mut out, node.index() as u32);
                put_str(&mut out, name);
            }
            DeltaOp::SetEdgeProperty { edge, name, value } => {
                out.push(6);
                put_u32(&mut out, edge.index() as u32);
                put_str(&mut out, name);
                put_value(&mut out, value);
            }
            DeltaOp::RemoveEdgeProperty { edge, name } => {
                out.push(7);
                put_u32(&mut out, edge.index() as u32);
                put_str(&mut out, name);
            }
            DeltaOp::SetNodeLabel { node, label } => {
                out.push(8);
                put_u32(&mut out, node.index() as u32);
                put_str(&mut out, label);
            }
        }
    }
    out
}

/// Serialises a graph to the binary form, preserving the full id space:
/// every slot of the node and edge tables is written, tombstones included,
/// so the decoded graph is [`PartialEq`]-identical to the original and
/// fresh ids continue from the same indexes.
pub fn graph_to_bytes(g: &PropertyGraph) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 * (g.node_index_bound() + g.edge_index_bound()) + 8);
    put_u32(&mut out, g.node_index_bound() as u32);
    for n in &g.nodes {
        out.push(n.alive as u8);
        put_str(&mut out, &n.label);
        put_props(&mut out, &n.props);
    }
    put_u32(&mut out, g.edge_index_bound() as u32);
    for e in &g.edges {
        out.push(e.alive as u8);
        put_u32(&mut out, e.src.index() as u32);
        put_u32(&mut out, e.dst.index() as u32);
        put_str(&mut out, &e.label);
        put_props(&mut out, &e.props);
    }
    out
}

// ---------------------------------------------------------------- decoding

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.buf.len() - self.pos < n {
            return Err(BinError::Truncated { at: self.buf.len() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, BinError> {
        let len = self.u32()? as usize;
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BinError::BadUtf8 { at })
    }

    fn value(&mut self) -> Result<Value, BinError> {
        let tag = self.u8()?;
        Ok(match tag {
            0 => Value::Int(self.u64()? as i64),
            1 => Value::Float(f64::from_bits(self.u64()?)),
            2 => Value::String(self.string()?),
            3 => Value::Bool(self.u8()? != 0),
            4 => Value::Id(self.string()?),
            5 => Value::Enum(self.string()?),
            6 => {
                let len = self.u32()? as usize;
                let mut items = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    items.push(self.value()?);
                }
                Value::List(items)
            }
            7 => Value::Null,
            tag => return Err(BinError::BadTag { what: "value", tag }),
        })
    }

    fn props(&mut self) -> Result<PropMap, BinError> {
        let len = self.u32()? as usize;
        let mut props = PropMap::new();
        for _ in 0..len {
            let name = self.string()?;
            let value = self.value()?;
            props.insert(name, value);
        }
        Ok(props)
    }

    fn finish(self) -> Result<(), BinError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(BinError::TrailingBytes {
                count: self.buf.len() - self.pos,
            })
        }
    }
}

fn node_id(c: &mut Cursor<'_>) -> Result<NodeId, BinError> {
    Ok(NodeId::from_index(c.u32()? as usize))
}

fn edge_id(c: &mut Cursor<'_>) -> Result<EdgeId, BinError> {
    Ok(EdgeId::from_index(c.u32()? as usize))
}

/// Decodes a delta written by [`delta_to_bytes`].
pub fn delta_from_bytes(bytes: &[u8]) -> Result<GraphDelta, BinError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    let count = c.u32()? as usize;
    let mut ops = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let tag = c.u8()?;
        ops.push(match tag {
            0 => DeltaOp::AddNode { label: c.string()? },
            1 => DeltaOp::RemoveNode {
                node: node_id(&mut c)?,
            },
            2 => DeltaOp::AddEdge {
                source: node_id(&mut c)?,
                target: node_id(&mut c)?,
                label: c.string()?,
            },
            3 => DeltaOp::RemoveEdge {
                edge: edge_id(&mut c)?,
            },
            4 => DeltaOp::SetNodeProperty {
                node: node_id(&mut c)?,
                name: c.string()?,
                value: c.value()?,
            },
            5 => DeltaOp::RemoveNodeProperty {
                node: node_id(&mut c)?,
                name: c.string()?,
            },
            6 => DeltaOp::SetEdgeProperty {
                edge: edge_id(&mut c)?,
                name: c.string()?,
                value: c.value()?,
            },
            7 => DeltaOp::RemoveEdgeProperty {
                edge: edge_id(&mut c)?,
                name: c.string()?,
            },
            8 => DeltaOp::SetNodeLabel {
                node: node_id(&mut c)?,
                label: c.string()?,
            },
            tag => return Err(BinError::BadTag { what: "op", tag }),
        });
    }
    c.finish()?;
    Ok(GraphDelta::from_ops(ops))
}

/// Decodes a graph written by [`graph_to_bytes`].
///
/// Validates structurally: every *live* edge must point at in-range, live
/// node slots (tombstoned edges may reference tombstoned nodes — that is
/// exactly the state `remove_node`'s cascade leaves behind).
pub fn graph_from_bytes(bytes: &[u8]) -> Result<PropertyGraph, BinError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    let node_slots = c.u32()? as usize;
    let mut nodes = Vec::with_capacity(node_slots.min(1 << 20));
    for _ in 0..node_slots {
        let alive = c.u8()? != 0;
        let label = c.string()?;
        let props = c.props()?;
        nodes.push(NodeData {
            label,
            props,
            alive,
        });
    }
    let edge_slots = c.u32()? as usize;
    let mut edges = Vec::with_capacity(edge_slots.min(1 << 20));
    for ix in 0..edge_slots {
        let alive = c.u8()? != 0;
        let src = node_id(&mut c)?;
        let dst = node_id(&mut c)?;
        let label = c.string()?;
        let props = c.props()?;
        if alive {
            let ok = |id: NodeId| nodes.get(id.index()).is_some_and(|n: &NodeData| n.alive);
            if !ok(src) || !ok(dst) {
                return Err(BinError::DanglingEdge { edge_index: ix });
            }
        }
        edges.push(EdgeData {
            label,
            src,
            dst,
            props,
            alive,
        });
    }
    c.finish()?;
    Ok(PropertyGraph::from_raw_parts(nodes, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_node("User");
        let b = g.add_node("UserSession");
        let c = g.add_node("Doomed");
        g.set_node_property(a, "login", Value::from("alice"));
        g.set_node_property(
            a,
            "scores",
            Value::List(vec![Value::Int(1), Value::Null, Value::Float(f64::NAN)]),
        );
        g.set_node_property(b, "id", Value::Id("s-1".into()));
        let e = g.add_edge(b, a, "user").unwrap();
        g.set_edge_property(e, "certainty", Value::Float(0.9));
        g.set_edge_property(e, "unit", Value::Enum("METER".into()));
        let doomed_edge = g.add_edge(c, a, "rel").unwrap();
        g.remove_edge(doomed_edge).unwrap();
        g.remove_node(c).unwrap(); // tombstones a node and leaves a dead edge slot
        g
    }

    #[test]
    fn graph_round_trip_preserves_tombstones() {
        let g = sample_graph();
        let bytes = graph_to_bytes(&g);
        let back = graph_from_bytes(&bytes).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.node_index_bound(), g.node_index_bound());
        assert_eq!(back.node_count(), g.node_count());
        // Fresh ids continue from the same index.
        let mut g2 = g.clone();
        let mut back2 = back;
        assert_eq!(g2.add_node("X"), back2.add_node("X"));
    }

    #[test]
    fn delta_round_trip_all_ops() {
        let n = NodeId::from_index(3);
        let e = EdgeId::from_index(5);
        let delta = GraphDelta::new()
            .add_node("User")
            .remove_node(n)
            .add_edge(n, NodeId::from_index(4), "rel")
            .remove_edge(e)
            .set_node_property(n, "x", Value::Int(-7))
            .remove_node_property(n, "x")
            .set_edge_property(e, "w", Value::Bool(true))
            .remove_edge_property(e, "w")
            .set_node_label(n, "Admin");
        let bytes = delta_to_bytes(&delta);
        assert_eq!(delta_from_bytes(&bytes).unwrap(), delta);
    }

    #[test]
    fn truncation_is_detected_at_every_prefix() {
        let bytes = graph_to_bytes(&sample_graph());
        for cut in 0..bytes.len() {
            assert!(
                graph_from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let bytes = delta_to_bytes(&GraphDelta::new().add_node("User"));
        for cut in 0..bytes.len() {
            assert!(delta_from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = delta_to_bytes(&GraphDelta::new());
        bytes.push(0);
        assert_eq!(
            delta_from_bytes(&bytes),
            Err(BinError::TrailingBytes { count: 1 })
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        // One op announced, tag 200.
        let bytes = [1, 0, 0, 0, 200];
        assert_eq!(
            delta_from_bytes(&bytes),
            Err(BinError::BadTag {
                what: "op",
                tag: 200
            })
        );
    }

    #[test]
    fn live_edge_to_dead_node_is_rejected() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        g.add_edge(a, b, "rel").unwrap();
        let mut bytes = graph_to_bytes(&g);
        // Flip node b's alive byte (offset: 4 count + [1 alive + 4 len + 1 'A'
        // + 4 props] = byte 14) without touching the edge.
        assert_eq!(bytes[14], 1);
        bytes[14] = 0;
        assert_eq!(
            graph_from_bytes(&bytes),
            Err(BinError::DanglingEdge { edge_index: 0 })
        );
    }

    #[test]
    fn errors_display() {
        assert!(BinError::Truncated { at: 3 }.to_string().contains("byte 3"));
        assert!(BinError::BadUtf8 { at: 9 }.to_string().contains("UTF-8"));
    }
}
