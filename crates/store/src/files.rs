//! Data-directory layout: file naming and enumeration.
//!
//! A store directory holds exactly two kinds of files:
//!
//! * `wal-<first_seq:020>.log` — WAL segments, named after the sequence
//!   number of the first record they may contain, so lexicographic order
//!   is replay order;
//! * `snapshot-<generation:06>.snap` — snapshots (plus transient `.tmp`
//!   files that an interrupted compaction may leave behind; they are
//!   never read and are cleaned up on open).

use std::io;
use std::path::{Path, PathBuf};

pub(crate) fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:020}.log"))
}

pub(crate) fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:06}.snap"))
}

pub(crate) fn snapshot_tmp_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:06}.tmp"))
}

pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

pub(crate) fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// The directory's segments (ascending by first sequence) and snapshots
/// (descending by generation — newest first), plus any stale `.tmp`
/// leftovers from an interrupted snapshot write.
pub(crate) struct DirListing {
    pub segments: Vec<(u64, PathBuf)>,
    pub snapshots: Vec<(u64, PathBuf)>,
    pub stale_tmp: Vec<PathBuf>,
}

pub(crate) fn list_dir(dir: &Path) -> io::Result<DirListing> {
    let mut segments = Vec::new();
    let mut snapshots = Vec::new();
    let mut stale_tmp = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(first_seq) = parse_segment_name(name) {
            segments.push((first_seq, path));
        } else if let Some(generation) = parse_snapshot_name(name) {
            snapshots.push((generation, path));
        } else if name.starts_with("snapshot-") && name.ends_with(".tmp") {
            stale_tmp.push(path);
        }
    }
    segments.sort();
    snapshots.sort_by_key(|s| std::cmp::Reverse(s.0));
    Ok(DirListing {
        segments,
        snapshots,
        stale_tmp,
    })
}

/// Flushes directory metadata so a just-renamed or just-deleted entry
/// survives a crash. Best-effort on platforms where opening a directory
/// for sync is not supported.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(handle) = std::fs::File::open(dir) {
        let _ = handle.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        let dir = Path::new("/tmp/x");
        let seg = segment_path(dir, 42);
        assert_eq!(
            parse_segment_name(seg.file_name().unwrap().to_str().unwrap()),
            Some(42)
        );
        let snap = snapshot_path(dir, 7);
        assert_eq!(
            parse_snapshot_name(snap.file_name().unwrap().to_str().unwrap()),
            Some(7)
        );
        assert_eq!(parse_segment_name("wal-.log"), None);
        assert_eq!(parse_snapshot_name("snapshot-1.tmp"), None);
        assert_eq!(parse_segment_name("other.log"), None);
    }
}
