//! End-to-end tests over a real socket: the daemon is started in
//! process on port 0, driven by hand-rolled HTTP clients, and shut down
//! through [`ServerHandle`] — the same drain SIGTERM triggers.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pg_schema::{validate, Engine, ValidationOptions};
use pg_server::http::read_response;
use pg_server::workload::{sample_graph, toggle_delta, user_ids, SCHEMA_SDL};
use pg_server::{LogFormat, Server, ServerConfig, ServerHandle};
use pgraph::json::{self, Json};

struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
}

impl Daemon {
    fn start(cores: usize, max_connections: usize) -> Daemon {
        let config = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .cores(cores)
            .max_connections(max_connections)
            .log_format(LogFormat::Off)
            .build();
        let handle = Server::bind(config).expect("bind").serve().expect("serve");
        Daemon {
            addr: handle.local_addr(),
            handle,
        }
    }

    fn stop(self) {
        self.handle.shutdown();
        self.handle.join().expect("clean shutdown");
    }
}

struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn request(&mut self, method: &str, target: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).unwrap();
        self.stream.write_all(body).unwrap();
        let (status, _headers, body) =
            read_response(&mut self.stream, &mut self.buf).expect("response");
        (status, body)
    }

    fn request_json(&mut self, method: &str, target: &str, body: &[u8]) -> (u16, Json) {
        let (status, body) = self.request(method, target, body);
        let text = String::from_utf8(body).expect("UTF-8 body");
        (status, Json::parse(&text).expect("JSON body"))
    }
}

fn envelope(users: usize) -> Vec<u8> {
    let graph = sample_graph(users);
    let mut out = String::new();
    out.push_str("{\"schema\":");
    pg_server::http::push_json_string(&mut out, SCHEMA_SDL);
    out.push_str(",\"graph\":");
    out.push_str(&json::to_json(&graph));
    out.push('}');
    out.into_bytes()
}

#[test]
fn stateless_validate_on_every_engine() {
    let daemon = Daemon::start(2, 16);
    let mut client = Client::connect(daemon.addr);

    let (status, body) = client.request("GET", "/healthz", b"");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    for engine in ["naive", "indexed", "parallel", "incremental"] {
        let (status, report) =
            client.request_json("POST", &format!("/validate?engine={engine}"), &envelope(3));
        assert_eq!(status, 200, "engine {engine}");
        assert_eq!(report.get("conforms"), Some(&Json::Bool(true)));
        assert_eq!(
            report.get("engine").and_then(Json::as_str),
            Some(engine),
            "report names the engine that ran"
        );
    }

    let (status, _) = client.request_json("POST", "/validate?engine=quantum", &envelope(1));
    assert_eq!(status, 400);
    let (status, _) = client.request_json("POST", "/validate", b"{\"schema\": 7}");
    assert_eq!(status, 400);
    let (status, _) = client.request_json("GET", "/nope", b"");
    assert_eq!(status, 404);
    let (status, _) = client.request_json("DELETE", "/validate", b"");
    assert_eq!(status, 405);

    daemon.stop();
}

#[test]
fn session_delta_round_trip() {
    let daemon = Daemon::start(2, 16);
    let mut client = Client::connect(daemon.addr);

    let (status, created) = client.request_json("POST", "/sessions", &envelope(4));
    assert_eq!(status, 201);
    let id = created.get("session").and_then(Json::as_i64).unwrap();
    assert_eq!(
        created.get("report").and_then(|r| r.get("conforms")),
        Some(&Json::Bool(true))
    );

    let graph = sample_graph(4);
    let user = user_ids(&graph)[0];

    // Break, then verify the patched report arrives with the response.
    let delta = json::delta_to_json(&toggle_delta(user, 0));
    let (status, patched) =
        client.request_json("POST", &format!("/sessions/{id}/deltas"), delta.as_bytes());
    assert_eq!(status, 200);
    assert_eq!(
        patched.get("report").and_then(|r| r.get("conforms")),
        Some(&Json::Bool(false))
    );
    let outcome = patched.get("outcome").unwrap();
    assert_eq!(
        outcome.get("violations_added").and_then(Json::as_i64),
        Some(1)
    );

    // The stored report and graph agree.
    let (status, report) = client.request_json("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200);
    assert_eq!(report.get("conforms"), Some(&Json::Bool(false)));
    let (status, graph_doc) = client.request_json("GET", &format!("/sessions/{id}/graph"), b"");
    assert_eq!(status, 200);
    let served = json::graph_from_value(&graph_doc).unwrap();
    let schema = pg_schema::PgSchema::parse(SCHEMA_SDL).unwrap();
    assert!(!pg_schema::strongly_satisfies(&served, &schema));

    // A delta naming a missing node conflicts without corrupting state.
    let bogus = r#"{"ops":[{"op":"remove-node","node":999}]}"#;
    let (status, _) =
        client.request_json("POST", &format!("/sessions/{id}/deltas"), bogus.as_bytes());
    assert_eq!(status, 409);
    let (status, report) = client.request_json("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200);
    assert_eq!(report.get("conforms"), Some(&Json::Bool(false)));

    // Delete, then the id is gone.
    let (status, _) = client.request_json("DELETE", &format!("/sessions/{id}"), b"");
    assert_eq!(status, 200);
    let (status, _) = client.request_json("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 404);

    daemon.stop();
}

#[test]
fn metrics_count_requests_and_sessions() {
    let daemon = Daemon::start(2, 16);
    let mut client = Client::connect(daemon.addr);

    client.request("POST", "/validate?engine=parallel", &envelope(2));
    let (status, created) = client.request_json("POST", "/sessions", &envelope(2));
    assert_eq!(status, 201);
    assert!(created.get("session").is_some());

    let (status, body) = client.request("GET", "/metrics", b"");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("pgschemad_validations_total{engine=\"parallel\"} 1"));
    assert!(text.contains("pgschemad_sessions_live 1"));
    assert!(text.contains("pgschemad_http_requests_total{route=\"/validate\",status=\"200\"} 1"));
    assert!(text.contains("pgschemad_request_duration_micros_bucket"));

    daemon.stop();
}

#[test]
fn saturated_server_sheds_with_503_and_retry_after() {
    // A connection cap of two: the first two idle connections are
    // adopted by the reactor, every further accept must be shed.
    let daemon = Daemon::start(1, 2);
    let mut idle: Vec<TcpStream> = (0..5)
        .map(|_| {
            let s = TcpStream::connect(daemon.addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_millis(1500)))
                .unwrap();
            s
        })
        .collect();
    // Give the accept thread time to classify all five.
    std::thread::sleep(Duration::from_millis(300));

    let mut shed = 0;
    let mut retry_after = 0;
    for stream in &mut idle {
        let mut buf = Vec::new();
        if let Ok((status, headers, _body)) = read_response(stream, &mut buf) {
            if status == 503 {
                shed += 1;
                if headers
                    .iter()
                    .any(|(name, value)| name == "retry-after" && value == "1")
                {
                    retry_after += 1;
                }
            }
        }
    }
    assert!(
        shed >= 3,
        "expected at least 3 shed connections, got {shed}"
    );
    assert_eq!(retry_after, shed, "every 503 carries Retry-After");

    daemon.stop();
}

#[test]
fn graceful_shutdown_completes_in_flight_work() {
    let daemon = Daemon::start(2, 16);
    let mut client = Client::connect(daemon.addr);
    let (status, _) = client.request("GET", "/healthz", b"");
    assert_eq!(status, 200);

    // Begin the drain (what SIGTERM triggers) and require a clean exit
    // while a keep-alive connection is still open: the reactor must
    // close the idle connection rather than wait for the peer.
    daemon.handle.shutdown();
    daemon.handle.join().expect("clean shutdown");
}

/// Satellite: hammer one session from many threads — interleaved delta
/// POSTs and report GETs — then require the final report to equal a
/// from-scratch validation by all four engines (the engine-agreement
/// oracle of `tests/engine_agreement.rs`, aimed at the server).
#[test]
fn hammered_session_report_equals_from_scratch_validation() {
    let daemon = Daemon::start(4, 32);
    let mut client = Client::connect(daemon.addr);

    let users = 8;
    let (status, created) = client.request_json("POST", "/sessions", &envelope(users));
    assert_eq!(status, 201);
    let id = created.get("session").and_then(Json::as_i64).unwrap();

    let graph = sample_graph(users);
    let user_nodes = user_ids(&graph);

    // Four writer threads, each toggling its own user node so the
    // interleaving is conflict-free: even threads apply an odd number of
    // deltas (ending broken), odd threads an even number (ending
    // repaired). Two reader threads poll the report concurrently.
    let writers = 4;
    std::thread::scope(|scope| {
        for (t, &user) in user_nodes.iter().enumerate().take(writers) {
            let addr = daemon.addr;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let deltas = if t % 2 == 0 { 9 } else { 10 };
                for i in 0..deltas {
                    let delta = json::delta_to_json(&toggle_delta(user, i));
                    let (status, _) =
                        client.request("POST", &format!("/sessions/{id}/deltas"), delta.as_bytes());
                    assert_eq!(status, 200, "writer {t} delta {i}");
                }
            });
        }
        for _ in 0..2 {
            let addr = daemon.addr;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for _ in 0..20 {
                    let (status, report) =
                        client.request_json("GET", &format!("/sessions/{id}/report"), b"");
                    assert_eq!(status, 200);
                    // Any intermediate report is internally consistent:
                    // conforms iff no violations.
                    let conforms = report.get("conforms") == Some(&Json::Bool(true));
                    let empty = report
                        .get("violations")
                        .and_then(Json::as_array)
                        .is_some_and(|v| v.is_empty());
                    assert_eq!(conforms, empty);
                }
            });
        }
    });

    // Oracle: fetch the final graph, revalidate from scratch with all
    // four engines, and require each to agree with the session's report.
    let (status, final_report) = client.request_json("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200);
    let (status, graph_doc) = client.request_json("GET", &format!("/sessions/{id}/graph"), b"");
    assert_eq!(status, 200);
    let served = json::graph_from_value(&graph_doc).unwrap();
    let schema = pg_schema::PgSchema::parse(SCHEMA_SDL).unwrap();

    // Two writers ended broken (WS1 on their user's login).
    assert_eq!(final_report.get("conforms"), Some(&Json::Bool(false)));
    for engine in [
        Engine::Naive,
        Engine::Indexed,
        Engine::Parallel,
        Engine::Incremental,
    ] {
        let scratch = validate(&served, &schema, &ValidationOptions::with_engine(engine));
        let scratch_doc = Json::parse(&scratch.to_json()).unwrap();
        assert_eq!(
            final_report.get("conforms"),
            scratch_doc.get("conforms"),
            "{} disagrees on conformance",
            engine.name()
        );
        assert_eq!(
            final_report.get("violations"),
            scratch_doc.get("violations"),
            "{} disagrees on the violation set",
            engine.name()
        );
    }

    daemon.stop();
}

/// [`SCHEMA_SDL`] with `UserSession.endTime` made `@required` — every
/// sample session lacks it, so the change is breaking on sample graphs.
const BREAKING_SDL: &str = r#"
type UserSession {
    id: ID! @required
    user(certainty: Float! comment: String): User! @required
    startTime: Time! @required
    endTime: Time! @required
}
type User @key(fields: ["id"]) {
    id: ID! @required
    login: String! @required
    nicknames: [String!]!
}
scalar Time
"#;

/// [`SCHEMA_SDL`] plus an optional `User.note` attribute — compatible
/// by construction (field additions constrain nothing retroactively).
const COMPATIBLE_SDL: &str = r#"
type UserSession {
    id: ID! @required
    user(certainty: Float! comment: String): User! @required
    startTime: Time! @required
    endTime: Time!
}
type User @key(fields: ["id"]) {
    id: ID! @required
    login: String! @required
    nicknames: [String!]!
    note: String
}
scalar Time
"#;

fn migrate_body(action: &str, schema: Option<&str>, force: bool) -> Vec<u8> {
    let mut out = String::new();
    out.push_str("{\"action\":\"");
    out.push_str(action);
    out.push('"');
    if let Some(sdl) = schema {
        out.push_str(",\"schema\":");
        pg_server::http::push_json_string(&mut out, sdl);
    }
    if force {
        out.push_str(",\"force\":true");
    }
    out.push('}');
    out.into_bytes()
}

#[test]
fn migration_window_lifecycle() {
    let daemon = Daemon::start(2, 16);
    let mut client = Client::connect(daemon.addr);

    let (status, created) = client.request_json("POST", "/sessions", &envelope(3));
    assert_eq!(status, 201);
    let id = created.get("session").and_then(Json::as_i64).unwrap();
    let migrate = format!("/sessions/{id}/migrate");

    // A plan is a preview: it opens nothing.
    let (status, planned) = client.request_json(
        "POST",
        &migrate,
        &migrate_body("plan", Some(BREAKING_SDL), false),
    );
    assert_eq!(status, 200);
    let plan = planned.get("plan").unwrap();
    assert_eq!(plan.get("compatible"), Some(&Json::Bool(false)));
    assert!(plan
        .get("violations_added")
        .and_then(Json::as_array)
        .is_some_and(|v| !v.is_empty()));
    let (status, _) = client.request_json("POST", &migrate, &migrate_body("commit", None, false));
    assert_eq!(status, 409, "plan must not have opened a window");

    // Begin a compatible window; a second begin is refused.
    let (status, begun) = client.request_json(
        "POST",
        &migrate,
        &migrate_body("begin", Some(COMPATIBLE_SDL), false),
    );
    assert_eq!(status, 200);
    assert_eq!(
        begun.get("plan").and_then(|p| p.get("compatible")),
        Some(&Json::Bool(true))
    );
    let (status, _) = client.request_json(
        "POST",
        &migrate,
        &migrate_body("begin", Some(COMPATIBLE_SDL), false),
    );
    assert_eq!(status, 409);
    let (status, metrics) = client.request("GET", "/metrics", b"");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).unwrap();
    assert!(metrics.contains("pgschemad_migration_windows_open 1"));
    assert!(metrics.contains("pgschemad_migration_actions_total{action=\"begin\"} 1"));

    // Deltas keep flowing during the window; commit swaps cleanly.
    let users = user_ids(&sample_graph(3));
    let delta = toggle_delta(users[0], 1);
    let (status, _) = client.request_json(
        "POST",
        &format!("/sessions/{id}/deltas"),
        json::delta_to_json(&delta).as_bytes(),
    );
    assert_eq!(status, 200);
    let (status, committed) =
        client.request_json("POST", &migrate, &migrate_body("commit", None, false));
    assert_eq!(status, 200);
    assert_eq!(committed.get("committed"), Some(&Json::Bool(true)));
    assert_eq!(
        committed.get("report").and_then(|r| r.get("conforms")),
        Some(&Json::Bool(true))
    );
    let (status, _) = client.request_json("POST", &migrate, &migrate_body("abort", None, false));
    assert_eq!(status, 409, "commit closed the window");

    // A breaking window: commit refused until forced.
    let (status, begun) = client.request_json(
        "POST",
        &migrate,
        &migrate_body("begin", Some(BREAKING_SDL), false),
    );
    assert_eq!(status, 200);
    assert_eq!(
        begun.get("plan").and_then(|p| p.get("compatible")),
        Some(&Json::Bool(false))
    );
    let (status, refused) =
        client.request_json("POST", &migrate, &migrate_body("commit", None, false));
    assert_eq!(status, 409);
    assert_eq!(refused.get("committed"), Some(&Json::Bool(false)));
    let (status, committed) =
        client.request_json("POST", &migrate, &migrate_body("commit", None, true));
    assert_eq!(status, 200);
    assert_eq!(
        committed.get("report").and_then(|r| r.get("conforms")),
        Some(&Json::Bool(false)),
        "forced breaking commit serves the new schema's violations"
    );

    // Abort path and malformed requests.
    let (status, _) = client.request_json(
        "POST",
        &migrate,
        &migrate_body("begin", Some(COMPATIBLE_SDL), false),
    );
    assert_eq!(status, 200);
    let (status, aborted) =
        client.request_json("POST", &migrate, &migrate_body("abort", None, false));
    assert_eq!(status, 200);
    assert_eq!(aborted.get("aborted"), Some(&Json::Bool(true)));
    let (status, _) = client.request_json("POST", &migrate, &migrate_body("tango", None, false));
    assert_eq!(status, 400);
    let (status, _) = client.request_json("POST", &migrate, &migrate_body("plan", None, false));
    assert_eq!(status, 400);
    let (status, _) = client.request_json(
        "POST",
        "/sessions/999/migrate",
        &migrate_body("abort", None, false),
    );
    assert_eq!(status, 404);

    daemon.stop();
}

/// Builds a `/validate` / `/sessions` envelope with an explicit schema
/// text (any language) and graph JSON.
fn envelope_with(schema: &str, graph_json: &str) -> Vec<u8> {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    pg_server::http::push_json_string(&mut out, schema);
    out.push_str(",\"graph\":");
    out.push_str(graph_json);
    out.push('}');
    out.into_bytes()
}

/// Builds a `/check-sat` body.
fn check_sat_body(schema: &str, type_name: &str, max_size: Option<u64>) -> Vec<u8> {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    pg_server::http::push_json_string(&mut out, schema);
    out.push_str(",\"type\":");
    pg_server::http::push_json_string(&mut out, type_name);
    if let Some(k) = max_size {
        out.push_str(&format!(",\"max_size\":{k}"));
    }
    out.push('}');
    out.into_bytes()
}

#[test]
fn pgschema_language_is_served_end_to_end() {
    let daemon = Daemon::start(2, 16);
    let mut client = Client::connect(daemon.addr);

    // Render the workload schema into PG-Schema; both texts must yield
    // the same served report.
    let doc = gql_sdl::parse(SCHEMA_SDL).expect("workload schema parses");
    let pgs = pg_pgschema::print_pgschema(&doc, "Workload", pg_pgschema::TypeMode::Strict)
        .expect("workload schema is inside the PG-Schema fragment");
    let graph_json = json::to_json(&sample_graph(3));

    let (status, sdl_report) =
        client.request_json("POST", "/validate", &envelope_with(SCHEMA_SDL, &graph_json));
    assert_eq!(status, 200);
    let (status, pgs_report) = client.request_json(
        "POST",
        "/validate?lang=pgschema",
        &envelope_with(&pgs, &graph_json),
    );
    assert_eq!(status, 200);
    assert_eq!(sdl_report.get("conforms"), pgs_report.get("conforms"));
    assert_eq!(
        sdl_report.get("violations"),
        pgs_report.get("violations"),
        "identical violations whichever language carried the schema"
    );

    // Unknown languages fail through the shared enum error.
    let (status, body) = client.request(
        "POST",
        "/validate?lang=cypher",
        &envelope_with(SCHEMA_SDL, &graph_json),
    );
    assert_eq!(status, 400);
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("schema language"), "{text}");

    // SDL text posted as pgschema is a clean 400, not a panic.
    let (status, _) = client.request(
        "POST",
        "/validate?lang=pgschema",
        &envelope_with(SCHEMA_SDL, &graph_json),
    );
    assert_eq!(status, 400);

    // Sessions record the language and serve reports identically.
    let (status, created) = client.request_json(
        "POST",
        "/sessions?lang=pgschema",
        &envelope_with(&pgs, &graph_json),
    );
    assert_eq!(status, 201);
    assert_eq!(created.get("lang").and_then(Json::as_str), Some("pgschema"));
    let id = created.get("session").and_then(Json::as_i64).unwrap();
    let (status, report) = client.request_json("GET", &format!("/sessions/{id}/report"), b"");
    assert_eq!(status, 200);
    assert_eq!(report.get("conforms"), sdl_report.get("conforms"));

    daemon.stop();
}

#[test]
fn check_sat_answers_sat_with_witness_and_unsat() {
    let daemon = Daemon::start(1, 8);
    let mut client = Client::connect(daemon.addr);

    // Satisfiable: a keyed node type has a finite witness.
    let sat_pgs =
        "CREATE GRAPH TYPE Accounts STRICT { (User {id STRING}), FOR (x : User) KEY x.id }";
    let (status, doc) = client.request_json(
        "POST",
        "/check-sat?lang=pgschema",
        &check_sat_body(sat_pgs, "User", None),
    );
    assert_eq!(status, 200);
    assert_eq!(
        doc.get("result").and_then(Json::as_str),
        Some("satisfiable"),
        "{doc:?}"
    );
    assert!(doc.get("witness_size").and_then(Json::as_i64).unwrap() >= 1);

    // Unsatisfiable: Example 6.1's contradictory endpoint
    // cardinalities, posted in PG-Schema.
    let unsat_pgs = "CREATE GRAPH TYPE G STRICT {
        (OT1),
        ABSTRACT (IT),
        (: IT & OT2),
        (: IT & OT3),
        (:IT)-[:f]->(:OT1) INCOMING 0..1,
        (:OT2)-[:f]->(:OT1) INCOMING 1..*,
        (:OT3)-[:f]->(:OT1) INCOMING 1..*
    }";
    let (status, doc) = client.request_json(
        "POST",
        "/check-sat?lang=pgschema",
        &check_sat_body(unsat_pgs, "OT1", Some(4)),
    );
    assert_eq!(status, 200);
    assert_eq!(
        doc.get("result").and_then(Json::as_str),
        Some("unsatisfiable"),
        "{doc:?}"
    );

    // The same route takes plain SDL (the default language).
    let (status, doc) = client.request_json(
        "POST",
        "/check-sat",
        &check_sat_body("type A { b: B @required } type B { x: Int }", "A", None),
    );
    assert_eq!(status, 200);
    assert_eq!(
        doc.get("result").and_then(Json::as_str),
        Some("satisfiable")
    );

    // Malformed requests are clean 400s; wrong methods are 405s.
    let (status, _) = client.request("POST", "/check-sat", b"{\"schema\": \"type A { x: Int }\"}");
    assert_eq!(status, 400);
    let (status, _) = client.request("POST", "/check-sat", b"not json");
    assert_eq!(status, 400);
    let (status, _) = client.request("GET", "/check-sat", b"");
    assert_eq!(status, 405);

    daemon.stop();
}

#[test]
fn migration_windows_cross_languages() {
    let daemon = Daemon::start(1, 8);
    let mut client = Client::connect(daemon.addr);

    // `nickname` is not declared: the closed-world SDL schema rejects
    // it through the strong family.
    let graph_json = r#"{"nodes":[{"id":0,"label":"User",
        "properties":{"login":"alice","nickname":"al"}}],"edges":[]}"#;
    let (status, created) = client.request_json(
        "POST",
        "/sessions",
        &envelope_with("type User { login: String! @required }", graph_json),
    );
    assert_eq!(status, 201);
    assert_eq!(
        created.get("report").and_then(|r| r.get("conforms")),
        Some(&Json::Bool(false))
    );
    let id = created.get("session").and_then(Json::as_i64).unwrap();
    let migrate = format!("/sessions/{id}/migrate");

    // Migrate to an open-world (LOOSE) PG-Schema candidate: the window
    // crosses languages via the body's "lang" field.
    let mut begin = String::from("{\"action\":\"begin\",\"lang\":\"pgschema\",\"schema\":");
    pg_server::http::push_json_string(
        &mut begin,
        "CREATE GRAPH TYPE G LOOSE { (User {login STRING}) }",
    );
    begin.push('}');
    let (status, planned) = client.request_json("POST", &migrate, begin.as_bytes());
    assert_eq!(status, 200, "{planned:?}");

    let (status, committed) = client.request_json("POST", &migrate, b"{\"action\":\"commit\"}");
    assert_eq!(status, 200, "{committed:?}");
    assert_eq!(committed.get("committed"), Some(&Json::Bool(true)));
    // The committed LOOSE schema validates open-world: the undeclared
    // property is no longer a violation.
    assert_eq!(
        committed.get("report").and_then(|r| r.get("conforms")),
        Some(&Json::Bool(true)),
        "{committed:?}"
    );

    daemon.stop();
}
