//! # pg-server — the `pg-schemad` validation daemon
//!
//! Long-lived serving layer over the validation engines of [`pg_schema`]:
//! the paper frames schema validation as the decision problem a graph
//! database runs *continuously* (Theorem 1), and this crate is that
//! database-side service. It is built on `std` alone — `std::net`, a
//! hand-rolled HTTP/1.1, and a thin FFI shim over `epoll(7)` ([`sys`]) —
//! to match the workspace's offline vendoring constraint.
//!
//! ## Architecture
//!
//! * one **accept thread** owns the listener and hands fresh connections
//!   round-robin to the cores; above [`ServerConfig::max_connections`]
//!   it answers `503` + `Retry-After` itself and closes the socket, so
//!   saturation sheds load instead of queueing unboundedly;
//! * **per-core event loops** ([`ServerConfig::cores`], see
//!   [`reactor`]): each core runs `epoll_wait` over its own set of
//!   nonblocking connections, parsing requests incrementally from
//!   per-connection buffers and flushing responses with `writev` under
//!   backpressure — tens of thousands of idle keep-alive connections
//!   cost no threads;
//! * **session-to-core affinity**: a connection whose request addresses
//!   `/sessions/{id}` is handed to the session's home core
//!   ([`registry::home_core`]), so one thread owns all of a session's
//!   traffic and its engine state stays cache-hot;
//! * a **session registry** ([`registry::SessionRegistry`]) holds one
//!   [`pg_schema::IncrementalEngine`] per session behind a per-session
//!   mutex — deltas to different sessions never contend;
//! * **graceful shutdown**: SIGTERM / ctrl-c (see [`signal`]) leads to
//!   [`ServerHandle::shutdown`]; the accept loop stops, each core
//!   finishes its in-flight requests (flushing queued responses) and
//!   closes idle connections before exiting.
//!
//! ## HTTP surface
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /validate?engine=naive\|indexed\|parallel\|incremental` | stateless one-shot validation |
//! | `POST /sessions` | create an incremental session (schema + graph) |
//! | `POST /sessions/{id}/deltas` | apply a [`pgraph::GraphDelta`], returns the patched report |
//! | `GET /sessions/{id}/report` | current report |
//! | `GET /sessions/{id}/graph` | current graph document |
//! | `POST /sessions/{id}/compact` | snapshot the store, drop superseded WAL segments |
//! | `DELETE /sessions/{id}` | drop the session |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | Prometheus text format ([`metrics::Metrics`]) |
//! | `GET /wal/tail?from={seq}` | replication: raw WAL frames from `seq` on, chunked |
//! | `GET /wal/snapshot` | replication: bootstrap snapshot of every live session |
//! | `POST /promote` | replication: flip this follower to leader |
//!
//! ## Durability
//!
//! With `--data-dir` the registry is backed by a [`pg_store::Store`]:
//! session creates, deltas and deletes are appended to a checksummed WAL
//! before the response is acknowledged (fsync timing set by `--fsync
//! always|interval[:millis]|never`), and startup replays newest valid
//! snapshot + WAL tail, tolerating torn tails. Sessions come back
//! *dormant* and revalidate lazily on their first report. `--max-sessions`
//! bounds the registry with LRU eviction; evicted ids answer `410 Gone`.
//!
//! ## Replication and sharding
//!
//! A durable server is also a replication **leader** for free: followers
//! poll `GET /wal/tail` for raw WAL frames (byte-identical to the
//! leader's log; the leader keeps no per-follower state) and bootstrap
//! from `GET /wal/snapshot`. A server started with `--follow <addr>`
//! (see [`ServerConfig::follow`]) is a read-only **follower**: it
//! applies the leader's records through the same seq-gated path crash
//! recovery uses, serves reads locally, answers writes with `421
//! Misdirected Request` (the `x-pgschema-leader` header names the
//! leader), and becomes a leader on `POST /promote` or SIGHUP.
//! Replication lag is exported under `pgschemad_replication_*` in
//! `/metrics`. Horizontal scale-out uses client-side consistent hashing
//! ([`ring::Ring`]) across independent leaders. The wire protocol is
//! specified normatively in `docs/replication.md`; the runbook is
//! `docs/operations.md`.
//!
//! Request and response bodies reuse the `pgraph::json` value types and
//! (de)serializers — the server adds no JSON parser of its own.
//!
//! The `pgload` binary (in `src/bin`) is the matching load generator:
//! N concurrent connections of closed-loop mixed traffic, an open-loop
//! `--rate` mode with coordinated-omission-safe latency recording, and a
//! `--hold` mode that parks thousands of idle keep-alive connections
//! (EXPERIMENTS.md §E3e), plus a `--smoke` mode CI uses to exercise the
//! surface end to end.

#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod reactor;
pub mod registry;
mod replication;
pub mod ring;
pub mod server;
pub mod signal;
pub mod sys;
pub mod workload;

pub use server::{LogFormat, Server, ServerConfig, ServerConfigBuilder, ServerHandle};
