//! Rule-by-rule validation tests, run against BOTH engines.
//!
//! Every test constructs a minimal conforming graph, verifies it conforms,
//! then injects exactly one defect and verifies that precisely the
//! expected rule fires — on the naive and the indexed engine alike.

use pg_schema::{validate, Engine, PgSchema, Rule, ValidationOptions};
use pgraph::{GraphBuilder, PropertyGraph, Value};

fn both_engines(g: &PropertyGraph, s: &PgSchema) -> [pg_schema::ValidationReport; 2] {
    [
        validate(g, s, &ValidationOptions::with_engine(Engine::Naive)),
        validate(g, s, &ValidationOptions::with_engine(Engine::Indexed)),
    ]
}

/// Asserts both engines agree and that exactly the given rules fire.
fn assert_rules(g: &PropertyGraph, s: &PgSchema, expected: &[Rule]) {
    let [naive, indexed] = both_engines(g, s);
    assert_eq!(
        naive, indexed,
        "engines disagree:\nnaive: {naive}\nindexed: {indexed}"
    );
    let mut fired: Vec<Rule> = naive.counts().keys().copied().collect();
    fired.sort();
    let mut want = expected.to_vec();
    want.sort();
    want.dedup();
    assert_eq!(fired, want, "report: {naive}");
}

fn schema_3_1() -> PgSchema {
    PgSchema::parse(
        r#"
        type UserSession {
            id: ID! @required
            user(certainty: Float! comment: String): User! @required
            startTime: Time! @required
            endTime: Time!
        }
        type User @key(fields: ["id"]) {
            id: ID! @required
            login: String! @required
            nicknames: [String!]!
        }
        scalar Time
        "#,
    )
    .unwrap()
}

fn conforming_graph() -> PropertyGraph {
    GraphBuilder::new()
        .node("u", "User")
        .prop("u", "id", Value::Id("u-1".into()))
        .prop("u", "login", "alice")
        .prop("u", "nicknames", Value::from(vec!["al"]))
        .node("s", "UserSession")
        .prop("s", "id", Value::Id("s-1".into()))
        .prop("s", "startTime", "2019-06-30T10:00:00Z")
        .edge("s", "u", "user")
        .edge_prop("certainty", 0.9)
        .build()
        .unwrap()
}

#[test]
fn example_3_1_conforming_graph_conforms() {
    assert_rules(&conforming_graph(), &schema_3_1(), &[]);
}

#[test]
fn empty_graph_conforms_to_example_3_1() {
    // No @requiredForTarget in this schema, so the empty graph is fine.
    assert_rules(&PropertyGraph::new(), &schema_3_1(), &[]);
}

#[test]
fn ws1_wrong_property_type() {
    let mut g = conforming_graph();
    let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
    g.set_node_property(u, "login", Value::Int(42));
    assert_rules(&g, &schema_3_1(), &[Rule::WS1]);
}

#[test]
fn ws1_non_list_for_list_field() {
    let mut g = conforming_graph();
    let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
    g.set_node_property(u, "nicknames", Value::from("al"));
    assert_rules(&g, &schema_3_1(), &[Rule::WS1]);
}

#[test]
fn ws1_null_inside_non_null_list() {
    let mut g = conforming_graph();
    let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
    g.set_node_property(
        u,
        "nicknames",
        Value::List(vec![Value::from("al"), Value::Null]),
    );
    assert_rules(&g, &schema_3_1(), &[Rule::WS1]);
}

#[test]
fn ws2_wrong_edge_property_type() {
    let mut g = conforming_graph();
    let e = g.edge_ids().next().unwrap();
    g.set_edge_property(e, "certainty", Value::from("high"));
    assert_rules(&g, &schema_3_1(), &[Rule::WS2]);
}

#[test]
fn optional_edge_property_conforms_when_typed() {
    let mut g = conforming_graph();
    let e = g.edge_ids().next().unwrap();
    g.set_edge_property(e, "comment", Value::from("checked manually"));
    assert_rules(&g, &schema_3_1(), &[]);
    g.set_edge_property(e, "comment", Value::Int(3));
    assert_rules(&g, &schema_3_1(), &[Rule::WS2]);
}

#[test]
fn ws3_wrong_target_type() {
    let mut g = conforming_graph();
    // user edge pointing at another UserSession instead of a User.
    let s2 = g.add_node("UserSession");
    g.set_node_property(s2, "id", Value::Id("s-2".into()));
    g.set_node_property(s2, "startTime", Value::from("t"));
    let s = g
        .nodes()
        .find(|n| n.label() == "UserSession" && n.property("id") == Some(&Value::Id("s-1".into())))
        .unwrap()
        .id;
    // Remove old edge by rebuilding: simpler to add a second session with
    // a bad edge; but that session then has TWO user edges? No: new edge
    // from s2, which otherwise misses its required user edge. Point s2's
    // user edge at s (a UserSession, not a User).
    g.add_edge(s2, s, "user").unwrap();
    let e = g.edges().find(|e| e.source() == s2).unwrap().id;
    g.set_edge_property(e, "certainty", Value::Float(1.0));
    assert_rules(&g, &schema_3_1(), &[Rule::WS3]);
}

#[test]
fn ws4_two_edges_for_non_list_field() {
    let mut g = conforming_graph();
    let s = g.nodes().find(|n| n.label() == "UserSession").unwrap().id;
    let u2 = g.add_node("User");
    g.set_node_property(u2, "id", Value::Id("u-2".into()));
    g.set_node_property(u2, "login", Value::from("bob"));
    let e = g.add_edge(s, u2, "user").unwrap();
    g.set_edge_property(e, "certainty", Value::Float(0.5));
    assert_rules(&g, &schema_3_1(), &[Rule::WS4]);
}

fn schema_books(extra: &str) -> PgSchema {
    PgSchema::parse(&format!(
        r#"
        type Author {{
            favoriteBook: Book
            relatedAuthor: [Author] {extra}
        }}
        type Book {{
            title: String!
            author: [Author] @required @distinct
        }}
        "#
    ))
    .unwrap()
}

#[test]
fn ds1_distinct_parallel_edges() {
    let s = schema_books("");
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("a", "Author")
        .edge("b", "a", "author")
        .edge("b", "a", "author") // parallel duplicate
        .build()
        .unwrap();
    assert_rules(&g, &s, &[Rule::DS1]);
}

#[test]
fn ds1_two_different_targets_are_fine() {
    let s = schema_books("");
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("a1", "Author")
        .node("a2", "Author")
        .edge("b", "a1", "author")
        .edge("b", "a2", "author")
        .build()
        .unwrap();
    assert_rules(&g, &s, &[]);
}

#[test]
fn ds2_no_loops() {
    let s = schema_books("@noloops");
    let g = GraphBuilder::new()
        .node("a", "Author")
        .edge("a", "a", "relatedAuthor")
        .build()
        .unwrap();
    assert_rules(&g, &s, &[Rule::DS2]);
    // A relatedAuthor edge between two different authors is fine.
    let g = GraphBuilder::new()
        .node("a", "Author")
        .node("b", "Author")
        .edge("a", "b", "relatedAuthor")
        .build()
        .unwrap();
    assert_rules(&g, &s, &[]);
}

fn schema_3_8() -> PgSchema {
    PgSchema::parse(
        r#"
        type Book { title: String! }
        type BookSeries {
            contains: [Book] @required @uniqueForTarget
        }
        type Publisher {
            published: [Book] @uniqueForTarget @requiredForTarget
        }
        "#,
    )
    .unwrap()
}

#[test]
fn ds3_unique_for_target() {
    // Two series containing the same book.
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("s1", "BookSeries")
        .node("s2", "BookSeries")
        .node("p", "Publisher")
        .edge("s1", "b", "contains")
        .edge("s2", "b", "contains")
        .edge("p", "b", "published")
        .build()
        .unwrap();
    assert_rules(&g, &schema_3_8(), &[Rule::DS3]);
}

#[test]
fn ds4_required_for_target() {
    // A book with no publisher.
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .build()
        .unwrap();
    assert_rules(&g, &schema_3_8(), &[Rule::DS4]);
    // With a publisher it conforms.
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("p", "Publisher")
        .edge("p", "b", "published")
        .build()
        .unwrap();
    assert_rules(&g, &schema_3_8(), &[]);
}

#[test]
fn example_3_8_at_most_one_incoming_contains() {
    // One series twice → DS1 not at play (no @distinct on contains);
    // parallel contains edges DO violate @uniqueForTarget.
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .node("s", "BookSeries")
        .node("p", "Publisher")
        .edge("s", "b", "contains")
        .edge("s", "b", "contains")
        .edge("p", "b", "published")
        .build()
        .unwrap();
    assert_rules(&g, &schema_3_8(), &[Rule::DS3]);
}

#[test]
fn ds5_missing_required_property() {
    let mut g = conforming_graph();
    let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
    g.remove_node_property(u, "login");
    assert_rules(&g, &schema_3_1(), &[Rule::DS5]);
}

#[test]
fn ds5_empty_required_list() {
    let s = PgSchema::parse("type T { tags: [String!]! @required }").unwrap();
    let g = GraphBuilder::new()
        .node("t", "T")
        .prop("t", "tags", Value::List(vec![]))
        .build()
        .unwrap();
    assert_rules(&g, &s, &[Rule::DS5]);
    let g = GraphBuilder::new()
        .node("t", "T")
        .prop("t", "tags", Value::from(vec!["x"]))
        .build()
        .unwrap();
    assert_rules(&g, &s, &[]);
}

#[test]
fn ds6_missing_required_edge() {
    let s = schema_books("");
    let g = GraphBuilder::new()
        .node("b", "Book")
        .prop("b", "title", "Dune")
        .build()
        .unwrap();
    assert_rules(&g, &s, &[Rule::DS6]);
}

#[test]
fn ds7_key_collision() {
    let mut g = conforming_graph();
    let u2 = g.add_node("User");
    g.set_node_property(u2, "id", Value::Id("u-1".into())); // duplicate key
    g.set_node_property(u2, "login", Value::from("bob"));
    assert_rules(&g, &schema_3_1(), &[Rule::DS7]);
}

#[test]
fn ds7_both_missing_key_property_collides() {
    // DS7 clause (i): two nodes both lacking the key property "agree".
    // They also violate DS5 (id is @required).
    let s = PgSchema::parse(r#"type T @key(fields: ["k"]) { k: Int }"#).unwrap();
    let g = GraphBuilder::new()
        .node("a", "T")
        .node("b", "T")
        .build()
        .unwrap();
    assert_rules(&g, &s, &[Rule::DS7]);
}

#[test]
fn ds7_distinct_keys_conform() {
    let mut g = conforming_graph();
    let u2 = g.add_node("User");
    g.set_node_property(u2, "id", Value::Id("u-2".into()));
    g.set_node_property(u2, "login", Value::from("bob"));
    assert_rules(&g, &schema_3_1(), &[]);
}

#[test]
fn ds7_composite_key() {
    let s =
        PgSchema::parse(r#"type P @key(fields: ["x", "y"]) { x: Int @required y: Int @required }"#)
            .unwrap();
    let g = GraphBuilder::new()
        .node("a", "P")
        .prop("a", "x", 1i64)
        .prop("a", "y", 1i64)
        .node("b", "P")
        .prop("b", "x", 1i64)
        .prop("b", "y", 2i64)
        .build()
        .unwrap();
    assert_rules(&g, &s, &[]);
    let g = GraphBuilder::new()
        .node("a", "P")
        .prop("a", "x", 1i64)
        .prop("a", "y", 2i64)
        .node("b", "P")
        .prop("b", "x", 1i64)
        .prop("b", "y", 2i64)
        .build()
        .unwrap();
    assert_rules(&g, &s, &[Rule::DS7]);
}

#[test]
fn ss1_unknown_label() {
    let mut g = conforming_graph();
    g.add_node("Alien");
    assert_rules(&g, &schema_3_1(), &[Rule::SS1]);
}

#[test]
fn ss1_interface_label_is_not_justified() {
    let s = PgSchema::parse(
        "interface Food { name: String! } type Pizza implements Food { name: String! }",
    )
    .unwrap();
    let g = GraphBuilder::new()
        .node("f", "Food")
        .prop("f", "name", "abstract")
        .build()
        .unwrap();
    // The node's label is an interface, not an object type.
    assert_rules(&g, &s, &[Rule::SS1]);
}

#[test]
fn ss2_unjustified_node_property() {
    let mut g = conforming_graph();
    let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
    g.set_node_property(u, "shoeSize", Value::Int(43));
    assert_rules(&g, &schema_3_1(), &[Rule::SS2]);
}

#[test]
fn ss2_property_named_like_relationship_is_unjustified() {
    let mut g = conforming_graph();
    let s = g.nodes().find(|n| n.label() == "UserSession").unwrap().id;
    // "user" is a relationship field, not an attribute: a node *property*
    // with that name is unjustified (cf. Example 3.3).
    g.set_node_property(s, "user", Value::from("alice"));
    assert_rules(&g, &schema_3_1(), &[Rule::SS2]);
}

#[test]
fn ss3_unjustified_edge_property() {
    let mut g = conforming_graph();
    let e = g.edge_ids().next().unwrap();
    g.set_edge_property(e, "color", Value::from("red"));
    assert_rules(&g, &schema_3_1(), &[Rule::SS3]);
}

#[test]
fn ss4_unjustified_edge_label() {
    let mut g = conforming_graph();
    let s = g.nodes().find(|n| n.label() == "UserSession").unwrap().id;
    let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
    g.add_edge(s, u, "knows").unwrap();
    assert_rules(&g, &schema_3_1(), &[Rule::SS4]);
}

#[test]
fn ss4_edge_labelled_like_attribute() {
    let mut g = conforming_graph();
    let s = g.nodes().find(|n| n.label() == "UserSession").unwrap().id;
    let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
    // "id" is an attribute field; an edge with that label violates SS4
    // and WS3 (target cannot be ⊑ a scalar base type).
    g.add_edge(s, u, "id").unwrap();
    assert_rules(&g, &schema_3_1(), &[Rule::SS4, Rule::WS3]);
}

#[test]
fn union_targets_accept_all_members() {
    let s = PgSchema::parse(
        r#"
        type Person { name: String! favoriteFood: Food }
        union Food = Pizza | Pasta
        type Pizza { name: String! toppings: [String!]! }
        type Pasta { name: String! }
        "#,
    )
    .unwrap();
    for target_ty in ["Pizza", "Pasta"] {
        let g = GraphBuilder::new()
            .node("p", "Person")
            .prop("p", "name", "ann")
            .node("f", target_ty)
            .prop("f", "name", "x")
            .prop(
                "f",
                "toppings",
                if target_ty == "Pizza" {
                    Value::from(vec!["cheese"])
                } else {
                    Value::Null
                },
            )
            .edge("p", "f", "favoriteFood")
            .build()
            .unwrap();
        // Pasta has no toppings field → that injected Null prop would be
        // unjustified; only set it for Pizza.
        let g = if target_ty == "Pasta" {
            let mut g2 = g;
            let f = g2.nodes().find(|n| n.label() == "Pasta").unwrap().id;
            g2.remove_node_property(f, "toppings");
            g2
        } else {
            g
        };
        assert_rules(&g, &s, &[]);
    }
    // A Person target is not in the union.
    let g = GraphBuilder::new()
        .node("p", "Person")
        .prop("p", "name", "ann")
        .node("q", "Person")
        .prop("q", "name", "bob")
        .edge("p", "q", "favoriteFood")
        .build()
        .unwrap();
    assert_rules(&g, &s, &[Rule::WS3]);
}

#[test]
fn interface_targets_accept_all_implementors() {
    let s = PgSchema::parse(
        r#"
        type Person { name: String! favoriteFood: Food }
        interface Food { name: String! }
        type Pizza implements Food { name: String! toppings: [String!]! }
        type Pasta implements Food { name: String! }
        "#,
    )
    .unwrap();
    let g = GraphBuilder::new()
        .node("p", "Person")
        .prop("p", "name", "ann")
        .node("f", "Pasta")
        .prop("f", "name", "carbonara")
        .edge("p", "f", "favoriteFood")
        .build()
        .unwrap();
    assert_rules(&g, &s, &[]);
}

#[test]
fn example_3_11_multiple_source_types() {
    let s = PgSchema::parse(
        r#"
        type Person { name: String! }
        type Car { brand: String! owner: Person }
        type Motorcycle { brand: String! owner: Person }
        "#,
    )
    .unwrap();
    let g = GraphBuilder::new()
        .node("p", "Person")
        .prop("p", "name", "ann")
        .node("c", "Car")
        .prop("c", "brand", "VW")
        .node("m", "Motorcycle")
        .prop("m", "brand", "BMW")
        .edge("c", "p", "owner")
        .edge("m", "p", "owner")
        .build()
        .unwrap();
    assert_rules(&g, &s, &[]);
}

#[test]
fn interface_required_constrains_implementors() {
    // @required on an interface field constrains implementing nodes even
    // if the repeated field on the object type lacks the directive
    // (directives are not inherited-checked by consistency, but DS6
    // quantifies over λ(v) ⊑ t).
    let s = PgSchema::parse(
        r#"
        interface Owned { owner: Person @required }
        type Person { name: String! }
        type Car implements Owned { owner: Person }
        "#,
    )
    .unwrap();
    let g = GraphBuilder::new().node("c", "Car").build().unwrap();
    assert_rules(&g, &s, &[Rule::DS6]);
}

#[test]
fn weak_only_mode_skips_directives_and_strong() {
    let mut g = conforming_graph();
    let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
    g.remove_node_property(u, "login"); // DS5
    g.set_node_property(u, "shoeSize", Value::Int(4)); // SS2
    let r = validate(&g, &schema_3_1(), &ValidationOptions::weak_only());
    assert!(r.conforms(), "{r}");
}

#[test]
fn multiple_violations_are_all_reported() {
    let mut g = conforming_graph();
    let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
    g.set_node_property(u, "login", Value::Int(1)); // WS1
    g.set_node_property(u, "ghost", Value::Int(2)); // SS2
    g.add_node("Alien"); // SS1
    let [naive, indexed] = both_engines(&g, &schema_3_1());
    assert_eq!(naive, indexed);
    assert_eq!(naive.len(), 3);
    assert_eq!(naive.counts().len(), 3);
}
