//! Traversal helpers: neighbourhoods, reachability, degree sequences.
//!
//! The satisfiability witness checker and the workload generator both need
//! basic graph traversal; everything here works on the plain
//! [`PropertyGraph`] or an existing [`GraphIndex`].

use std::collections::{HashSet, VecDeque};

use crate::index::GraphIndex;
use crate::{NodeId, PropertyGraph};

/// Nodes reachable from `start` along outgoing edges (including `start`),
/// in BFS order.
pub fn reachable_from(g: &PropertyGraph, start: NodeId) -> Vec<NodeId> {
    if !g.contains_node(start) {
        return Vec::new();
    }
    let ix = GraphIndex::build(g);
    reachable_from_indexed(g, &ix, start)
}

/// Like [`reachable_from`] but reuses a prebuilt index.
pub fn reachable_from_indexed(g: &PropertyGraph, _ix: &GraphIndex, start: NodeId) -> Vec<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    // Build a quick successor map once; GraphIndex groups by (node,label)
    // which would force label enumeration here.
    let mut succ: std::collections::HashMap<NodeId, Vec<NodeId>> = std::collections::HashMap::new();
    for e in g.edges() {
        succ.entry(e.source()).or_default().push(e.target());
    }
    queue.push_back(start);
    seen.insert(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        if let Some(nexts) = succ.get(&v) {
            for &n in nexts {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
    }
    order
}

/// Out-degree of every node, indexed by `NodeId::index()`. Dead slots are 0.
pub fn out_degrees(g: &PropertyGraph) -> Vec<usize> {
    let mut deg = vec![0usize; g.node_ids().map(|n| n.index() + 1).max().unwrap_or(0)];
    for e in g.edges() {
        deg[e.source().index()] += 1;
    }
    deg
}

/// In-degree of every node, indexed by `NodeId::index()`.
pub fn in_degrees(g: &PropertyGraph) -> Vec<usize> {
    let mut deg = vec![0usize; g.node_ids().map(|n| n.index() + 1).max().unwrap_or(0)];
    for e in g.edges() {
        deg[e.target().index()] += 1;
    }
    deg
}

/// True if the graph contains a directed cycle (self-loops count).
pub fn has_cycle(g: &PropertyGraph) -> bool {
    // Kahn's algorithm: a cycle exists iff topological elimination stalls.
    let mut indeg = in_degrees(g);
    let mut succ: std::collections::HashMap<NodeId, Vec<NodeId>> = std::collections::HashMap::new();
    for e in g.edges() {
        succ.entry(e.source()).or_default().push(e.target());
    }
    let mut queue: VecDeque<NodeId> = g.node_ids().filter(|n| indeg[n.index()] == 0).collect();
    let mut removed = 0usize;
    while let Some(v) = queue.pop_front() {
        removed += 1;
        if let Some(nexts) = succ.get(&v) {
            for &n in nexts {
                indeg[n.index()] -= 1;
                if indeg[n.index()] == 0 {
                    queue.push_back(n);
                }
            }
        }
    }
    removed < g.node_count()
}

/// Number of weakly connected components.
pub fn weakly_connected_components(g: &PropertyGraph) -> usize {
    let mut adj: std::collections::HashMap<NodeId, Vec<NodeId>> = std::collections::HashMap::new();
    for e in g.edges() {
        adj.entry(e.source()).or_default().push(e.target());
        adj.entry(e.target()).or_default().push(e.source());
    }
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut components = 0usize;
    for start in g.node_ids() {
        if !seen.insert(start) {
            continue;
        }
        components += 1;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            if let Some(nexts) = adj.get(&v) {
                for &n in nexts {
                    if seen.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn chain() -> PropertyGraph {
        GraphBuilder::new()
            .node("a", "A")
            .node("b", "B")
            .node("c", "C")
            .node("island", "I")
            .edge("a", "b", "next")
            .edge("b", "c", "next")
            .build()
            .unwrap()
    }

    #[test]
    fn reachability_follows_direction() {
        let g = chain();
        let a = g.node_ids().next().unwrap();
        let reach = reachable_from(&g, a);
        assert_eq!(reach.len(), 3);
        let c = g.nodes().find(|n| n.label() == "C").unwrap().id;
        let back = reachable_from(&g, c);
        assert_eq!(back, vec![c]);
    }

    #[test]
    fn reachable_from_missing_node_is_empty() {
        let g = chain();
        assert!(reachable_from(&g, crate::NodeId::from_index(99)).is_empty());
    }

    #[test]
    fn degrees() {
        let g = chain();
        let outd = out_degrees(&g);
        let ind = in_degrees(&g);
        assert_eq!(outd.iter().sum::<usize>(), 2);
        assert_eq!(ind.iter().sum::<usize>(), 2);
        assert_eq!(outd[0], 1); // a
        assert_eq!(ind[2], 1); // c
    }

    #[test]
    fn cycle_detection() {
        let mut g = chain();
        assert!(!has_cycle(&g));
        let a = g.node_ids().next().unwrap();
        let c = g.nodes().find(|n| n.label() == "C").unwrap().id;
        g.add_edge(c, a, "loop").unwrap();
        assert!(has_cycle(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("A");
        assert!(!has_cycle(&g));
        g.add_edge(a, a, "self").unwrap();
        assert!(has_cycle(&g));
    }

    #[test]
    fn component_count() {
        let g = chain();
        assert_eq!(weakly_connected_components(&g), 2); // chain + island
        assert_eq!(weakly_connected_components(&PropertyGraph::new()), 0);
    }
}
