//! Bounded handoff queue between the accept thread and the worker pool.
//!
//! The queue is the backpressure point of the daemon: the accept thread
//! [`try_push`](BoundedQueue::try_push)es each new connection and, when
//! the queue is at capacity, the push *fails immediately* — the caller
//! sheds the connection with `503` + `Retry-After` instead of letting
//! latency grow unboundedly. Workers block in
//! [`pop`](BoundedQueue::pop) until work arrives or the queue is
//! [`close`](BoundedQueue::close)d, which is how graceful shutdown
//! drains: close stops new pushes, pops continue until empty, then every
//! worker sees `None` and exits.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with reject-on-full semantics.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            capacity: capacity.max(1),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item`, or returns it if the queue is full or closed —
    /// never blocks. A full queue is the signal to shed load.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.queue.len() >= self.capacity {
            return Err(item);
        }
        state.queue.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (`Some`) or the queue is closed
    /// *and drained* (`None`). Closing wakes all blocked poppers.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Stops accepting pushes; blocked and future [`pop`](Self::pop)s
    /// drain what is queued and then return `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (racy, for the `/metrics` gauge).
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(8));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }
}
