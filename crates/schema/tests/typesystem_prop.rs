//! Property tests for the §4 type system: `valuesW` monotonicity across
//! wrappings, subtype-relation laws, and build determinism.

use gql_schema::{build_schema, Schema, Wrap, WrappedType};
use pgraph::Value;
use proptest::prelude::*;

fn schema() -> Schema {
    build_schema(
        &gql_sdl::parse(
            r#"
            scalar Time
            enum Unit { METER FEET }
            interface Food { name: String! }
            type Pizza implements Food { name: String! }
            type Pasta implements Food { name: String! }
            union Meal = Pizza | Pasta
            "#,
        )
        .unwrap(),
    )
    .unwrap()
}

fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[ -~]{0,8}".prop_map(Value::String),
        any::<bool>().prop_map(Value::Bool),
        "[a-z0-9]{1,6}".prop_map(Value::Id),
        prop_oneof![Just("METER"), Just("FEET"), Just("MILE")]
            .prop_map(|s| Value::Enum(s.to_owned())),
        Just(Value::Null),
    ]
}

fn any_value() -> impl Strategy<Value = Value> {
    let leaf = scalar_value();
    leaf.prop_recursive(1, 8, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

fn scalar_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("Int"),
        Just("Float"),
        Just("String"),
        Just("Boolean"),
        Just("ID"),
        Just("Time"),
        Just("Unit"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Rule 2 of valuesW: valuesW(t!) = valuesW(t) \ {null} — so t!
    /// conformance implies t conformance, and null never conforms to t!.
    #[test]
    fn non_null_conformance_implies_nullable(v in any_value(), base in scalar_name()) {
        let s = schema();
        let id = s.type_id(base).unwrap();
        let nn = WrappedType::non_null(id);
        let bare = WrappedType::bare(id);
        if s.value_conforms(&v, &nn) {
            prop_assert!(s.value_conforms(&v, &bare));
            prop_assert!(!v.is_null());
        }
        // And conversely: bare-conformant non-null values conform to t!.
        if s.value_conforms(&v, &bare) && !v.is_null() {
            prop_assert!(s.value_conforms(&v, &nn));
        }
    }

    /// Stricter list wrappings accept subsets: [t!]! ⊆ [t!] ⊆ [t] and
    /// [t!]! ⊆ [t]! ⊆ [t] as value spaces.
    #[test]
    fn list_wrapping_value_spaces_nest(v in any_value(), base in scalar_name()) {
        let s = schema();
        let id = s.type_id(base).unwrap();
        let l = |inner, outer| WrappedType::list(id, inner, outer);
        if s.value_conforms(&v, &l(true, true)) {
            prop_assert!(s.value_conforms(&v, &l(true, false)));
            prop_assert!(s.value_conforms(&v, &l(false, true)));
        }
        if s.value_conforms(&v, &l(true, false)) || s.value_conforms(&v, &l(false, true)) {
            prop_assert!(s.value_conforms(&v, &l(false, false)));
        }
    }

    /// A non-null, non-list value never conforms to a list type, and a
    /// list value never conforms to a bare/non-null scalar type.
    #[test]
    fn lists_and_scalars_do_not_cross(v in any_value(), base in scalar_name()) {
        let s = schema();
        let id = s.type_id(base).unwrap();
        if v.is_list() {
            prop_assert!(!s.value_conforms(&v, &WrappedType::non_null(id)));
        } else if !v.is_null() {
            prop_assert!(!s.value_conforms(
                &v,
                &WrappedType::list(id, false, true)
            ));
        }
    }

    /// ⊑S is reflexive on all 6 wrappings of all named types, and
    /// wrapping in non-null on the left preserves it (rule 6).
    #[test]
    fn subtype_reflexivity_and_rule6(wrap_ix in 0usize..6) {
        let s = schema();
        for id in s.type_ids() {
            let w = WrappedType { base: id, wrap: Wrap::ALL[wrap_ix] };
            prop_assert!(gql_schema::subtype::wrapped_subtype(&s, &w, &w));
            let nn = WrappedType::non_null(id);
            let bare = WrappedType::bare(id);
            prop_assert!(gql_schema::subtype::wrapped_subtype(&s, &nn, &bare));
        }
    }
}

/// ⊑S restricted to this schema is transitive (hierarchies are flat, so
/// this is checkable by enumeration).
#[test]
fn named_subtype_is_transitive_here() {
    let s = schema();
    let ids: Vec<_> = s.type_ids().collect();
    for &a in &ids {
        for &b in &ids {
            for &c in &ids {
                if gql_schema::subtype::named_subtype(&s, a, b)
                    && gql_schema::subtype::named_subtype(&s, b, c)
                {
                    assert!(
                        gql_schema::subtype::named_subtype(&s, a, c),
                        "⊑ not transitive: {} ⊑ {} ⊑ {}",
                        s.type_name(a),
                        s.type_name(b),
                        s.type_name(c)
                    );
                }
            }
        }
    }
}

/// Building the same document twice yields identical schemas.
#[test]
fn build_is_deterministic() {
    let doc = gql_sdl::parse(
        r#"
        type A @key(fields: ["x"]) { x: Int! @required r: [B] @distinct }
        type B { y: String }
        "#,
    )
    .unwrap();
    assert_eq!(build_schema(&doc).unwrap(), build_schema(&doc).unwrap());
}
