//! Server instrumentation behind `GET /metrics`, rendered in the
//! Prometheus text exposition format. Everything on the hot path is a
//! relaxed atomic increment; the only lock is the per-`(route, status)`
//! request-count map, which touches a handful of entries and is held for
//! nanoseconds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pg_schema::{Engine, Rule, ValidationMetrics};

/// Upper bounds (µs) of the request-latency histogram buckets; the last
/// implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_MICROS: [u64; 10] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000,
];

/// Upper bounds (µs) of the WAL append-latency histogram. Appends are
/// a buffered write plus, depending on the fsync policy, an `fdatasync`
/// — so the buckets reach lower than the request histogram (a cached
/// append is single-digit µs) but still cover slow rotational syncs.
pub const WAL_LATENCY_BUCKETS_MICROS: [u64; 8] = [5, 10, 25, 50, 100, 500, 2_500, 10_000];

/// Upper bounds of the events-per-`epoll_wait` histogram (how much work
/// each reactor wakeup batches); the last implicit bucket is `+Inf`.
/// Zero-event wakeups (timeout ticks) are not recorded.
pub const WAKEUP_EVENT_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Gauges and store counters sampled outside [`Metrics`] at render time
/// (open connections, live/evicted/recovered session counts, and — when
/// the server runs with `--data-dir` — the store's own counters).
#[derive(Default)]
pub struct RenderGauges {
    /// Connections currently open, per reactor core (index = core).
    pub core_connections: Vec<usize>,
    /// Whether this process currently serves as a replication follower
    /// (`Some(true)`), a leader (`Some(false)`), or runs outside a
    /// server (`None` — the role gauge is then omitted).
    pub role_follower: Option<bool>,
    /// Connections currently open across all cores (sampled separately
    /// from the per-core gauges, so the sum may differ transiently while
    /// a connection migrates).
    pub connections_open: usize,
    /// Sessions currently held by the registry.
    pub sessions_live: usize,
    /// Sessions rebuilt from the store at startup.
    pub sessions_recovered: u64,
    /// Sessions evicted by `--max-sessions` since startup.
    pub sessions_evicted: u64,
    /// Sessions currently inside an open dual-schema migration window.
    pub migration_windows_open: usize,
    /// The store's counters, when the server is durable.
    pub store: Option<pg_store::StoreStats>,
}

/// A schema-migration API action, counted per kind. The discriminant
/// indexes [`MIGRATION_ACTIONS`].
#[derive(Debug, Clone, Copy)]
pub enum MigrationAction {
    /// Impact analysis only (no window opened).
    Plan = 0,
    /// A dual-schema window was opened.
    Begin = 1,
    /// An open window committed (schema swapped).
    Commit = 2,
    /// An open window was abandoned.
    Abort = 3,
}

/// Label values for `pgschemad_migration_actions_total`, indexed by
/// [`MigrationAction`] discriminant.
const MIGRATION_ACTIONS: [&str; 4] = ["plan", "begin", "commit", "abort"];

/// [`ReplicationMetrics::state`] value: not replicating (leader, or no
/// `--follow` configured).
pub const REPL_STATE_NONE: u64 = 0;
/// [`ReplicationMetrics::state`] value: follower trying to (re)connect.
pub const REPL_STATE_CONNECTING: u64 = 1;
/// [`ReplicationMetrics::state`] value: follower tailing the leader.
pub const REPL_STATE_TAILING: u64 = 2;
/// [`ReplicationMetrics::state`] value: follower lost the leader and is
/// backing off between reconnect attempts.
pub const REPL_STATE_STALLED: u64 = 3;

/// Follower-side replication counters, mutated by the follower thread
/// with relaxed stores and rendered alongside everything else. All zero
/// on a leader.
#[derive(Default)]
pub struct ReplicationMetrics {
    /// Current follower state; one of the `REPL_STATE_*` constants.
    pub state: AtomicU64,
    /// Records the leader holds that this follower has not yet applied
    /// (`end_seq - next_from` of the last tail response).
    pub lag_records: AtomicU64,
    /// Bytes of WAL frames the leader holds beyond the last batch this
    /// follower received.
    pub lag_bytes: AtomicU64,
    /// Reconnect attempts since startup (the first connect counts).
    pub reconnects_total: AtomicU64,
    /// WAL records applied from the leader since startup.
    pub records_applied_total: AtomicU64,
    /// Sequence number of the newest record applied from the leader.
    pub last_applied_seq: AtomicU64,
}

const ENGINES: [Engine; 4] = [
    Engine::Naive,
    Engine::Indexed,
    Engine::Parallel,
    Engine::Incremental,
];

/// Per-engine counters aggregated from [`ValidationMetrics`] of the runs
/// the server executed.
#[derive(Default)]
struct EngineCounters {
    validations: AtomicU64,
    nodes_scanned: AtomicU64,
    edges_scanned: AtomicU64,
    elements_rechecked: AtomicU64,
    elements_total: AtomicU64,
}

/// All counters the daemon exports. One instance lives for the server's
/// lifetime, shared by every worker via `Arc`.
pub struct Metrics {
    /// `(route template, status)` → request count.
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// Cumulative histogram counts per bucket of
    /// [`LATENCY_BUCKETS_MICROS`], plus one `+Inf` slot at the end.
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_MICROS.len() + 1],
    latency_sum_micros: AtomicU64,
    latency_count: AtomicU64,
    /// Connections shed with `503` because the connection cap was hit.
    shed: AtomicU64,
    /// Connections accepted since startup (shed ones included).
    accepted: AtomicU64,
    /// `epoll_wait` returns that delivered at least one event, per core.
    wakeups: Vec<AtomicU64>,
    /// Events-per-wakeup histogram over [`WAKEUP_EVENT_BUCKETS`], plus
    /// one `+Inf` slot at the end; aggregated across cores.
    wakeup_event_buckets: [AtomicU64; WAKEUP_EVENT_BUCKETS.len() + 1],
    wakeup_event_sum: AtomicU64,
    /// Connections handed from one core to a session's home core.
    migrations: AtomicU64,
    /// Schema-migration API actions, indexed like [`MIGRATION_ACTIONS`].
    migration_actions: [AtomicU64; MIGRATION_ACTIONS.len()],
    /// Per-engine validation counters, indexed like [`ENGINES`].
    engines: [EngineCounters; 4],
    /// Violations found per rule across all runs, indexed like
    /// [`Rule::ALL`].
    rule_violations: [AtomicU64; Rule::ALL.len()],
    /// Wall time spent per rule kernel across all runs (nanoseconds),
    /// indexed like [`Rule::ALL`].
    rule_nanos: [AtomicU64; Rule::ALL.len()],
    /// WAL append-latency histogram (includes the fsync when the policy
    /// syncs on the append path), plus one `+Inf` slot at the end.
    wal_append_buckets: [AtomicU64; WAL_LATENCY_BUCKETS_MICROS.len() + 1],
    wal_append_sum_micros: AtomicU64,
    wal_append_count: AtomicU64,
    /// Follower-side replication counters (all zero on a leader).
    pub replication: ReplicationMetrics,
}

impl Metrics {
    /// Fresh, all-zero counters for a reactor with `cores` event loops.
    pub fn new(cores: usize) -> Self {
        Metrics {
            requests: Mutex::new(BTreeMap::new()),
            latency_buckets: Default::default(),
            latency_sum_micros: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            wakeups: (0..cores.max(1)).map(|_| AtomicU64::new(0)).collect(),
            wakeup_event_buckets: Default::default(),
            wakeup_event_sum: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            migration_actions: Default::default(),
            engines: Default::default(),
            rule_violations: Default::default(),
            rule_nanos: Default::default(),
            wal_append_buckets: Default::default(),
            wal_append_sum_micros: AtomicU64::new(0),
            wal_append_count: AtomicU64::new(0),
            replication: ReplicationMetrics::default(),
        }
    }

    /// Records the latency of one durable WAL append (write plus
    /// whatever syncing the fsync policy performed inline).
    pub fn record_wal_append(&self, micros: u64) {
        let bucket = WAL_LATENCY_BUCKETS_MICROS
            .iter()
            .position(|&b| micros <= b)
            .unwrap_or(WAL_LATENCY_BUCKETS_MICROS.len());
        self.wal_append_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.wal_append_sum_micros
            .fetch_add(micros, Ordering::Relaxed);
        self.wal_append_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one served request: its route template (e.g.
    /// `/sessions/{id}/deltas`), status code and latency.
    pub fn record_request(&self, route: &'static str, status: u16, micros: u64) {
        *self
            .requests
            .lock()
            .unwrap()
            .entry((route, status))
            .or_insert(0) += 1;
        let bucket = LATENCY_BUCKETS_MICROS
            .iter()
            .position(|&b| micros <= b)
            .unwrap_or(LATENCY_BUCKETS_MICROS.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection shed with `503` by the accept thread.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Records one accepted connection (whether served or shed).
    pub fn record_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one productive `epoll_wait` return on `core` that
    /// delivered `events` (> 0) readiness events.
    pub fn record_wakeup(&self, core: usize, events: usize) {
        if let Some(w) = self.wakeups.get(core) {
            w.fetch_add(1, Ordering::Relaxed);
        }
        let events = events as u64;
        let bucket = WAKEUP_EVENT_BUCKETS
            .iter()
            .position(|&b| events <= b)
            .unwrap_or(WAKEUP_EVENT_BUCKETS.len());
        self.wakeup_event_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.wakeup_event_sum.fetch_add(events, Ordering::Relaxed);
    }

    /// Records one connection migrated to its session's home core.
    pub fn record_migration(&self) {
        self.migrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one schema-migration API action on a session.
    pub fn record_migration_action(&self, action: MigrationAction) {
        self.migration_actions[action as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one validation run's [`ValidationMetrics`] into the
    /// per-engine counters.
    pub fn record_validation(&self, engine: Engine, m: Option<&ValidationMetrics>) {
        let c = &self.engines[engine_index(engine)];
        c.validations.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = m {
            c.nodes_scanned
                .fetch_add(m.nodes_scanned, Ordering::Relaxed);
            c.edges_scanned
                .fetch_add(m.edges_scanned, Ordering::Relaxed);
            c.elements_rechecked
                .fetch_add(m.elements_rechecked, Ordering::Relaxed);
            c.elements_total
                .fetch_add(m.elements_total, Ordering::Relaxed);
            for rm in &m.rules {
                let i = rule_index(rm.rule);
                self.rule_violations[i].fetch_add(rm.violations as u64, Ordering::Relaxed);
                self.rule_nanos[i].fetch_add(rm.nanos, Ordering::Relaxed);
            }
        }
    }

    /// Renders every counter in the Prometheus text format. Gauges that
    /// live outside this struct — queue depth, session counts and the
    /// store's counters — are sampled by the caller into a
    /// [`RenderGauges`] at render time.
    pub fn render(&self, g: &RenderGauges) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str(
            "# HELP pgschemad_http_requests_total Requests served, by route and status.\n",
        );
        out.push_str("# TYPE pgschemad_http_requests_total counter\n");
        for ((route, status), count) in self.requests.lock().unwrap().iter() {
            out.push_str(&format!(
                "pgschemad_http_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str(
            "# HELP pgschemad_request_duration_micros Request latency histogram (microseconds).\n",
        );
        out.push_str("# TYPE pgschemad_request_duration_micros histogram\n");
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKETS_MICROS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "pgschemad_request_duration_micros_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS_MICROS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "pgschemad_request_duration_micros_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "pgschemad_request_duration_micros_sum {}\n",
            self.latency_sum_micros.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "pgschemad_request_duration_micros_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP pgschemad_validations_total Validation runs, by engine.\n");
        out.push_str("# TYPE pgschemad_validations_total counter\n");
        for engine in ENGINES {
            let c = &self.engines[engine_index(engine)];
            out.push_str(&format!(
                "pgschemad_validations_total{{engine=\"{}\"}} {}\n",
                engine.name(),
                c.validations.load(Ordering::Relaxed)
            ));
        }
        type Getter = fn(&EngineCounters) -> u64;
        let families: [(&str, &str, Getter); 4] = [
            (
                "pgschemad_nodes_scanned_total",
                "Nodes scanned by validation runs, by engine.",
                |c| c.nodes_scanned.load(Ordering::Relaxed),
            ),
            (
                "pgschemad_edges_scanned_total",
                "Edges scanned by validation runs, by engine.",
                |c| c.edges_scanned.load(Ordering::Relaxed),
            ),
            (
                "pgschemad_elements_rechecked_total",
                "Elements re-checked (dirty region for incremental runs), by engine.",
                |c| c.elements_rechecked.load(Ordering::Relaxed),
            ),
            (
                "pgschemad_elements_total",
                "Live elements of the validated graphs, by engine.",
                |c| c.elements_total.load(Ordering::Relaxed),
            ),
        ];
        for (metric, help, get) in families {
            out.push_str(&format!(
                "# HELP {metric} {help}\n# TYPE {metric} counter\n"
            ));
            for engine in ENGINES {
                out.push_str(&format!(
                    "{metric}{{engine=\"{}\"}} {}\n",
                    engine.name(),
                    get(&self.engines[engine_index(engine)])
                ));
            }
        }

        out.push_str(
            "# HELP pgschemad_rule_violations_total Violations found by validation runs, by rule.\n",
        );
        out.push_str("# TYPE pgschemad_rule_violations_total counter\n");
        for (i, rule) in Rule::ALL.iter().enumerate() {
            out.push_str(&format!(
                "pgschemad_rule_violations_total{{rule=\"{rule}\"}} {}\n",
                self.rule_violations[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP pgschemad_rule_nanos_total Wall time spent per rule kernel (nanoseconds).\n",
        );
        out.push_str("# TYPE pgschemad_rule_nanos_total counter\n");
        for (i, rule) in Rule::ALL.iter().enumerate() {
            out.push_str(&format!(
                "pgschemad_rule_nanos_total{{rule=\"{rule}\"}} {}\n",
                self.rule_nanos[i].load(Ordering::Relaxed)
            ));
        }

        out.push_str("# HELP pgschemad_sessions_live Incremental sessions currently held.\n");
        out.push_str("# TYPE pgschemad_sessions_live gauge\n");
        out.push_str(&format!("pgschemad_sessions_live {}\n", g.sessions_live));
        out.push_str(
            "# HELP pgschemad_sessions_recovered_total Sessions rebuilt from the store at startup.\n",
        );
        out.push_str("# TYPE pgschemad_sessions_recovered_total counter\n");
        out.push_str(&format!(
            "pgschemad_sessions_recovered_total {}\n",
            g.sessions_recovered
        ));
        out.push_str(
            "# HELP pgschemad_sessions_evicted_total Sessions evicted by --max-sessions.\n",
        );
        out.push_str("# TYPE pgschemad_sessions_evicted_total counter\n");
        out.push_str(&format!(
            "pgschemad_sessions_evicted_total {}\n",
            g.sessions_evicted
        ));
        out.push_str("# HELP pgschemad_connections_open Connections currently open.\n");
        out.push_str("# TYPE pgschemad_connections_open gauge\n");
        out.push_str(&format!(
            "pgschemad_connections_open {}\n",
            g.connections_open
        ));
        out.push_str(
            "# HELP pgschemad_core_connections Connections currently owned by each reactor core.\n",
        );
        out.push_str("# TYPE pgschemad_core_connections gauge\n");
        for (core, count) in g.core_connections.iter().enumerate() {
            out.push_str(&format!(
                "pgschemad_core_connections{{core=\"{core}\"}} {count}\n"
            ));
        }
        out.push_str(
            "# HELP pgschemad_connections_accepted_total Connections accepted since startup.\n",
        );
        out.push_str("# TYPE pgschemad_connections_accepted_total counter\n");
        out.push_str(&format!(
            "pgschemad_connections_accepted_total {}\n",
            self.accepted.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP pgschemad_shed_total Connections shed with 503 (at the connection cap).\n",
        );
        out.push_str("# TYPE pgschemad_shed_total counter\n");
        out.push_str(&format!("pgschemad_shed_total {}\n", self.shed_count()));
        out.push_str(
            "# HELP pgschemad_wakeups_total Productive epoll_wait returns, by reactor core.\n",
        );
        out.push_str("# TYPE pgschemad_wakeups_total counter\n");
        for (core, w) in self.wakeups.iter().enumerate() {
            out.push_str(&format!(
                "pgschemad_wakeups_total{{core=\"{core}\"}} {}\n",
                w.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP pgschemad_wakeup_events Events delivered per productive epoll_wait return.\n",
        );
        out.push_str("# TYPE pgschemad_wakeup_events histogram\n");
        let mut cumulative = 0u64;
        for (i, &bound) in WAKEUP_EVENT_BUCKETS.iter().enumerate() {
            cumulative += self.wakeup_event_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "pgschemad_wakeup_events_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.wakeup_event_buckets[WAKEUP_EVENT_BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "pgschemad_wakeup_events_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "pgschemad_wakeup_events_sum {}\n",
            self.wakeup_event_sum.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("pgschemad_wakeup_events_count {cumulative}\n"));
        out.push_str(
            "# HELP pgschemad_session_migrations_total Connections handed to a session's home core.\n",
        );
        out.push_str("# TYPE pgschemad_session_migrations_total counter\n");
        out.push_str(&format!(
            "pgschemad_session_migrations_total {}\n",
            self.migrations.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP pgschemad_migration_actions_total Schema-migration actions taken, \
             by action.\n",
        );
        out.push_str("# TYPE pgschemad_migration_actions_total counter\n");
        for (i, name) in MIGRATION_ACTIONS.iter().enumerate() {
            out.push_str(&format!(
                "pgschemad_migration_actions_total{{action=\"{name}\"}} {}\n",
                self.migration_actions[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP pgschemad_migration_windows_open Sessions currently inside an open \
             dual-schema migration window.\n",
        );
        out.push_str("# TYPE pgschemad_migration_windows_open gauge\n");
        out.push_str(&format!(
            "pgschemad_migration_windows_open {}\n",
            g.migration_windows_open
        ));

        out.push_str(
            "# HELP pgschemad_wal_append_duration_micros WAL append latency histogram \
             (microseconds; includes inline fsync).\n",
        );
        out.push_str("# TYPE pgschemad_wal_append_duration_micros histogram\n");
        let mut cumulative = 0u64;
        for (i, &bound) in WAL_LATENCY_BUCKETS_MICROS.iter().enumerate() {
            cumulative += self.wal_append_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "pgschemad_wal_append_duration_micros_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative +=
            self.wal_append_buckets[WAL_LATENCY_BUCKETS_MICROS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "pgschemad_wal_append_duration_micros_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "pgschemad_wal_append_duration_micros_sum {}\n",
            self.wal_append_sum_micros.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "pgschemad_wal_append_duration_micros_count {}\n",
            self.wal_append_count.load(Ordering::Relaxed)
        ));

        if let Some(follower) = g.role_follower {
            out.push_str(
                "# HELP pgschemad_replication_follower 1 while this process is a follower, \
                 0 once it is (or becomes) the leader.\n",
            );
            out.push_str("# TYPE pgschemad_replication_follower gauge\n");
            out.push_str(&format!(
                "pgschemad_replication_follower {}\n",
                u8::from(follower)
            ));
        }
        let r = &self.replication;
        let repl_gauges: [(&str, &str, u64); 4] = [
            (
                "pgschemad_replication_state",
                "Follower state: 0 none, 1 connecting, 2 tailing, 3 stalled.",
                r.state.load(Ordering::Relaxed),
            ),
            (
                "pgschemad_replication_lag_records",
                "Leader records not yet applied by this follower.",
                r.lag_records.load(Ordering::Relaxed),
            ),
            (
                "pgschemad_replication_lag_bytes",
                "Leader WAL bytes not yet received by this follower.",
                r.lag_bytes.load(Ordering::Relaxed),
            ),
            (
                "pgschemad_replication_last_applied_seq",
                "Newest leader sequence number applied by this follower.",
                r.last_applied_seq.load(Ordering::Relaxed),
            ),
        ];
        for (metric, help, value) in repl_gauges {
            out.push_str(&format!(
                "# HELP {metric} {help}\n# TYPE {metric} gauge\n{metric} {value}\n"
            ));
        }
        let repl_counters: [(&str, &str, u64); 2] = [
            (
                "pgschemad_replication_reconnects_total",
                "Connection attempts to the leader since startup.",
                r.reconnects_total.load(Ordering::Relaxed),
            ),
            (
                "pgschemad_replication_records_applied_total",
                "WAL records applied from the leader since startup.",
                r.records_applied_total.load(Ordering::Relaxed),
            ),
        ];
        for (metric, help, value) in repl_counters {
            out.push_str(&format!(
                "# HELP {metric} {help}\n# TYPE {metric} counter\n{metric} {value}\n"
            ));
        }

        if let Some(stats) = &g.store {
            let counters: [(&str, &str, u64); 4] = [
                (
                    "pgschemad_wal_appends_total",
                    "Records appended to the WAL since startup.",
                    stats.appends,
                ),
                (
                    "pgschemad_wal_fsyncs_total",
                    "Explicit fsyncs issued by the store since startup.",
                    stats.fsyncs,
                ),
                (
                    "pgschemad_wal_appended_bytes_total",
                    "Bytes appended to the WAL since startup.",
                    stats.appended_bytes,
                ),
                (
                    "pgschemad_store_snapshots_total",
                    "Snapshots written by compaction since startup.",
                    stats.snapshots,
                ),
            ];
            for (metric, help, value) in counters {
                out.push_str(&format!(
                    "# HELP {metric} {help}\n# TYPE {metric} counter\n{metric} {value}\n"
                ));
            }
            out.push_str(
                "# HELP pgschemad_wal_size_bytes Live WAL bytes not yet superseded by a snapshot.\n",
            );
            out.push_str("# TYPE pgschemad_wal_size_bytes gauge\n");
            out.push_str(&format!(
                "pgschemad_wal_size_bytes {}\n",
                stats.wal_size_bytes
            ));
        }
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new(1)
    }
}

fn rule_index(rule: Rule) -> usize {
    Rule::ALL
        .iter()
        .position(|&r| r == rule)
        .expect("Rule::ALL covers every rule")
}

fn engine_index(engine: Engine) -> usize {
    match engine {
        Engine::Naive => 0,
        Engine::Indexed => 1,
        Engine::Parallel => 2,
        Engine::Incremental => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_families() {
        let m = Metrics::new(2);
        m.record_request("/validate", 200, 120);
        m.record_request("/validate", 200, 80_000);
        m.record_request("/healthz", 200, 3);
        m.record_shed();
        m.record_accept();
        m.record_accept();
        m.record_wakeup(0, 3);
        m.record_wakeup(1, 70);
        m.record_migration();
        m.record_migration_action(MigrationAction::Plan);
        m.record_validation(Engine::Indexed, None);
        m.record_wal_append(7);
        m.replication
            .state
            .store(REPL_STATE_TAILING, Ordering::Relaxed);
        m.replication.lag_records.store(12, Ordering::Relaxed);
        m.replication
            .reconnects_total
            .fetch_add(2, Ordering::Relaxed);
        let text = m.render(&RenderGauges {
            core_connections: vec![4, 3],
            role_follower: Some(true),
            connections_open: 7,
            sessions_live: 5,
            sessions_recovered: 3,
            sessions_evicted: 1,
            migration_windows_open: 2,
            store: Some(pg_store::StoreStats {
                appends: 9,
                appended_bytes: 4096,
                ..Default::default()
            }),
        });
        assert!(
            text.contains("pgschemad_http_requests_total{route=\"/validate\",status=\"200\"} 2")
        );
        assert!(text.contains("pgschemad_request_duration_micros_count 3"));
        assert!(text.contains("pgschemad_request_duration_micros_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("pgschemad_validations_total{engine=\"indexed\"} 1"));
        assert!(text.contains("pgschemad_sessions_live 5"));
        assert!(text.contains("pgschemad_sessions_recovered_total 3"));
        assert!(text.contains("pgschemad_sessions_evicted_total 1"));
        assert!(text.contains("pgschemad_connections_open 7"));
        assert!(text.contains("pgschemad_core_connections{core=\"0\"} 4"));
        assert!(text.contains("pgschemad_core_connections{core=\"1\"} 3"));
        assert!(text.contains("pgschemad_connections_accepted_total 2"));
        assert!(text.contains("pgschemad_wakeups_total{core=\"0\"} 1"));
        assert!(text.contains("pgschemad_wakeups_total{core=\"1\"} 1"));
        assert!(text.contains("pgschemad_wakeup_events_bucket{le=\"4\"} 1"));
        assert!(text.contains("pgschemad_wakeup_events_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pgschemad_wakeup_events_sum 73"));
        assert!(text.contains("pgschemad_wakeup_events_count 2"));
        assert!(text.contains("pgschemad_session_migrations_total 1"));
        assert!(text.contains("pgschemad_migration_actions_total{action=\"plan\"} 1"));
        assert!(text.contains("pgschemad_migration_actions_total{action=\"commit\"} 0"));
        assert!(text.contains("pgschemad_migration_windows_open 2"));
        assert!(text.contains("pgschemad_shed_total 1"));
        assert!(text.contains("pgschemad_wal_append_duration_micros_bucket{le=\"10\"} 1"));
        assert!(text.contains("pgschemad_wal_append_duration_micros_count 1"));
        assert!(text.contains("pgschemad_wal_appends_total 9"));
        assert!(text.contains("pgschemad_wal_appended_bytes_total 4096"));
        assert!(text.contains("pgschemad_wal_size_bytes 0"));
        assert!(text.contains("pgschemad_replication_follower 1"));
        assert!(text.contains("pgschemad_replication_state 2"));
        assert!(text.contains("pgschemad_replication_lag_records 12"));
        assert!(text.contains("pgschemad_replication_reconnects_total 2"));
        // Per-rule families render a sample for every rule even before
        // any run recorded rule metrics.
        assert!(text.contains("pgschemad_rule_violations_total{rule=\"DS7\"} 0"));
        assert!(text.contains("pgschemad_rule_nanos_total{rule=\"SS4\"} 0"));
    }

    #[test]
    fn rule_counters_accumulate_across_runs() {
        use pg_schema::{RuleMetrics, ValidationMetrics};
        let m = Metrics::new(1);
        let run = |ws1_violations| ValidationMetrics {
            engine: "indexed",
            threads: 1,
            rules: vec![
                RuleMetrics {
                    rule: Rule::WS1,
                    nanos: 1_000,
                    elements_scanned: 10,
                    violations: ws1_violations,
                },
                RuleMetrics {
                    rule: Rule::DS7,
                    nanos: 500,
                    elements_scanned: 4,
                    violations: 1,
                },
            ],
            ..ValidationMetrics::default()
        };
        m.record_validation(Engine::Indexed, Some(&run(2)));
        m.record_validation(Engine::Parallel, Some(&run(3)));
        let text = m.render(&RenderGauges::default());
        // Without a store, the store-only families stay absent.
        assert!(!text.contains("pgschemad_wal_appends_total"));
        assert!(text.contains("pgschemad_rule_violations_total{rule=\"WS1\"} 5"));
        assert!(text.contains("pgschemad_rule_violations_total{rule=\"DS7\"} 2"));
        assert!(text.contains("pgschemad_rule_nanos_total{rule=\"WS1\"} 2000"));
        assert!(text.contains("pgschemad_rule_nanos_total{rule=\"DS7\"} 1000"));
        assert!(text.contains("pgschemad_rule_violations_total{rule=\"SS1\"} 0"));
    }

    #[test]
    fn histogram_is_cumulative() {
        let m = Metrics::new(1);
        m.record_request("/healthz", 200, 10); // le=50
        m.record_request("/healthz", 200, 60); // le=100
        let text = m.render(&RenderGauges::default());
        assert!(text.contains("pgschemad_request_duration_micros_bucket{le=\"50\"} 1"));
        assert!(text.contains("pgschemad_request_duration_micros_bucket{le=\"100\"} 2"));
        assert!(text.contains("pgschemad_request_duration_micros_bucket{le=\"250\"} 2"));
    }
}
