//! The schema, compiled onto a symbol space.
//!
//! The columnar kernels identify labels and property keys by [`Sym`], so
//! every per-element schema question ("is this label a subtype of the
//! site?", "which attribute backs this property?") must be answerable
//! without touching strings. [`SymSchema::build`] interns every name the
//! schema mentions into the graph's [`SymbolTable`] and then compiles one
//! [`LabelRow`] **per symbol in the table** — graph labels, property
//! keys and schema names alike — with:
//!
//! * the resolved [`TypeId`] (if the symbol names a schema type) and its
//!   sorted named-supertype set, turning `λ(v) ⊑ t` into a binary search
//!   over `u32`s;
//! * symbol-keyed attribute / relationship / field tables with the
//!   violation-report strings (`display_type` renderings, base type
//!   names) precomputed, so emitting a violation allocates exactly the
//!   strings the report needs and nothing else;
//! * per constraint site, the precomputed wrapped-subtype bit DS4 asks
//!   for.
//!
//! Because rows cover *every* symbol interned before the build, the
//! caller must intern the graph side first (freeze the graph, or build
//! the dirty-region [`PartialCols`](super::partial::PartialCols)) and
//! build the `SymSchema` second — symbols interned afterwards fall back
//! to an empty row, which answers every question the way an unknown
//! label would.

use gql_schema::TypeId;
use pgraph::{Sym, SymbolTable};

use crate::pgschema::PgSchema;

/// One attribute definition, symbol-keyed (WS1, DS5, SS2).
pub(crate) struct AttrSlot {
    /// The declared value type.
    pub(crate) ty: gql_schema::WrappedType,
    /// `display_type(ty)` — the report's `expected` string, precomputed.
    pub(crate) expected: String,
}

/// One edge-property definition of a relationship (WS2, SS3).
pub(crate) struct EdgePropSlot {
    pub(crate) ty: gql_schema::WrappedType,
    pub(crate) expected: String,
}

/// One relationship definition, symbol-keyed (WS2, SS3, SS4).
pub(crate) struct RelSlot {
    /// Edge properties sorted by name symbol.
    edge_props: Vec<(Sym, EdgePropSlot)>,
}

impl RelSlot {
    /// The edge-property definition for a property-key symbol.
    pub(crate) fn edge_prop(&self, prop: Sym) -> Option<&EdgePropSlot> {
        self.edge_props
            .binary_search_by_key(&prop, |&(k, _)| k)
            .ok()
            .map(|i| &self.edge_props[i].1)
    }
}

/// One field definition (attribute *or* relationship) of a type —
/// WS3/WS4 consult all fields.
pub(crate) struct FieldSlot {
    /// `basetype` of the field's declared type.
    pub(crate) base: TypeId,
    /// Whether the declared type is a list type (WS4).
    pub(crate) is_list: bool,
    /// `type_name(base)` — WS3's `expected` string, precomputed.
    pub(crate) base_name: String,
}

/// Everything the kernels ask about one label symbol.
pub(crate) struct LabelRow {
    /// True when the symbol names an object type (SS1).
    pub(crate) is_object: bool,
    /// Named supertypes of `ty`, sorted — `⊑` is a binary search.
    supers: Vec<TypeId>,
    /// Per constraint site (index into [`SymSchema::sites`]): whether
    /// this label sits below the site's wrapped field type (DS4).
    site_target_ok: Vec<bool>,
    /// Attribute definitions sorted by name symbol.
    attrs: Vec<(Sym, AttrSlot)>,
    /// Relationship definitions sorted by name symbol.
    rels: Vec<(Sym, RelSlot)>,
    /// All field definitions sorted by name symbol.
    fields: Vec<(Sym, FieldSlot)>,
}

impl LabelRow {
    /// `λ(v) ⊑ t` for this label.
    #[inline]
    pub(crate) fn subtype(&self, t: TypeId) -> bool {
        self.supers.binary_search(&t).is_ok()
    }

    /// The attribute definition backing a property-key symbol.
    pub(crate) fn attr(&self, prop: Sym) -> Option<&AttrSlot> {
        self.attrs
            .binary_search_by_key(&prop, |&(k, _)| k)
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// The relationship definition backing an edge-label symbol.
    pub(crate) fn rel(&self, name: Sym) -> Option<&RelSlot> {
        self.rels
            .binary_search_by_key(&name, |&(k, _)| k)
            .ok()
            .map(|i| &self.rels[i].1)
    }

    /// The field definition (any class) for a field-name symbol.
    pub(crate) fn field(&self, name: Sym) -> Option<&FieldSlot> {
        self.fields
            .binary_search_by_key(&name, |&(k, _)| k)
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// DS4's `label ⊑ wrapped(site.rel.ty)` bit for site index `si`.
    #[inline]
    pub(crate) fn site_target_ok(&self, si: usize) -> bool {
        self.site_target_ok.get(si).copied().unwrap_or(false)
    }
}

fn empty_row() -> &'static LabelRow {
    static EMPTY: LabelRow = LabelRow {
        is_object: false,
        supers: Vec::new(),
        site_target_ok: Vec::new(),
        attrs: Vec::new(),
        rels: Vec::new(),
        fields: Vec::new(),
    };
    &EMPTY
}

/// One directive-bearing relationship site (DS1–DS4, DS6), with the
/// relationship name interned and the report strings precomputed.
pub(crate) struct SiteSlot {
    /// The type carrying the field definition.
    pub(crate) site: TypeId,
    /// `type_name(site)` (DS4's `site` report field).
    pub(crate) site_name: String,
    /// The relationship name's symbol.
    pub(crate) rel_sym: Sym,
    /// The relationship name (report `field`).
    pub(crate) rel_name: String,
    /// `@distinct` (DS1).
    pub(crate) distinct: bool,
    /// `@noLoops` (DS2).
    pub(crate) no_loops: bool,
    /// `@uniqueForTarget` (DS3).
    pub(crate) unique_for_target: bool,
    /// `@requiredForTarget` (DS4).
    pub(crate) required_for_target: bool,
    /// `@required` (DS6).
    pub(crate) required: bool,
}

/// One required attribute site (DS5), in the schedule's fixed order
/// (object types then interface types, field order within a type).
pub(crate) struct Ds5Site {
    /// The type declaring the required attribute.
    pub(crate) t: TypeId,
    /// The attribute name (report `field`).
    pub(crate) name: String,
    /// Its symbol.
    pub(crate) sym: Sym,
    /// Whether the declared type is a list (empty-list check).
    pub(crate) is_list: bool,
}

/// One `@key` constraint (DS7) with its scalar fields interned.
pub(crate) struct KeySlot {
    /// The key's site type.
    pub(crate) site: TypeId,
    /// `type_name(site)` (report `ty`).
    pub(crate) ty_name: String,
    /// All declared key fields (report `fields`).
    pub(crate) fields: Vec<String>,
    /// Symbols of the scalar key fields (tuple columns).
    pub(crate) scalar_syms: Vec<Sym>,
    /// Names of the scalar key fields, parallel to `scalar_syms`.
    pub(crate) scalar_names: Vec<String>,
}

/// The compiled, symbol-keyed view of a [`PgSchema`]. See module docs.
pub(crate) struct SymSchema {
    rows: Vec<LabelRow>,
    /// Constraint sites in schema order.
    pub(crate) sites: Vec<SiteSlot>,
    /// DS5 sites in schedule order.
    pub(crate) ds5_sites: Vec<Ds5Site>,
    /// Key constraints in schema order.
    pub(crate) keys: Vec<KeySlot>,
}

impl SymSchema {
    /// Interns every schema name into `symbols` and compiles one row per
    /// symbol currently in the table. Graph-side symbols must already be
    /// interned (see module docs).
    pub(crate) fn build(s: &PgSchema, symbols: &mut SymbolTable) -> SymSchema {
        let schema = s.schema();

        // Phase 1: intern every name the kernels may look up, so phase 2
        // resolves them and the row table covers schema-named labels.
        for t in schema.type_ids() {
            symbols.intern(schema.type_name(t));
            for f in schema.fields(t) {
                symbols.intern(&f.name);
                for a in &f.args {
                    symbols.intern(&a.name);
                }
            }
        }

        let sites: Vec<SiteSlot> = s
            .constraint_sites()
            .iter()
            .map(|cs| SiteSlot {
                site: cs.site,
                site_name: schema.type_name(cs.site).to_owned(),
                rel_sym: symbols.intern(&cs.rel.name),
                rel_name: cs.rel.name.clone(),
                distinct: cs.rel.distinct,
                no_loops: cs.rel.no_loops,
                unique_for_target: cs.rel.unique_for_target,
                required_for_target: cs.rel.required_for_target,
                required: cs.rel.required,
            })
            .collect();

        let ds5_types: Vec<TypeId> = schema
            .object_types()
            .chain(schema.interface_types())
            .collect();
        let mut ds5_sites = Vec::new();
        for t in ds5_types {
            for a in s.attributes(t).iter().filter(|a| a.required) {
                ds5_sites.push(Ds5Site {
                    t,
                    name: a.name.clone(),
                    sym: symbols.intern(&a.name),
                    is_list: a.ty.is_list(),
                });
            }
        }

        let keys: Vec<KeySlot> = s
            .keys()
            .iter()
            .map(|key| {
                let mut scalar_syms = Vec::new();
                let mut scalar_names = Vec::new();
                for f in &key.fields {
                    let scalar = schema
                        .field(key.site, f)
                        .is_some_and(|fi| schema.is_scalar(fi.ty.base));
                    if scalar {
                        scalar_syms.push(symbols.intern(f));
                        scalar_names.push(f.clone());
                    }
                }
                KeySlot {
                    site: key.site,
                    ty_name: schema.type_name(key.site).to_owned(),
                    fields: key.fields.clone(),
                    scalar_syms,
                    scalar_names,
                }
            })
            .collect();

        // Phase 2: one row per symbol. Nothing is interned here, so row
        // index == symbol index for every symbol the kernels can see.
        let count = symbols.len();
        let mut rows = Vec::with_capacity(count);
        for ix in 0..count {
            let name = symbols.resolve(Sym::from_index(ix));
            let ty = s.label_type(name);
            let supers: Vec<TypeId> = match ty {
                Some(_) => {
                    let mut v: Vec<TypeId> = schema
                        .type_ids()
                        .filter(|&t| s.label_subtype(name, t))
                        .collect();
                    v.sort_unstable();
                    v
                }
                None => Vec::new(),
            };
            let site_target_ok: Vec<bool> = s
                .constraint_sites()
                .iter()
                .map(|cs| s.label_subtype_wrapped(name, &cs.rel.ty))
                .collect();
            let mut attrs = Vec::new();
            let mut rels = Vec::new();
            let mut fields = Vec::new();
            if let Some(t) = ty {
                for a in s.attributes(t) {
                    let sym = symbols.lookup(&a.name).expect("interned in phase 1");
                    attrs.push((
                        sym,
                        AttrSlot {
                            ty: a.ty,
                            expected: s.display_type(&a.ty),
                        },
                    ));
                }
                attrs.sort_unstable_by_key(|&(k, _)| k);
                for r in s.relationships(t) {
                    let sym = symbols.lookup(&r.name).expect("interned in phase 1");
                    let mut edge_props: Vec<(Sym, EdgePropSlot)> = r
                        .edge_props
                        .iter()
                        .map(|ep| {
                            (
                                symbols.lookup(&ep.name).expect("interned in phase 1"),
                                EdgePropSlot {
                                    ty: ep.ty,
                                    expected: s.display_type(&ep.ty),
                                },
                            )
                        })
                        .collect();
                    edge_props.sort_unstable_by_key(|&(k, _)| k);
                    rels.push((sym, RelSlot { edge_props }));
                }
                rels.sort_unstable_by_key(|&(k, _)| k);
                for f in schema.fields(t) {
                    let sym = symbols.lookup(&f.name).expect("interned in phase 1");
                    fields.push((
                        sym,
                        FieldSlot {
                            base: f.ty.base,
                            is_list: f.ty.is_list(),
                            base_name: schema.type_name(f.ty.base).to_owned(),
                        },
                    ));
                }
                fields.sort_unstable_by_key(|&(k, _)| k);
            }
            rows.push(LabelRow {
                is_object: s.is_object_label(name),
                supers,
                site_target_ok,
                attrs,
                rels,
                fields,
            });
        }

        SymSchema {
            rows,
            sites,
            ds5_sites,
            keys,
        }
    }

    /// The row for a label symbol; symbols interned after the build get
    /// the unknown-label row.
    #[inline]
    pub(crate) fn row(&self, sym: Sym) -> &LabelRow {
        self.rows.get(sym.index()).unwrap_or_else(|| empty_row())
    }

    /// `λ(v) ⊑ t` by symbol.
    #[inline]
    pub(crate) fn label_subtype(&self, label: Sym, t: TypeId) -> bool {
        self.row(label).subtype(t)
    }

    /// `λ(v) ⊑ t` for a possibly-unknown label (edge endpoints).
    #[inline]
    pub(crate) fn label_subtype_opt(&self, label: Option<Sym>, t: TypeId) -> bool {
        label.is_some_and(|l| self.label_subtype(l, t))
    }

    /// The relationship definition `(λ(src), name)`, tolerating an
    /// unknown source label.
    #[inline]
    pub(crate) fn relationship(&self, label: Option<Sym>, name: Sym) -> Option<&RelSlot> {
        self.row(label?).rel(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pg(src: &str) -> PgSchema {
        PgSchema::parse(src).unwrap()
    }

    #[test]
    fn rows_cover_graph_symbols_interned_first() {
        let mut syms = SymbolTable::new();
        // Graph side interned first: a label the schema knows, one it
        // does not, and a property key.
        let user = syms.intern("User");
        let ghost = syms.intern("Ghost");
        let login = syms.intern("login");
        let s = pg(r#"
            type User @key(fields: ["login"]) {
                login: String! @required
                follows: [User] @distinct
            }
        "#);
        let ss = SymSchema::build(&s, &mut syms);
        let user_t = s.label_type("User").unwrap();
        assert!(ss.row(user).is_object);
        assert!(ss.label_subtype(user, user_t));
        assert!(!ss.row(ghost).is_object);
        assert!(!ss.label_subtype(ghost, user_t));
        // Attribute lookup by property-key symbol.
        let attr = ss.row(user).attr(login).unwrap();
        assert_eq!(attr.expected, "String!");
        assert!(ss.row(ghost).attr(login).is_none());
        // Relationship lookup via the site table.
        assert_eq!(ss.sites.len(), 1);
        assert!(ss.sites[0].distinct);
        assert!(ss.relationship(Some(user), ss.sites[0].rel_sym).is_some());
        assert!(ss.relationship(None, ss.sites[0].rel_sym).is_none());
        // Key slots carry interned scalar fields.
        assert_eq!(ss.keys.len(), 1);
        assert_eq!(ss.keys[0].scalar_syms, vec![login]);
        assert_eq!(ss.keys[0].ty_name, "User");
    }

    #[test]
    fn foreign_symbols_get_the_empty_row() {
        let mut syms = SymbolTable::new();
        let s = pg("type A { x: Int }");
        let ss = SymSchema::build(&s, &mut syms);
        let late = syms.intern("interned-after-build");
        assert!(ss.row(late).attr(late).is_none());
        assert!(!ss.row(late).is_object);
        assert!(!ss.row(late).site_target_ok(0));
    }

    #[test]
    fn interface_supertypes_are_searchable() {
        let mut syms = SymbolTable::new();
        let s = pg(r#"
            interface IT { x: Int }
            type A implements IT { x: Int }
            type B { y: Int }
        "#);
        let ss = SymSchema::build(&s, &mut syms);
        let a = syms.lookup("A").unwrap();
        let b = syms.lookup("B").unwrap();
        let it = s.label_type("IT").unwrap();
        assert!(ss.label_subtype(a, it));
        assert!(!ss.label_subtype(b, it));
        assert!(ss.label_subtype_opt(Some(a), it));
        assert!(!ss.label_subtype_opt(None, it));
    }
}
