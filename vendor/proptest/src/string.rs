//! String generation from a regex-subset pattern, enabling
//! `"[A-Z][a-z]{0,5}" as Strategy<Value = String>`.
//!
//! Supported syntax: literal characters, escapes (`\n`, `\t`, `\r`,
//! `\\`, `\-`, `\]`), character classes `[...]` with ranges, `\PC`
//! (any non-control character) and quantifiers `{m}`, `{m,n}`, `?`,
//! `*`, `+`. This covers every pattern in the workspace's tests;
//! unsupported syntax panics with a clear message rather than silently
//! generating the wrong language.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One parsed pattern element: a set of candidate chars plus an
/// inclusive repetition window.
#[derive(Debug, Clone)]
struct Atom {
    /// Inclusive char ranges; a single char is a degenerate range.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

impl Atom {
    fn total(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum()
    }

    fn pick(&self, rng: &mut TestRng) -> char {
        let mut ix = rng.below(self.total());
        for &(lo, hi) in &self.ranges {
            let span = hi as u64 - lo as u64 + 1;
            if ix < span {
                return char::from_u32(lo as u32 + ix as u32)
                    .expect("pattern range produced invalid char");
            }
            ix -= span;
        }
        unreachable!("pick index out of range")
    }
}

/// Non-control pool for `\PC`: printable ASCII plus a few non-ASCII
/// blocks so multi-byte UTF-8 gets exercised. (Surrogates excluded by
/// construction.)
const NON_CONTROL: &[(char, char)] = &[
    (' ', '~'),
    ('\u{00A1}', '\u{02FF}'),
    ('\u{0391}', '\u{03C9}'),
    ('\u{4E00}', '\u{4FFF}'),
    ('\u{1F300}', '\u{1F64F}'),
];

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                ranges
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("trailing backslash in pattern {pattern:?}"));
                i += 1;
                match c {
                    'P' => {
                        let cat = *chars.get(i).unwrap_or_else(|| {
                            panic!("\\P needs a category letter in pattern {pattern:?}")
                        });
                        i += 1;
                        assert!(
                            cat == 'C',
                            "only \\PC is supported, got \\P{cat} in pattern {pattern:?}"
                        );
                        NON_CONTROL.to_vec()
                    }
                    _ => {
                        let lit = unescape(c, pattern);
                        vec![(lit, lit)]
                    }
                }
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                i += 1;
                vec![(c, c)]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

/// Parses the body of a `[...]` class starting after `[`; returns the
/// ranges and the index just past `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    assert!(
        chars.get(i) != Some(&'^'),
        "negated classes are not supported in pattern {pattern:?}"
    );
    loop {
        let c = *chars
            .get(i)
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        if c == ']' {
            assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
            return (ranges, i + 1);
        }
        let lo = if c == '\\' {
            i += 1;
            let e = *chars
                .get(i)
                .unwrap_or_else(|| panic!("trailing backslash in pattern {pattern:?}"));
            unescape(e, pattern)
        } else {
            c
        };
        i += 1;
        // A hyphen makes a range unless it is the final char of the class.
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
            i += 1;
            let c2 = chars[i];
            let hi = if c2 == '\\' {
                i += 1;
                let e = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("trailing backslash in pattern {pattern:?}"));
                unescape(e, pattern)
            } else {
                c2
            };
            i += 1;
            assert!(
                lo <= hi,
                "inverted range {lo:?}-{hi:?} in pattern {pattern:?}"
            );
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
}

fn unescape(c: char, pattern: &str) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        '\\' | '-' | ']' | '[' | '{' | '}' | '.' | '^' | '$' | '(' | ')' | '|' | '?' | '*'
        | '+' => c,
        _ => panic!("unsupported escape \\{c} in pattern {pattern:?}"),
    }
}

/// Parses an optional quantifier at `*i`, advancing past it.
fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse_n = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad quantifier {body:?} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
                Some((m, n)) => (parse_n(m), parse_n(n)),
            }
        }
        _ => (1, 1),
    }
}

/// A compiled pattern; `&str` delegates here so string literals can be
/// used directly as strategies.
#[derive(Debug, Clone)]
pub struct PatternStrategy {
    atoms: Vec<Atom>,
}

impl PatternStrategy {
    /// Compiles `pattern`, panicking on unsupported syntax.
    pub fn new(pattern: &str) -> Self {
        PatternStrategy {
            atoms: parse(pattern),
        }
    }
}

impl Strategy for PatternStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.pick(rng));
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        PatternStrategy::new(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string-tests", 0)
    }

    #[test]
    fn identifier_pattern_shape() {
        let mut r = rng();
        let s = "[A-Z][a-z]{0,5}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut r);
            let cs: Vec<char> = v.chars().collect();
            assert!(!cs.is_empty() && cs.len() <= 6, "{v:?}");
            assert!(cs[0].is_ascii_uppercase());
            assert!(cs[1..].iter().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_class_with_escape_and_gap() {
        let mut r = rng();
        // Printable ASCII without '"' (the gap between '!' and '#').
        let s = "[ -!#-~]{0,20}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut r);
            assert!(v.len() <= 20);
            assert!(
                v.chars().all(|c| (' '..='~').contains(&c) && c != '"'),
                "{v:?}"
            );
        }
    }

    #[test]
    fn class_with_escaped_newline() {
        let mut r = rng();
        let s = "[ -~\\n]{0,200}";
        let mut saw_newline = false;
        for _ in 0..300 {
            let v = Strategy::generate(&s, &mut r);
            assert!(v.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            saw_newline |= v.contains('\n');
        }
        assert!(saw_newline);
    }

    #[test]
    fn non_control_category() {
        let mut r = rng();
        let s = "\\PC{0,100}";
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let v = Strategy::generate(&s, &mut r);
            assert!(v.chars().count() <= 100);
            assert!(v.chars().all(|c| !c.is_control()), "{v:?}");
            saw_non_ascii |= !v.is_ascii();
        }
        assert!(saw_non_ascii);
    }
}
