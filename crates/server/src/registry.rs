//! The concurrent session registry: one incremental validation session
//! per id, each an [`IncrementalEngine`] owning its graph and holding
//! its schema through an `Arc<PgSchema>` (sessions outlive the request
//! that parsed the schema).
//!
//! Locking is two-level: a registry-wide `RwLock` guards only the id →
//! session map (held for a hash lookup), while each session has its own
//! `Mutex` serialising deltas and report reads *of that session*.
//! Traffic to different sessions therefore runs fully in parallel
//! across the worker pool; interleaved deltas to one session are
//! serialised, which is exactly the consistency the incremental engine
//! needs (mutations must flow through [`IncrementalEngine::apply`] so
//! the derived state stays in sync).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use pg_schema::{IncrementalEngine, PgSchema, ValidationOptions};
use pgraph::PropertyGraph;

/// One live validation session.
pub struct Session {
    /// The engine holding the graph, the schema and the current report.
    pub engine: IncrementalEngine<Arc<PgSchema>>,
    /// Deltas successfully applied since the session was created.
    pub deltas_applied: u64,
}

/// Registry of live sessions, shared by all workers.
pub struct SessionRegistry {
    sessions: RwLock<HashMap<u64, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
}

impl SessionRegistry {
    /// An empty registry; ids start at 1.
    pub fn new() -> Self {
        SessionRegistry {
            sessions: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Creates a session by seeding an incremental engine with a full
    /// validation pass; returns its id.
    pub fn create(
        &self,
        graph: PropertyGraph,
        schema: Arc<PgSchema>,
        options: &ValidationOptions,
    ) -> u64 {
        let engine = IncrementalEngine::new(graph, schema, options);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Mutex::new(Session {
            engine,
            deltas_applied: 0,
        }));
        self.sessions.write().unwrap().insert(id, session);
        id
    }

    /// The session with this id, if it exists. The returned handle is
    /// cloned out of the map, so the registry lock is released before
    /// the caller locks the session.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.sessions.read().unwrap().get(&id).cloned()
    }

    /// Drops the session with this id; false if there was none.
    pub fn remove(&self, id: u64) -> bool {
        self.sessions.write().unwrap().remove(&id).is_some()
    }

    /// Number of live sessions (the `/metrics` gauge).
    pub fn len(&self) -> usize {
        self.sessions.read().unwrap().len()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::{GraphBuilder, GraphDelta, Value};

    fn session_parts() -> (PropertyGraph, Arc<PgSchema>) {
        let schema = PgSchema::parse("type User { login: String! @required }").unwrap();
        let graph = GraphBuilder::new()
            .node("u", "User")
            .prop("u", "login", "alice")
            .build()
            .unwrap();
        (graph, Arc::new(schema))
    }

    #[test]
    fn create_get_remove() {
        let reg = SessionRegistry::new();
        let (graph, schema) = session_parts();
        let id = reg.create(graph, schema, &ValidationOptions::default());
        assert_eq!(reg.len(), 1);
        let session = reg.get(id).expect("session exists");
        assert!(session.lock().unwrap().engine.report().conforms());
        assert!(reg.get(id + 1).is_none());
        assert!(reg.remove(id));
        assert!(!reg.remove(id));
        assert!(reg.is_empty());
    }

    #[test]
    fn sessions_absorb_deltas_through_the_arc_schema() {
        let reg = SessionRegistry::new();
        let (graph, schema) = session_parts();
        let u = graph.node_ids().next().unwrap();
        let id = reg.create(graph, schema, &ValidationOptions::default());
        let session = reg.get(id).unwrap();
        let mut s = session.lock().unwrap();
        let outcome = s
            .engine
            .apply(&GraphDelta::new().set_node_property(u, "login", Value::Int(3)))
            .unwrap();
        assert_eq!(outcome.violations_added, 1);
        assert!(!s.engine.report().conforms());
    }
}
