//! The per-core epoll event loops behind [`crate::server::Server`].
//!
//! Each core thread owns one [`Epoll`] instance, a set of nonblocking
//! connections, and an inbox other threads feed through an eventfd wake:
//! the accept thread drops fresh connections in round-robin, and sibling
//! cores hand over connections whose requests address a session homed
//! elsewhere ([`crate::registry::home_core`]). Nothing but the inbox is
//! shared between cores — a connection is always driven by exactly one
//! thread.
//!
//! A connection is a small state machine advanced by readiness events:
//!
//! ```text
//!              EPOLLIN: read until WouldBlock,
//!              parse requests from the buffer
//!            ┌────────────────────────────────┐
//!            ▼                                │
//!        ┌───────┐   response queued,     ┌───┴───┐
//!  new ─▶│ READ  │──── writev short ─────▶│ FLUSH │─▶ close
//!        └───┬───┘                        └───┬───┘   (error, EOF, or
//!            │  ▲                             │        Connection: close
//!            │  └── out queue fully flushed ──┘        after flush)
//!            │      (resume pipelined parse)
//!            └─▶ migrate: parsed request is homed on
//!                another core → epoll DEL, hand the whole
//!                connection (+ request) to that core's inbox
//! ```
//!
//! Reading stops while responses are queued (`out` non-empty): that is
//! the backpressure that keeps a pipelining client from ballooning the
//! buffers — the kernel's TCP window does the rest. Requests parse
//! incrementally from a per-connection accumulator, so a request
//! arriving one byte per wakeup is handled identically to one arriving
//! whole.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::{self, Request};
use crate::registry::home_core;
use crate::server::{self, Ctx};
use crate::sys::{self, Epoll, EpollEvent, EventFd};

/// Token reserved for the core's eventfd (fds can never reach it).
const WAKE_TOKEN: u64 = u64::MAX;
/// Safety-net timeout for `epoll_wait`: bounds how stale a shutdown
/// check can get if a wake signal is ever lost.
const WAIT_TIMEOUT_MS: i32 = 100;
/// Max bytes read from one connection per readiness event, so a
/// firehosing peer cannot starve the rest of the core (level-triggered
/// epoll re-reports whatever is left).
const READ_BUDGET: usize = 64 * 1024;
/// How long a draining core waits for unflushed responses before
/// dropping the connections (a peer that stopped reading would otherwise
/// stall shutdown forever).
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Work other threads hand to a core.
pub(crate) enum Incoming {
    /// A freshly accepted connection (still blocking; the core makes it
    /// nonblocking before registering).
    Fresh(TcpStream),
    /// A connection migrating from a sibling core, with the already
    /// parsed request that triggered the migration.
    Migrated(Box<Conn>, Request),
}

/// A core's cross-thread face: the inbox plus the eventfd that wakes its
/// `epoll_wait`.
pub(crate) struct CoreShared {
    inbox: Mutex<Vec<Incoming>>,
    /// Signalled after every inbox push and on shutdown.
    pub(crate) wake: EventFd,
}

impl CoreShared {
    pub(crate) fn new() -> io::Result<CoreShared> {
        Ok(CoreShared {
            inbox: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
        })
    }

    /// Enqueues `item` and wakes the owning core.
    pub(crate) fn push(&self, item: Incoming) {
        self.inbox.lock().unwrap().push(item);
        self.wake.signal();
    }
}

/// One connection's state, owned by exactly one core at a time.
pub(crate) struct Conn {
    stream: TcpStream,
    /// Inbound accumulator [`http::parse_buffered`] consumes from.
    buf: Vec<u8>,
    /// Serialized responses not yet fully written, oldest first.
    out: VecDeque<Vec<u8>>,
    /// Bytes of `out.front()` a previous partial `writev` already sent.
    out_skip: usize,
    /// Close once `out` is flushed (`Connection: close`, a 400, or a
    /// drain in progress).
    close_after_flush: bool,
    /// The peer sent EOF; serve what is buffered, then close.
    peer_eof: bool,
    /// The readiness mask currently registered with epoll, so interest
    /// flips cost a syscall only when they actually change.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: VecDeque::new(),
            out_skip: 0,
            close_after_flush: false,
            peer_eof: false,
            interest: 0,
        }
    }

    fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }
}

/// What a burst of parsing/serving left the connection needing.
enum After {
    /// Everything served and flushed: wait for more input.
    KeepReading,
    /// Unflushed output remains: wait for writability.
    Flushing,
    /// Connection is done (error, EOF, or close-after-flush completed).
    Close,
    /// The parsed request is homed on another core.
    Migrate(usize, Request),
}

/// The core event loop. Runs until shutdown has been requested *and*
/// every owned connection has drained (or the drain deadline passes).
pub(crate) fn run_core(index: usize, epoll: Epoll, ctx: Arc<Ctx>, peers: Vec<Arc<CoreShared>>) {
    let own = Arc::clone(&peers[index]);
    if epoll.add(own.wake.raw(), sys::EPOLLIN, WAKE_TOKEN).is_err() {
        return;
    }
    let mut conns: HashMap<RawFd, Conn> = HashMap::new();
    let mut events = vec![EpollEvent::zeroed(); 256];
    let mut drain_deadline: Option<Instant> = None;
    while let Ok(n) = epoll.wait(&mut events, WAIT_TIMEOUT_MS) {
        if n > 0 {
            ctx.metrics.record_wakeup(index, n);
        }
        for event in events.iter().take(n) {
            let event = *event;
            let token = { event.data };
            let mask = { event.events };
            if token == WAKE_TOKEN {
                own.wake.drain();
                continue;
            }
            handle_event(
                &ctx,
                index,
                &epoll,
                &peers,
                &mut conns,
                token as RawFd,
                mask,
            );
        }
        drain_inbox(&ctx, index, &epoll, &peers, &mut conns, &own);
        if ctx.shutdown.load(Ordering::Relaxed) {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_DEADLINE);
            let expired = Instant::now() >= deadline;
            // Close idle connections now; ones still flushing get their
            // EPOLLOUT (close_after_flush is forced below) unless the
            // deadline has passed.
            let closing: Vec<RawFd> = conns
                .iter()
                .filter(|(_, c)| c.out.is_empty() || expired)
                .map(|(&fd, _)| fd)
                .collect();
            for fd in closing {
                close_conn(&ctx, index, &epoll, &mut conns, fd);
            }
            for conn in conns.values_mut() {
                conn.close_after_flush = true;
            }
            if conns.is_empty() {
                break;
            }
        }
    }
}

/// Dispatches one readiness event for `fd`.
fn handle_event(
    ctx: &Ctx,
    index: usize,
    epoll: &Epoll,
    peers: &[Arc<CoreShared>],
    conns: &mut HashMap<RawFd, Conn>,
    fd: RawFd,
    mask: u32,
) {
    // Stale event: the connection closed (or migrated) earlier this
    // batch and the fd number may already belong to someone else.
    let Some(conn) = conns.get_mut(&fd) else {
        return;
    };
    if mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
        close_conn(ctx, index, epoll, conns, fd);
        return;
    }
    if mask & sys::EPOLLOUT != 0 {
        if flush(conn).is_err() {
            close_conn(ctx, index, epoll, conns, fd);
            return;
        }
        if conn.out.is_empty() {
            if conn.close_after_flush {
                close_conn(ctx, index, epoll, conns, fd);
                return;
            }
            // Fully flushed: pipelined requests may already be buffered.
            let after = process_input(ctx, index, conn, None);
            if !apply_after(ctx, index, epoll, peers, conns, fd, after) {
                return;
            }
        }
    }
    if mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
        let Some(conn) = conns.get_mut(&fd) else {
            return;
        };
        if !conn.out.is_empty() {
            // Backpressured: interest is EPOLLOUT, this is a stale
            // EPOLLIN from the same batch. Leave the bytes in the kernel.
            return;
        }
        if fill_buf(conn).is_err() {
            close_conn(ctx, index, epoll, conns, fd);
            return;
        }
        let after = process_input(ctx, index, conn, None);
        apply_after(ctx, index, epoll, peers, conns, fd, after);
    }
}

/// Reads until `WouldBlock`, EOF, or the per-event budget is spent.
fn fill_buf(conn: &mut Conn) -> io::Result<()> {
    let mut chunk = [0u8; 8 * 1024];
    let mut taken = 0usize;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                return Ok(());
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                taken += n;
                if taken >= READ_BUDGET {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Parses and serves as many buffered requests as possible, starting
/// with `pending` (a request carried over by a migration). Stops at the
/// first request that must migrate, the first response that does not
/// flush in full, or when the buffer holds no complete request.
fn process_input(ctx: &Ctx, index: usize, conn: &mut Conn, pending: Option<Request>) -> After {
    let mut pending = pending;
    loop {
        let request = match pending.take() {
            Some(request) => request,
            None => match http::parse_buffered(&mut conn.buf) {
                Ok(Some(request)) => request,
                Ok(None) => {
                    return if conn.peer_eof {
                        After::Close
                    } else {
                        After::KeepReading
                    };
                }
                Err(e) => {
                    // Malformed framing: answer 400, close once flushed.
                    let response = server::bad_request(ctx, &e.to_string());
                    conn.out.push_back(response.serialize(true));
                    conn.close_after_flush = true;
                    return flush_or_close(conn);
                }
            },
        };
        // Route session traffic to its home core so one thread owns all
        // of a session's connections. Suppressed during drain — the
        // target core may already have exited.
        if ctx.cores > 1 && !ctx.shutdown.load(Ordering::Relaxed) {
            if let Some(id) = server::session_id_of(&request.path) {
                let home = home_core(id, ctx.cores);
                if home != index {
                    return After::Migrate(home, request);
                }
            }
        }
        let (response, close) = server::process(ctx, &request);
        conn.out.push_back(response.serialize(close));
        if close {
            conn.close_after_flush = true;
        }
        match flush_or_close(conn) {
            After::KeepReading => {} // fully flushed: next pipelined request
            other => return other,
        }
    }
}

/// Flushes what it can immediately; classifies what the connection needs
/// next. `KeepReading` means the queue emptied and the connection stays.
fn flush_or_close(conn: &mut Conn) -> After {
    if flush(conn).is_err() {
        return After::Close;
    }
    if conn.out.is_empty() {
        if conn.close_after_flush {
            After::Close
        } else {
            After::KeepReading
        }
    } else {
        After::Flushing
    }
}

/// One `writev` pass over the output queue, advancing it by however many
/// bytes the kernel took. `Ok` with a non-empty queue means the socket
/// is full — wait for `EPOLLOUT`.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while !conn.out.is_empty() {
        let fd = conn.fd();
        let written = match sys::write_vectored(fd, conn.out.make_contiguous(), conn.out_skip) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let mut remaining = written;
        while remaining > 0 {
            let front_left = conn.out.front().map_or(0, |b| b.len() - conn.out_skip);
            if remaining >= front_left {
                remaining -= front_left;
                conn.out.pop_front();
                conn.out_skip = 0;
            } else {
                conn.out_skip += remaining;
                remaining = 0;
            }
        }
        if written == 0 {
            return Ok(());
        }
    }
    Ok(())
}

/// Applies a [`After`] to the connection. Returns whether the connection
/// is still owned by this core (`false` after close or migration).
fn apply_after(
    ctx: &Ctx,
    index: usize,
    epoll: &Epoll,
    peers: &[Arc<CoreShared>],
    conns: &mut HashMap<RawFd, Conn>,
    fd: RawFd,
    after: After,
) -> bool {
    match after {
        After::KeepReading => {
            set_interest(epoll, conns, fd, sys::EPOLLIN | sys::EPOLLRDHUP);
            true
        }
        After::Flushing => {
            set_interest(epoll, conns, fd, sys::EPOLLOUT);
            true
        }
        After::Close => {
            close_conn(ctx, index, epoll, conns, fd);
            false
        }
        After::Migrate(target, request) => {
            let Some(conn) = conns.remove(&fd) else {
                return false;
            };
            let _ = epoll.del(fd);
            ctx.core_connections[index].fetch_sub(1, Ordering::Relaxed);
            ctx.metrics.record_migration();
            peers[target].push(Incoming::Migrated(Box::new(conn), request));
            false
        }
    }
}

fn set_interest(epoll: &Epoll, conns: &mut HashMap<RawFd, Conn>, fd: RawFd, mask: u32) {
    if let Some(conn) = conns.get_mut(&fd) {
        if conn.interest != mask && epoll.modify(fd, mask, fd as u64).is_ok() {
            conn.interest = mask;
        }
    }
}

/// Deregisters, drops (closing the socket) and un-counts a connection.
fn close_conn(ctx: &Ctx, index: usize, epoll: &Epoll, conns: &mut HashMap<RawFd, Conn>, fd: RawFd) {
    if conns.remove(&fd).is_some() {
        let _ = epoll.del(fd);
        ctx.core_connections[index].fetch_sub(1, Ordering::Relaxed);
        ctx.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Adopts everything other threads queued since the last wake: fresh
/// connections from the accept thread and migrants from sibling cores.
fn drain_inbox(
    ctx: &Ctx,
    index: usize,
    epoll: &Epoll,
    peers: &[Arc<CoreShared>],
    conns: &mut HashMap<RawFd, Conn>,
    own: &CoreShared,
) {
    loop {
        let items = std::mem::take(&mut *own.inbox.lock().unwrap());
        if items.is_empty() {
            return;
        }
        for item in items {
            match item {
                Incoming::Fresh(stream) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        ctx.open_connections.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    adopt(ctx, index, epoll, peers, conns, Conn::new(stream), None);
                }
                Incoming::Migrated(conn, request) => {
                    adopt(ctx, index, epoll, peers, conns, *conn, Some(request));
                }
            }
        }
    }
}

/// Registers a connection with this core's epoll and immediately drives
/// whatever is already pending (a migrated request, buffered bytes).
fn adopt(
    ctx: &Ctx,
    index: usize,
    epoll: &Epoll,
    peers: &[Arc<CoreShared>],
    conns: &mut HashMap<RawFd, Conn>,
    mut conn: Conn,
    pending: Option<Request>,
) {
    let fd = conn.fd();
    conn.interest = sys::EPOLLIN | sys::EPOLLRDHUP;
    if epoll.add(fd, conn.interest, fd as u64).is_err() {
        ctx.open_connections.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    ctx.core_connections[index].fetch_add(1, Ordering::Relaxed);
    conns.insert(fd, conn);
    let after = match conns.get_mut(&fd) {
        Some(conn) if pending.is_some() || !conn.buf.is_empty() || !conn.out.is_empty() => {
            process_input(ctx, index, conn, pending)
        }
        _ => return, // nothing pending: wait for EPOLLIN
    };
    apply_after(ctx, index, epoll, peers, conns, fd, after);
}
