//! Property test: `parse(print(doc))` is the identity on canonical form.
//!
//! Random documents are generated structurally (not as text), printed,
//! re-parsed, re-printed — the two printouts must coincide, and the two
//! ASTs must agree modulo source spans (checked via a span-erasing
//! canonicalisation through a second print).

use gql_sdl::ast::*;
use gql_sdl::{parse, print_document, Pos, Span};
use proptest::prelude::*;

fn span() -> Span {
    Span::at(Pos::start())
}

fn ident() -> impl Strategy<Value = String> {
    // Avoid SDL keywords at definition heads by prefixing.
    "[A-Z][A-Za-z0-9]{0,6}".prop_map(|s| format!("N{s}"))
}

fn field_name() -> impl Strategy<Value = String> {
    "[a-z][A-Za-z0-9]{0,6}".prop_map(|s| format!("f{s}"))
}

fn const_value() -> impl Strategy<Value = ConstValue> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|i| ConstValue::Int(i as i64)),
        // Restrict floats to values whose display round-trips as a float
        // token (finite, plain decimal).
        (-1000i32..1000, 1u32..100)
            .prop_map(|(a, b)| { ConstValue::Float(a as f64 + b as f64 / 128.0) }),
        "[ -~]{0,12}".prop_map(ConstValue::String),
        any::<bool>().prop_map(ConstValue::Bool),
        Just(ConstValue::Null),
        "[A-Z]{1,6}".prop_map(|s| ConstValue::Enum(format!("E{s}"))),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(ConstValue::List),
            prop::collection::vec(("[a-z]{1,5}".prop_map(|s| format!("k{s}")), inner), 0..3)
                .prop_map(ConstValue::Object),
        ]
    })
}

fn ty() -> impl Strategy<Value = Type> {
    ident().prop_flat_map(|name| {
        (0usize..6).prop_map(move |shape| {
            let base = Type::Named(name.clone());
            match shape {
                0 => base,
                1 => Type::NonNull(Box::new(base)),
                2 => Type::List(Box::new(base)),
                3 => Type::List(Box::new(Type::NonNull(Box::new(base)))),
                4 => Type::NonNull(Box::new(Type::List(Box::new(base)))),
                _ => Type::NonNull(Box::new(Type::List(Box::new(Type::NonNull(Box::new(
                    base,
                )))))),
            }
        })
    })
}

fn directive_use() -> impl Strategy<Value = DirectiveUse> {
    (
        "[a-z]{1,6}".prop_map(|s| format!("d{s}")),
        prop::collection::vec(
            ("[a-z]{1,5}".prop_map(|s| format!("a{s}")), const_value()),
            0..2,
        ),
    )
        .prop_map(|(name, args)| DirectiveUse {
            name,
            args,
            span: span(),
        })
}

fn input_value() -> impl Strategy<Value = InputValueDef> {
    (
        field_name(),
        ty(),
        prop::option::of(const_value()),
        prop::collection::vec(directive_use(), 0..2),
    )
        .prop_map(|(name, ty, default, directives)| InputValueDef {
            description: None,
            name,
            ty,
            default,
            directives,
            span: span(),
        })
}

fn field_def() -> impl Strategy<Value = FieldDef> {
    (
        field_name(),
        prop::collection::vec(input_value(), 0..3),
        ty(),
        prop::collection::vec(directive_use(), 0..3),
        prop::option::of("[ -!#-~]{0,20}"), // printable, no quotes issues handled by printer
    )
        .prop_map(|(name, mut args, ty, directives, description)| {
            // Unique argument names.
            args.dedup_by(|a, b| a.name == b.name);
            FieldDef {
                description,
                name,
                args,
                ty,
                directives,
                span: span(),
            }
        })
}

fn object_type() -> impl Strategy<Value = TypeDef> {
    (
        ident(),
        prop::collection::vec(ident(), 0..2),
        prop::collection::vec(directive_use(), 0..2),
        prop::collection::vec(field_def(), 0..5),
    )
        .prop_map(|(name, implements, directives, mut fields)| {
            fields.dedup_by(|a, b| a.name == b.name);
            TypeDef::Object(ObjectTypeDef {
                description: None,
                name,
                implements,
                directives,
                fields,
                span: span(),
            })
        })
}

fn union_type() -> impl Strategy<Value = TypeDef> {
    (ident(), prop::collection::vec(ident(), 1..4)).prop_map(|(name, members)| {
        TypeDef::Union(UnionTypeDef {
            description: None,
            name,
            directives: Vec::new(),
            members,
            span: span(),
        })
    })
}

fn enum_type() -> impl Strategy<Value = TypeDef> {
    (
        ident(),
        prop::collection::vec("[A-Z]{1,6}".prop_map(|s| format!("V{s}")), 1..4),
    )
        .prop_map(|(name, mut values)| {
            values.dedup();
            TypeDef::Enum(EnumTypeDef {
                description: None,
                name,
                directives: Vec::new(),
                values: values
                    .into_iter()
                    .map(|v| EnumValueDef {
                        description: None,
                        name: v,
                        directives: Vec::new(),
                    })
                    .collect(),
                span: span(),
            })
        })
}

fn scalar_type() -> impl Strategy<Value = TypeDef> {
    ident().prop_map(|name| {
        TypeDef::Scalar(ScalarTypeDef {
            description: None,
            name,
            directives: Vec::new(),
            span: span(),
        })
    })
}

fn document() -> impl Strategy<Value = Document> {
    prop::collection::vec(
        prop_oneof![object_type(), union_type(), enum_type(), scalar_type()],
        0..6,
    )
    .prop_map(|defs| Document {
        definitions: defs.into_iter().map(Definition::Type).collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_print_is_stable(doc in document()) {
        let once = print_document(&doc);
        let reparsed = parse(&once)
            .unwrap_or_else(|e| panic!("printer emitted unparseable SDL: {e}\n---\n{once}"));
        let twice = print_document(&reparsed);
        prop_assert_eq!(&once, &twice, "non-canonical print:\n{}", once);
    }

    #[test]
    fn parse_never_panics_on_arbitrary_input(input in "[ -~\\n]{0,200}") {
        let _ = parse(&input); // must not panic, errors are fine
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_unicode(input in "\\PC{0,100}") {
        let _ = gql_sdl::Lexer::new(&input).tokenize();
    }
}
