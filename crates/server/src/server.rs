//! The daemon itself: listener, reactor core threads, routing and
//! request logging. See the crate docs for the architecture overview and
//! the route table; the event loop lives in [`crate::reactor`].

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pg_pgschema::SchemaLanguage;
use pg_schema::{validate, Engine, PgSchema, ValidationOptions};
use pg_store::{FsyncPolicy, Store};
use pgraph::json::{self, Json};

use crate::http::{push_json_string, Request, Response};
use crate::metrics::{Metrics, MigrationAction, RenderGauges};
use crate::reactor::{self, CoreShared, Incoming};
use crate::registry::{Lookup, RemoveOutcome, SessionRegistry};

/// How the accept thread sleeps between polls when no connection is
/// pending (it also re-checks the shutdown flag at this cadence).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Upper bound on the frame bytes one `GET /wal/tail` response carries.
/// A lagging follower catches up in successive batches rather than one
/// giant response; `read_tail` may exceed this by one frame so progress
/// is always possible.
const TAIL_BATCH_BYTES: usize = 1 << 20;

/// How long `POST /promote` waits for the follower loop to observe the
/// promotion flag and flip the role before answering 503.
const PROMOTE_TIMEOUT: Duration = Duration::from_secs(10);

/// Shape of the per-request log lines (`--log-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `method=… path=… status=… micros=… engine=…` key-value text.
    #[default]
    Text,
    /// One JSON object per line.
    Json,
    /// No request logging (load-test runs).
    Off,
}

impl LogFormat {
    /// The accepted spellings of [`FromStr`](std::str::FromStr), in
    /// declaration order.
    pub const NAMES: &'static [&'static str] = &["text", "json", "off"];
}

/// Parses the `--log-format` flag value; the error lists the accepted
/// spellings.
impl std::str::FromStr for LogFormat {
    type Err = pgraph::ParseEnumError;

    fn from_str(name: &str) -> Result<LogFormat, Self::Err> {
        match name {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            "off" => Ok(LogFormat::Off),
            _ => Err(pgraph::ParseEnumError::new(
                "log format",
                name,
                LogFormat::NAMES,
            )),
        }
    }
}

/// Daemon configuration (the `serve` subcommand's flags).
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`ServerConfig::builder`] (or [`Default`]) rather than a struct
/// literal, so adding options stays a compatible change.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks a free port.
    pub addr: String,
    /// Reactor cores (event-loop threads); `0` (default) means one per
    /// available CPU.
    pub cores: usize,
    /// Open-connection cap; accepts beyond it are shed with `503`.
    pub max_connections: usize,
    /// Request-log shape.
    pub log_format: LogFormat,
    /// Durable session storage (`--data-dir`). `None` keeps the daemon
    /// purely in-memory, exactly as before the store existed.
    pub data_dir: Option<PathBuf>,
    /// When to fsync WAL appends (`--fsync`).
    pub fsync: FsyncPolicy,
    /// Compact the store once the live WAL exceeds this many bytes
    /// (`--compact-after-bytes`; 0 disables automatic compaction).
    pub compact_after_bytes: u64,
    /// LRU bound on live sessions (`--max-sessions`).
    pub max_sessions: Option<usize>,
    /// Leader address to replicate from (`--follow`). When set the
    /// daemon starts as a read-only follower: it bootstraps an empty
    /// `--data-dir` from the leader's snapshot, tails the leader's WAL,
    /// answers reads, and rejects writes with `421` until promoted
    /// (`POST /promote` or SIGHUP). Requires `data_dir`. See
    /// `docs/replication.md`.
    pub follow: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_owned(),
            cores: 0,
            max_connections: 4096,
            log_format: LogFormat::Text,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            compact_after_bytes: 8 << 20,
            max_sessions: None,
            follow: None,
        }
    }
}

impl ServerConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`].
///
/// ```no_run
/// use pg_server::{LogFormat, Server, ServerConfig};
///
/// let config = ServerConfig::builder()
///     .addr("127.0.0.1:0")
///     .cores(2)
///     .max_connections(10_000)
///     .log_format(LogFormat::Off)
///     .build();
/// let handle = Server::bind(config).unwrap().serve().unwrap();
/// println!("listening on {}", handle.local_addr());
/// handle.shutdown();
/// handle.join().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Listen address (default `127.0.0.1:7878`; port 0 picks a free
    /// port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Reactor cores (`0` = one per available CPU).
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.cores = cores;
        self
    }

    /// Open-connection cap beyond which accepts are shed with `503`.
    pub fn max_connections(mut self, max: usize) -> Self {
        self.config.max_connections = max;
        self
    }

    /// Request-log shape (default [`LogFormat::Text`]).
    pub fn log_format(mut self, format: LogFormat) -> Self {
        self.config.log_format = format;
        self
    }

    /// Durable session storage directory.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.data_dir = Some(dir.into());
        self
    }

    /// When to fsync WAL appends (default [`FsyncPolicy::Always`]).
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.config.fsync = policy;
        self
    }

    /// Auto-compaction threshold in live WAL bytes (0 disables).
    pub fn compact_after_bytes(mut self, bytes: u64) -> Self {
        self.config.compact_after_bytes = bytes;
        self
    }

    /// LRU bound on live sessions.
    pub fn max_sessions(mut self, max: usize) -> Self {
        self.config.max_sessions = Some(max);
        self
    }

    /// Start as a read-only follower of the leader at `addr` (requires
    /// [`data_dir`](Self::data_dir)).
    pub fn follow(mut self, addr: impl Into<String>) -> Self {
        self.config.follow = Some(addr.into());
        self
    }

    /// Finishes, yielding the configuration.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// Shared state every reactor core and the accept thread see.
pub(crate) struct Ctx {
    pub(crate) metrics: Metrics,
    pub(crate) registry: SessionRegistry,
    pub(crate) log_format: LogFormat,
    pub(crate) compact_after_bytes: u64,
    /// Number of reactor cores (event-loop threads).
    pub(crate) cores: usize,
    /// Open-connection cap enforced by the accept thread.
    pub(crate) max_connections: usize,
    /// Connections currently open across all cores (incremented at
    /// accept, decremented when a core closes the connection).
    pub(crate) open_connections: AtomicUsize,
    /// Connections currently owned by each core.
    pub(crate) core_connections: Vec<AtomicUsize>,
    /// Set by [`ServerHandle::shutdown`]; every loop drains and exits.
    pub(crate) shutdown: AtomicBool,
    /// The leader address this daemon follows (`--follow`), if any.
    /// Fixed for the life of the process even after promotion — it is
    /// where `421` responses point writers.
    pub(crate) follow: Option<String>,
    /// True while this daemon is a read-only follower; flipped to false
    /// exactly once, by the follower loop, on promotion.
    pub(crate) role_follower: AtomicBool,
    /// Set by `POST /promote`; the follower loop polls it (alongside
    /// SIGHUP) and performs the promotion.
    pub(crate) promote: AtomicBool,
}

impl Ctx {
    /// True while writes must be redirected to the leader.
    pub(crate) fn is_follower(&self) -> bool {
        self.role_follower.load(Ordering::Relaxed)
    }
}

/// A bound, not-yet-running daemon. [`bind`](Server::bind) first, read
/// [`local_addr`](Server::local_addr) (tests bind port 0), then
/// [`serve`](Server::serve) for a [`ServerHandle`] that owns the running
/// threads.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Binds the listener and, under `--data-dir`, recovers sessions
    /// from the store. The listener is switched to nonblocking so the
    /// accept thread can interleave accepts with shutdown polling —
    /// glibc installs SA_RESTART handlers, so a blocking `accept(2)`
    /// would sleep straight through SIGTERM.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let cores = match config.cores {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        if let Some(leader) = &config.follow {
            let Some(dir) = &config.data_dir else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "--follow requires --data-dir (a follower replicates into a durable store)",
                ));
            };
            // An empty (or missing) data dir bootstraps from the
            // leader's snapshot; anything else resumes tailing from the
            // recovered WAL position.
            let empty = match std::fs::read_dir(dir) {
                Ok(mut entries) => entries.next().is_none(),
                Err(e) if e.kind() == io::ErrorKind::NotFound => true,
                Err(e) => return Err(e),
            };
            if empty {
                let blob = crate::replication::fetch_snapshot(leader)?;
                pg_store::install_snapshot(dir, &blob)?;
                if config.log_format != LogFormat::Off {
                    eprintln!(
                        "replication: bootstrapped {} from leader {leader} \
                         ({} snapshot bytes)",
                        dir.display(),
                        blob.len()
                    );
                }
            }
        }
        let registry = match &config.data_dir {
            None => SessionRegistry::in_memory(config.max_sessions),
            Some(dir) => {
                let (store, recovered) = Store::open(dir.clone(), config.fsync)?;
                let info = &recovered.info;
                if config.log_format != LogFormat::Off {
                    eprintln!(
                        "store: recovered {} session(s) from {} (snapshot generation {:?}, \
                         {} record(s) replayed{})",
                        recovered.sessions.len(),
                        dir.display(),
                        info.snapshot_generation,
                        info.records_replayed,
                        match &info.truncated {
                            Some(t) => format!(
                                ", torn tail truncated at {} offset {}",
                                t.segment.display(),
                                t.offset
                            ),
                            None => String::new(),
                        }
                    );
                }
                let options = ValidationOptions::builder().collect_metrics(true).build();
                SessionRegistry::with_store(
                    Arc::new(store),
                    recovered,
                    &options,
                    config.max_sessions,
                )?
            }
        };
        Ok(Server {
            listener,
            ctx: Arc::new(Ctx {
                metrics: Metrics::new(cores),
                registry,
                log_format: config.log_format,
                compact_after_bytes: config.compact_after_bytes,
                cores,
                max_connections: config.max_connections.max(1),
                open_connections: AtomicUsize::new(0),
                core_connections: (0..cores).map(|_| AtomicUsize::new(0)).collect(),
                shutdown: AtomicBool::new(false),
                role_follower: AtomicBool::new(config.follow.is_some()),
                promote: AtomicBool::new(false),
                follow: config.follow,
            }),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the reactor: one epoll event loop per core plus the accept
    /// thread, then returns immediately with the [`ServerHandle`] that
    /// controls them. Serving continues until
    /// [`shutdown`](ServerHandle::shutdown).
    pub fn serve(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let mut peers = Vec::with_capacity(self.ctx.cores);
        for _ in 0..self.ctx.cores {
            peers.push(Arc::new(CoreShared::new()?));
        }
        let mut threads = Vec::with_capacity(self.ctx.cores + 1);
        for index in 0..self.ctx.cores {
            let epoll = crate::sys::Epoll::new()?;
            let ctx = Arc::clone(&self.ctx);
            let peers = peers.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pgschemad-core-{index}"))
                    .spawn(move || reactor::run_core(index, epoll, ctx, peers))?,
            );
        }
        let ctx = Arc::clone(&self.ctx);
        let accept_peers = peers.clone();
        let listener = self.listener;
        threads.push(
            std::thread::Builder::new()
                .name("pgschemad-accept".to_owned())
                .spawn(move || accept_loop(ctx, listener, accept_peers))?,
        );
        if self.ctx.follow.is_some() {
            let ctx = Arc::clone(&self.ctx);
            threads.push(
                std::thread::Builder::new()
                    .name("pgschemad-follower".to_owned())
                    .spawn(move || crate::replication::run_follower(ctx))?,
            );
        }
        Ok(ServerHandle {
            addr,
            ctx: self.ctx,
            peers,
            threads,
        })
    }
}

/// A running daemon. Call [`shutdown`](ServerHandle::shutdown) to begin
/// a graceful drain, then [`join`](ServerHandle::join) to wait for it.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    peers: Vec<Arc<CoreShared>>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address being served.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The number of reactor cores serving connections (after resolving
    /// [`ServerConfig::cores`]` == 0` to the machine's parallelism).
    pub fn cores(&self) -> usize {
        self.ctx.cores
    }

    /// Requests a graceful drain: the accept thread stops accepting,
    /// each core finishes its in-flight requests (flushing pending
    /// responses) and closes idle keep-alive connections. Idempotent and
    /// safe from any thread (including a signal-watching loop).
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::Relaxed);
        for peer in &self.peers {
            peer.wake.signal();
        }
    }

    /// Waits until every thread has drained and exited, then flushes the
    /// store. Under `--fsync interval|never`, acknowledged appends may
    /// still sit in OS buffers — a graceful shutdown flushes them.
    pub fn join(mut self) -> io::Result<()> {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        self.ctx.registry.sync_store()
    }
}

/// The accept thread: hands fresh connections round-robin to the cores
/// (their first session request migrates them home), shedding with `503`
/// above the connection cap.
///
/// The listener sits behind its own tiny epoll so a connect storm is
/// drained in a tight accept loop (the [`POLL_INTERVAL`] timeout exists
/// only to observe the shutdown flag, never to pace accepts — a sleep
/// there would add up to 50 ms per sequentially-opened connection).
fn accept_loop(ctx: Arc<Ctx>, listener: TcpListener, peers: Vec<Arc<CoreShared>>) {
    use std::os::fd::AsRawFd;
    let epoll = crate::sys::Epoll::new().expect("accept epoll");
    epoll
        .add(listener.as_raw_fd(), crate::sys::EPOLLIN, 0)
        .expect("register listener");
    let mut events = [crate::sys::EpollEvent::zeroed(); 1];
    let mut next = 0usize;
    while !ctx.shutdown.load(Ordering::Relaxed) {
        // Drain the backlog completely before sleeping again.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    ctx.metrics.record_accept();
                    if ctx.open_connections.load(Ordering::Relaxed) >= ctx.max_connections {
                        shed(&ctx, stream);
                        continue;
                    }
                    ctx.open_connections.fetch_add(1, Ordering::Relaxed);
                    peers[next % peers.len()].push(Incoming::Fresh(stream));
                    next += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        let _ = epoll.wait(&mut events, POLL_INTERVAL.as_millis() as i32);
    }
    // Wake every core so none sleeps through the drain.
    for peer in &peers {
        peer.wake.signal();
    }
}

/// Answers a connection there is no capacity for: `503` with a
/// `Retry-After` hint, written from the accept thread, then close.
fn shed(ctx: &Ctx, mut stream: TcpStream) {
    ctx.metrics.record_shed();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let response = Response::error(503, "connection limit reached, retry shortly")
        .with_header("retry-after", "1");
    let _ = response.write_to(&mut stream, true);
    ctx.metrics.record_request("(shed)", 503, 0);
    log_request(ctx.log_format, "-", "(shed)", 503, 0, None);
}

/// Serves one parsed request end to end: routes it, records metrics and
/// the request log, and triggers threshold compaction. Returns the
/// response plus whether the connection must close after it.
pub(crate) fn process(ctx: &Ctx, request: &Request) -> (Response, bool) {
    let started = Instant::now();
    let handled = route(ctx, request);
    let close = request.wants_close() || ctx.shutdown.load(Ordering::Relaxed);
    let micros = started.elapsed().as_micros() as u64;
    ctx.metrics
        .record_request(handled.route, handled.response.status, micros);
    log_request(
        ctx.log_format,
        &request.method,
        &request.path,
        handled.response.status,
        micros,
        handled.engine,
    );
    maybe_compact(ctx);
    (handled.response, close)
}

/// The `400` a connection gets for bytes that would not parse as a
/// request; the connection closes once it is flushed.
pub(crate) fn bad_request(ctx: &Ctx, message: &str) -> Response {
    ctx.metrics.record_request("(bad-request)", 400, 0);
    log_request(ctx.log_format, "-", "(bad-request)", 400, 0, None);
    Response::error(400, message)
}

/// The session a request path addresses, if any — what the reactor uses
/// to decide the connection's home core.
pub(crate) fn session_id_of(path: &str) -> Option<u64> {
    parse_session_path(path).map(|(id, _)| id)
}

/// A routed response plus its labels for metrics and the request log.
struct Handled {
    route: &'static str,
    response: Response,
    engine: Option<&'static str>,
}

impl Handled {
    fn plain(route: &'static str, response: Response) -> Handled {
        Handled {
            route,
            response,
            engine: None,
        }
    }
}

fn route(ctx: &Ctx, request: &Request) -> Handled {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => Handled::plain("/healthz", Response::text(200, "ok\n")),
        ("GET", "/metrics") => Handled::plain(
            "/metrics",
            Response::text(
                200,
                ctx.metrics.render(&RenderGauges {
                    core_connections: ctx
                        .core_connections
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                    role_follower: Some(ctx.is_follower()),
                    connections_open: ctx.open_connections.load(Ordering::Relaxed),
                    sessions_live: ctx.registry.len(),
                    sessions_recovered: ctx.registry.recovered_total(),
                    sessions_evicted: ctx.registry.evicted_total(),
                    migration_windows_open: ctx.registry.open_migrations(),
                    store: ctx.registry.store().map(|s| s.stats()),
                }),
            ),
        ),
        ("POST", "/validate") => handle_validate(ctx, request),
        // Satisfiability is a pure read over the posted schema, so a
        // follower answers it locally like /validate.
        ("POST", "/check-sat") => handle_check_sat(request),
        ("POST", "/sessions") if ctx.is_follower() => misdirected(ctx, "/sessions"),
        ("POST", "/sessions") => handle_create_session(ctx, request),
        ("GET", "/wal/tail") => handle_wal_tail(ctx, request),
        ("GET", "/wal/snapshot") => handle_wal_snapshot(ctx),
        ("POST", "/promote") => handle_promote(ctx),
        (
            _,
            "/healthz" | "/metrics" | "/validate" | "/check-sat" | "/sessions" | "/wal/tail"
            | "/wal/snapshot" | "/promote",
        ) => Handled::plain(
            path_template(path),
            Response::error(405, "method not allowed"),
        ),
        _ => match parse_session_path(path) {
            Some((id, tail)) => route_session(ctx, request, id, tail),
            None => Handled::plain("(unknown)", Response::error(404, "no such route")),
        },
    }
}

fn path_template(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/validate" => "/validate",
        "/check-sat" => "/check-sat",
        "/sessions" => "/sessions",
        "/wal/tail" => "/wal/tail",
        "/wal/snapshot" => "/wal/snapshot",
        "/promote" => "/promote",
        _ => "(unknown)",
    }
}

/// Splits `/sessions/{id}` or `/sessions/{id}/{tail}`.
fn parse_session_path(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/sessions/")?;
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, tail),
        None => (rest, ""),
    };
    Some((id.parse().ok()?, tail))
}

fn route_session(ctx: &Ctx, request: &Request, id: u64, tail: &str) -> Handled {
    match (request.method.as_str(), tail) {
        // A follower's sessions mutate only through replication: every
        // write is misdirected back to the leader (reads stay local).
        ("POST", "deltas") if ctx.is_follower() => misdirected(ctx, "/sessions/{id}/deltas"),
        ("POST", "compact") if ctx.is_follower() => misdirected(ctx, "/sessions/{id}/compact"),
        ("POST", "migrate") if ctx.is_follower() => misdirected(ctx, "/sessions/{id}/migrate"),
        ("DELETE", "") if ctx.is_follower() => misdirected(ctx, "/sessions/{id}"),
        ("POST", "deltas") => handle_delta(ctx, request, id),
        ("GET", "report") => handle_report(ctx, id),
        ("GET", "graph") => handle_graph(ctx, id),
        ("POST", "compact") => handle_compact(ctx, id),
        ("POST", "migrate") => handle_migrate(ctx, request, id),
        ("DELETE", "") => handle_delete(ctx, id),
        ("POST" | "GET" | "DELETE", "deltas" | "report" | "graph" | "compact" | "migrate" | "") => {
            Handled::plain("(unknown)", Response::error(405, "method not allowed"))
        }
        _ => Handled::plain("(unknown)", Response::error(404, "no such route")),
    }
}

fn handle_delete(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}";
    let response = match ctx.registry.remove(id) {
        Ok(RemoveOutcome::Removed(wal_micros)) => {
            if let Some(micros) = wal_micros {
                ctx.metrics.record_wal_append(micros);
            }
            Response::json(200, "{\"deleted\":true}")
        }
        Ok(RemoveOutcome::Evicted) => Response::error(410, "session evicted"),
        Ok(RemoveOutcome::Missing) => Response::error(404, "no such session"),
        Err(e) => Response::error(500, &format!("wal append failed: {e}")),
    };
    Handled::plain(ROUTE, response)
}

/// Compacts the store (snapshot + drop superseded WAL segments). The
/// route is addressed to a session for symmetry with the rest of the
/// session API, but compaction covers the whole store.
fn handle_compact(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/compact";
    let response = match ctx.registry.get(id) {
        Lookup::Missing => Response::error(404, "no such session"),
        Lookup::Evicted => Response::error(410, "session evicted"),
        Lookup::Found(_) if ctx.registry.store().is_none() => {
            Response::error(409, "server is running without --data-dir")
        }
        Lookup::Found(_) => match ctx.registry.compact() {
            Ok(Some(outcome)) => Response::json(
                200,
                format!(
                    "{{\"compacted\":true,\"generation\":{},\"sessions\":{},\
                     \"segments_removed\":{},\"snapshot_bytes\":{}}}",
                    outcome.generation,
                    outcome.sessions,
                    outcome.segments_removed,
                    outcome.snapshot_bytes
                ),
            ),
            Ok(None) => Response::error(409, "compaction already in progress"),
            Err(e) => Response::error(500, &format!("compaction failed: {e}")),
        },
    };
    Handled::plain(ROUTE, response)
}

/// Live schema migration on a session: `{"action": "plan"}` previews a
/// candidate schema's impact, `begin` opens a dual-schema window,
/// `commit` atomically swaps the session onto the candidate (refused
/// with `409` while the window has regressions, unless
/// `"force": true`), `abort` closes the window. `begin`, `commit` and
/// `abort` are WAL-logged as `SchemaChange` records, so open windows
/// survive crashes and replicate to followers.
fn handle_migrate(ctx: &Ctx, request: &Request, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/migrate";
    let doc = match std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_owned())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(message) => return Handled::plain(ROUTE, Response::error(400, &message)),
    };
    let action = match doc.get("action").and_then(Json::as_str) {
        Some(a @ ("plan" | "begin" | "commit" | "abort")) => a.to_owned(),
        Some(other) => {
            return Handled::plain(
                ROUTE,
                Response::error(400, &format!("unknown action {other:?}")),
            )
        }
        None => {
            return Handled::plain(
                ROUTE,
                Response::error(400, "missing string field \"action\""),
            )
        }
    };
    let slot = match ctx.registry.get(id) {
        Lookup::Found(slot) => slot,
        Lookup::Evicted => return Handled::plain(ROUTE, Response::error(410, "session evicted")),
        Lookup::Missing => return Handled::plain(ROUTE, Response::error(404, "no such session")),
    };
    let mut session = slot.session.lock().unwrap();
    let response = match action.as_str() {
        "plan" | "begin" => {
            let source = match doc.get("schema").and_then(Json::as_str) {
                Some(sdl) => sdl,
                None => {
                    return Handled::plain(
                        ROUTE,
                        Response::error(400, "missing string field \"schema\""),
                    )
                }
            };
            // An optional "lang" field lets migration windows cross
            // languages: a pgschema candidate is compiled and stored as
            // its pragma-tagged lowered SDL, so the SchemaChange WAL
            // record (and every follower) carries the language too.
            let lang: SchemaLanguage = match doc.get("lang").and_then(Json::as_str) {
                None => SchemaLanguage::Sdl,
                Some(name) => match name.parse() {
                    Ok(lang) => lang,
                    Err(e) => {
                        return Handled::plain(ROUTE, Response::error(400, &format!("lang: {e}")))
                    }
                },
            };
            let (candidate, sdl) = match compile_schema(source, lang) {
                Ok(parts) => parts,
                Err(message) => return Handled::plain(ROUTE, Response::error(400, &message)),
            };
            if action == "begin" && session.pending_migration.is_some() {
                return Handled::plain(
                    ROUTE,
                    Response::error(409, "a migration window is already open"),
                );
            }
            if action == "begin" {
                match ctx.registry.log_schema_change(
                    id,
                    &mut session,
                    pg_store::MigrationPhase::Begin,
                    &sdl,
                ) {
                    Ok(Some(micros)) => ctx.metrics.record_wal_append(micros),
                    Ok(None) => {}
                    Err(e) => {
                        return Handled::plain(
                            ROUTE,
                            Response::error(500, &format!("wal append failed: {e}")),
                        )
                    }
                }
            }
            let plan = match session.engine() {
                Ok(engine) => {
                    if action == "begin" {
                        engine.begin_migration(candidate)
                    } else {
                        pg_schema::migrate::plan(
                            engine.graph(),
                            engine.schema(),
                            &candidate,
                            engine.options(),
                        )
                    }
                }
                Err(message) => return Handled::plain(ROUTE, Response::error(500, &message)),
            };
            if action == "begin" {
                session.pending_migration = Some(sdl);
                ctx.metrics.record_migration_action(MigrationAction::Begin);
            } else {
                ctx.metrics.record_migration_action(MigrationAction::Plan);
            }
            Response::json(
                200,
                format!(
                    "{{\"session\":{id},\"action\":\"{action}\",\"plan\":{}}}",
                    plan.to_json()
                ),
            )
        }
        "commit" => {
            let force = matches!(doc.get("force"), Some(Json::Bool(true)));
            let Some(sdl) = session.pending_migration.clone() else {
                return Handled::plain(ROUTE, Response::error(409, "no open migration window"));
            };
            let regressions = match session.engine() {
                Ok(engine) => engine
                    .migration_regressions()
                    .expect("pending_migration implies an open window"),
                Err(message) => return Handled::plain(ROUTE, Response::error(500, &message)),
            };
            if !regressions.is_empty() && !force {
                return Handled::plain(
                    ROUTE,
                    Response::json(
                        409,
                        format!(
                            "{{\"committed\":false,\"regressions\":{},\
                             \"error\":\"window has regressions; pass force to commit anyway\"}}",
                            regressions.len()
                        ),
                    ),
                );
            }
            match ctx.registry.log_schema_change(
                id,
                &mut session,
                pg_store::MigrationPhase::Commit,
                "",
            ) {
                Ok(Some(micros)) => ctx.metrics.record_wal_append(micros),
                Ok(None) => {}
                Err(e) => {
                    return Handled::plain(
                        ROUTE,
                        Response::error(500, &format!("wal append failed: {e}")),
                    )
                }
            }
            match session.engine() {
                Ok(engine) => assert!(engine.commit_migration()),
                Err(message) => return Handled::plain(ROUTE, Response::error(500, &message)),
            }
            session.schema_sdl = sdl;
            session.pending_migration = None;
            // A commit that crossed languages can change the rule
            // families (STRICT ↔ LOOSE): demote-and-reseed so the
            // report below already reflects the new mode.
            session.realign_options();
            let report = match session.engine() {
                Ok(engine) => engine.report(),
                Err(message) => return Handled::plain(ROUTE, Response::error(500, &message)),
            };
            ctx.metrics.record_migration_action(MigrationAction::Commit);
            Response::json(
                200,
                format!("{{\"committed\":true,\"report\":{}}}", report.to_json()),
            )
        }
        _ => {
            if session.pending_migration.is_none() {
                return Handled::plain(ROUTE, Response::error(409, "no open migration window"));
            }
            match ctx.registry.log_schema_change(
                id,
                &mut session,
                pg_store::MigrationPhase::Abort,
                "",
            ) {
                Ok(Some(micros)) => ctx.metrics.record_wal_append(micros),
                Ok(None) => {}
                Err(e) => {
                    return Handled::plain(
                        ROUTE,
                        Response::error(500, &format!("wal append failed: {e}")),
                    )
                }
            }
            // A dormant session's window exists only as the pending SDL;
            // clearing it is the whole abort — no need to hydrate.
            if session.is_hydrated() {
                if let Ok(engine) = session.engine() {
                    engine.abort_migration();
                }
            }
            session.pending_migration = None;
            ctx.metrics.record_migration_action(MigrationAction::Abort);
            Response::json(200, "{\"aborted\":true}".to_owned())
        }
    };
    Handled {
        route: ROUTE,
        response,
        engine: Some("incremental"),
    }
}

/// The `421 Misdirected Request` a follower answers to writes; the
/// `x-pgschema-leader` header carries the address clients should retry
/// against.
fn misdirected(ctx: &Ctx, route: &'static str) -> Handled {
    let leader = ctx.follow.as_deref().unwrap_or("");
    Handled::plain(
        route,
        Response::error(
            421,
            &format!("this node is a read-only follower; write to the leader at {leader}"),
        )
        .with_header("x-pgschema-leader", leader),
    )
}

/// `GET /wal/tail?from=<seq>`: a bounded batch of raw WAL frames with
/// `seq >= from`, chunked-transfer encoded (one chunk per frame). The
/// response headers carry the cursor for the next poll (`x-wal-next-from`),
/// the log end at read time (`x-wal-end-seq`) and the bytes still
/// unshipped (`x-wal-remaining-bytes`). `410` when `from` precedes what
/// compaction retained — the caller must bootstrap from `/wal/snapshot`.
fn handle_wal_tail(ctx: &Ctx, request: &Request) -> Handled {
    const ROUTE: &str = "/wal/tail";
    let Some(store) = ctx.registry.store() else {
        return Handled::plain(
            ROUTE,
            Response::error(409, "server is running without --data-dir"),
        );
    };
    let from = match request.query_param("from").map(str::parse::<u64>) {
        Some(Ok(from)) if from >= 1 => from,
        Some(_) => {
            return Handled::plain(
                ROUTE,
                Response::error(400, "query parameter `from` must be a sequence number >= 1"),
            )
        }
        None => {
            return Handled::plain(
                ROUTE,
                Response::error(400, "missing query parameter `from`"),
            )
        }
    };
    let response = match store.read_tail(from, TAIL_BATCH_BYTES) {
        Ok(pg_store::Tail::Batch(batch)) => {
            let next_from = batch.next_from.to_string();
            let end_seq = batch.end_seq.to_string();
            let remaining = batch.remaining_bytes.to_string();
            Response::chunked(200, batch.frames)
                .with_header("x-wal-next-from", &next_from)
                .with_header("x-wal-end-seq", &end_seq)
                .with_header("x-wal-remaining-bytes", &remaining)
        }
        Ok(pg_store::Tail::SnapshotRequired { oldest_retained }) => Response::error(
            410,
            &format!(
                "sequence {from} was compacted away (oldest retained: {oldest_retained}); \
                 bootstrap from GET /wal/snapshot"
            ),
        )
        .with_header("x-wal-oldest-retained", &oldest_retained.to_string()),
        Err(e) => Response::error(500, &format!("wal read failed: {e}")),
    };
    Handled::plain(ROUTE, response)
}

/// `GET /wal/snapshot`: a consistent point-in-time snapshot blob for
/// bootstrapping a follower (see [`SessionRegistry::handoff_snapshot`]).
fn handle_wal_snapshot(ctx: &Ctx) -> Handled {
    const ROUTE: &str = "/wal/snapshot";
    let response = match ctx.registry.handoff_snapshot() {
        Some(blob) => Response::octets(200, blob),
        None => Response::error(409, "server is running without --data-dir"),
    };
    Handled::plain(ROUTE, response)
}

/// `POST /promote`: asks a follower to become the leader. Sets the
/// promotion flag and waits (bounded) for the follower loop to observe
/// it, sync the store and flip the role. Idempotent on a leader.
fn handle_promote(ctx: &Ctx) -> Handled {
    const ROUTE: &str = "/promote";
    if !ctx.is_follower() {
        return Handled::plain(
            ROUTE,
            Response::json(200, "{\"role\":\"leader\",\"promoted\":false}"),
        );
    }
    ctx.promote.store(true, Ordering::Relaxed);
    let deadline = Instant::now() + PROMOTE_TIMEOUT;
    while ctx.is_follower() {
        if Instant::now() >= deadline {
            return Handled::plain(
                ROUTE,
                Response::error(503, "promotion did not complete in time; retry"),
            );
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Handled::plain(
        ROUTE,
        Response::json(200, "{\"role\":\"leader\",\"promoted\":true}"),
    )
}

/// Compacts in the background of the request that tipped the WAL over
/// the configured size threshold (after its response has been routed).
fn maybe_compact(ctx: &Ctx) {
    let Some(store) = ctx.registry.store() else {
        return;
    };
    if ctx.compact_after_bytes == 0 || store.wal_size_bytes() < ctx.compact_after_bytes {
        return;
    }
    match ctx.registry.compact() {
        Ok(Some(outcome)) => {
            if ctx.log_format != LogFormat::Off {
                eprintln!(
                    "store: auto-compacted to generation {} ({} session(s), {} segment(s) removed)",
                    outcome.generation, outcome.sessions, outcome.segments_removed
                );
            }
        }
        Ok(None) => {} // another core is already compacting
        Err(e) => {
            if ctx.log_format != LogFormat::Off {
                eprintln!("store: auto-compaction failed: {e}");
            }
        }
    }
}

/// Resolves the `?lang=` query parameter (default SDL).
fn lang_param(request: &Request) -> Result<SchemaLanguage, String> {
    match request.query_param("lang") {
        None => Ok(SchemaLanguage::Sdl),
        Some(name) => name
            .parse()
            .map_err(|e: pgraph::ParseEnumError| e.to_string()),
    }
}

/// Compiles `source` from `lang` into the classified schema plus the
/// canonical SDL text that gets persisted: PG-Schema inputs lower to
/// SDL prefixed with the language pragma, so sessions, WAL records and
/// replication carry the source language with no format change.
fn compile_schema(source: &str, lang: SchemaLanguage) -> Result<(PgSchema, String), String> {
    match lang {
        SchemaLanguage::Sdl => {
            let schema = PgSchema::parse(source).map_err(|e| format!("schema: {e}"))?;
            Ok((schema, source.to_owned()))
        }
        SchemaLanguage::PgSchema => {
            let compiled =
                pg_pgschema::compile(source).map_err(|e| format!("schema (pgschema): {e}"))?;
            Ok((compiled.schema, compiled.sdl))
        }
    }
}

/// Decodes the `{"schema": <schema string>, "graph": <graph document>}`
/// envelope shared by `POST /validate` and `POST /sessions`. The
/// returned text is the canonical SDL (see [`compile_schema`]) because
/// durable sessions persist it.
fn parse_envelope(
    body: &[u8],
    lang: SchemaLanguage,
) -> Result<(PgSchema, pgraph::PropertyGraph, String), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let source = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field \"schema\"".to_owned())?;
    let (schema, sdl) = compile_schema(source, lang)?;
    let graph_value = doc
        .get("graph")
        .ok_or_else(|| "missing field \"graph\"".to_owned())?;
    let graph = json::graph_from_value(graph_value).map_err(|e| format!("graph: {e}"))?;
    Ok((schema, graph, sdl))
}

fn handle_validate(ctx: &Ctx, request: &Request) -> Handled {
    let engine = match request.query_param("engine") {
        None => Engine::Indexed,
        Some(name) => match name.parse::<Engine>() {
            Ok(engine) => engine,
            Err(e) => {
                return Handled::plain("/validate", Response::error(400, &e.to_string()));
            }
        },
    };
    let lang = match lang_param(request) {
        Ok(lang) => lang,
        Err(message) => return Handled::plain("/validate", Response::error(400, &message)),
    };
    let (schema, graph, sdl) = match parse_envelope(&request.body, lang) {
        Ok(parts) => parts,
        Err(message) => return Handled::plain("/validate", Response::error(400, &message)),
    };
    let options = ValidationOptions::builder()
        .engine(engine)
        .collect_metrics(true)
        .build();
    // A LOOSE PG-Schema graph type validates open-world.
    let options = pg_pgschema::apply_pragma(&options, &sdl);
    let report = validate(&graph, &schema, &options);
    ctx.metrics.record_validation(engine, report.metrics());
    Handled {
        route: "/validate",
        response: Response::json(200, report.to_json()),
        engine: Some(engine.name()),
    }
}

/// `POST /check-sat`: finite-model satisfiability of one type (or one
/// field) of the posted schema, through the ALCQI tableau plus the CDCL
/// finite-model search. Body:
/// `{"schema": <text>, "type": <name>, "field"?: <name>, "max_size"?: K}`,
/// with `?lang=` selecting the schema language as on `/validate`.
/// Answers `{"result": "satisfiable", "witness_size": N}`,
/// `{"result": "unsatisfiable"}`, or `{"result": "no_finite_model",
/// "bound": K, "tableau_satisfiable": bool|null}` — all with status 200;
/// the check itself succeeded either way.
fn handle_check_sat(request: &Request) -> Handled {
    const ROUTE: &str = "/check-sat";
    let lang = match lang_param(request) {
        Ok(lang) => lang,
        Err(message) => return Handled::plain(ROUTE, Response::error(400, &message)),
    };
    let doc = match std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_owned())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(message) => return Handled::plain(ROUTE, Response::error(400, &message)),
    };
    let Some(source) = doc.get("schema").and_then(Json::as_str) else {
        return Handled::plain(
            ROUTE,
            Response::error(400, "missing string field \"schema\""),
        );
    };
    let Some(type_name) = doc.get("type").and_then(Json::as_str) else {
        return Handled::plain(ROUTE, Response::error(400, "missing string field \"type\""));
    };
    let (schema, sdl) = match compile_schema(source, lang) {
        Ok(parts) => parts,
        Err(message) => return Handled::plain(ROUTE, Response::error(400, &message)),
    };
    let mut config = pg_reason::ReasonerConfig::default();
    if let Some(k) = doc.get("max_size") {
        match k.as_i64() {
            Some(k) if k >= 1 => config.max_graph_size = k as usize,
            _ => {
                return Handled::plain(
                    ROUTE,
                    Response::error(400, "\"max_size\" must be a positive integer"),
                )
            }
        }
    }
    let result = match doc.get("field").and_then(Json::as_str) {
        Some(field) => {
            // Field-mode reasoning works over the document; `sdl` is the
            // lowered text for PG-Schema inputs, so both languages share
            // the same path.
            let parsed = match gql_sdl::parse(&sdl) {
                Ok(parsed) => parsed,
                Err(e) => {
                    return Handled::plain(ROUTE, Response::error(400, &format!("schema: {e}")))
                }
            };
            match pg_reason::check_field_satisfiable(&parsed, type_name, field, &config) {
                Ok(result) => result,
                Err(message) => return Handled::plain(ROUTE, Response::error(400, &message)),
            }
        }
        None => pg_reason::check_type_satisfiable(&schema, type_name, &config),
    };
    let mut body = String::with_capacity(96);
    body.push_str("{\"type\":");
    push_json_string(&mut body, type_name);
    match result {
        pg_reason::Satisfiability::Satisfiable { size, .. } => {
            body.push_str(&format!(
                ",\"result\":\"satisfiable\",\"witness_size\":{size}}}"
            ));
        }
        pg_reason::Satisfiability::Unsatisfiable => {
            body.push_str(",\"result\":\"unsatisfiable\"}");
        }
        pg_reason::Satisfiability::NoFiniteModelFound {
            bound,
            tableau_satisfiable,
        } => {
            body.push_str(&format!(
                ",\"result\":\"no_finite_model\",\"bound\":{bound},\"tableau_satisfiable\":{}}}",
                match tableau_satisfiable {
                    Some(b) => b.to_string(),
                    None => "null".to_owned(),
                }
            ));
        }
    }
    Handled::plain(ROUTE, Response::json(200, body))
}

fn handle_create_session(ctx: &Ctx, request: &Request) -> Handled {
    let lang = match lang_param(request) {
        Ok(lang) => lang,
        Err(message) => return Handled::plain("/sessions", Response::error(400, &message)),
    };
    let (schema, graph, sdl) = match parse_envelope(&request.body, lang) {
        Ok(parts) => parts,
        Err(message) => return Handled::plain("/sessions", Response::error(400, &message)),
    };
    let options = ValidationOptions::builder().collect_metrics(true).build();
    let created = match ctx.registry.create(graph, Arc::new(schema), &sdl, &options) {
        Ok(created) => created,
        Err(e) => {
            return Handled::plain(
                "/sessions",
                Response::error(500, &format!("failed to persist session: {e}")),
            )
        }
    };
    if let Some(micros) = created.wal_micros {
        ctx.metrics.record_wal_append(micros);
    }
    let report = created
        .slot
        .session
        .lock()
        .unwrap()
        .engine()
        .expect("a freshly created session is hydrated")
        .report();
    ctx.metrics
        .record_validation(Engine::Incremental, report.metrics());
    let body = format!(
        "{{\"session\":{},\"lang\":\"{}\",\"report\":{}}}",
        created.id,
        lang.name(),
        report.to_json()
    );
    Handled {
        route: "/sessions",
        response: Response::json(201, body),
        engine: Some("incremental"),
    }
}

fn handle_delta(ctx: &Ctx, request: &Request, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/deltas";
    let delta = match std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_owned())
        .and_then(|text| json::delta_from_json(text).map_err(|e| e.to_string()))
    {
        Ok(delta) => delta,
        Err(message) => return Handled::plain(ROUTE, Response::error(400, &message)),
    };
    let slot = match ctx.registry.get(id) {
        Lookup::Found(slot) => slot,
        Lookup::Evicted => return Handled::plain(ROUTE, Response::error(410, "session evicted")),
        Lookup::Missing => return Handled::plain(ROUTE, Response::error(404, "no such session")),
    };
    let mut session = slot.session.lock().unwrap();
    let applied = match session.engine() {
        Ok(engine) => engine.apply(&delta),
        Err(message) => return Handled::plain(ROUTE, Response::error(500, &message)),
    };
    // Log the delta whether or not it applied cleanly: a failed apply
    // still leaves its deterministic partial effects on the graph (the
    // engine reseeds around them), and replay reproduces exactly those.
    match ctx.registry.log_delta(id, &mut session, &delta) {
        Ok(Some(micros)) => ctx.metrics.record_wal_append(micros),
        Ok(None) => {}
        Err(e) => {
            return Handled::plain(
                ROUTE,
                Response::error(500, &format!("wal append failed: {e}")),
            )
        }
    }
    match applied {
        Ok(outcome) => {
            session.deltas_applied += 1;
            let report = session.engine().expect("session is hydrated").report();
            let deltas_applied = session.deltas_applied;
            drop(session);
            ctx.metrics
                .record_validation(Engine::Incremental, report.metrics());
            let body = format!(
                "{{\"outcome\":{{\"elements_rechecked\":{},\"elements_total\":{},\
                 \"violations_added\":{},\"violations_removed\":{}}},\
                 \"deltas_applied\":{},\"report\":{}}}",
                outcome.elements_rechecked,
                outcome.elements_total,
                outcome.violations_added,
                outcome.violations_removed,
                deltas_applied,
                report.to_json()
            );
            Handled {
                route: ROUTE,
                response: Response::json(200, body),
                engine: Some("incremental"),
            }
        }
        // The delta named elements the session's graph does not have:
        // the state is untouched (the engine reseeds), report the
        // conflict to the client.
        Err(e) => Handled::plain(ROUTE, Response::error(409, &e.to_string())),
    }
}

fn handle_report(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/report";
    match ctx.registry.get(id) {
        Lookup::Found(slot) => {
            // Recovered sessions hydrate here: their first report is a
            // full revalidation through the incremental engine's seeding
            // pass.
            let report = match slot.session.lock().unwrap().engine() {
                Ok(engine) => engine.report(),
                Err(message) => return Handled::plain(ROUTE, Response::error(500, &message)),
            };
            Handled {
                route: ROUTE,
                response: Response::json(200, report.to_json()),
                engine: Some("incremental"),
            }
        }
        Lookup::Evicted => Handled::plain(ROUTE, Response::error(410, "session evicted")),
        Lookup::Missing => Handled::plain(ROUTE, Response::error(404, "no such session")),
    }
}

fn handle_graph(ctx: &Ctx, id: u64) -> Handled {
    const ROUTE: &str = "/sessions/{id}/graph";
    match ctx.registry.get(id) {
        // The graph is served without hydrating — dormant sessions keep
        // their recovery cheap until something asks for a report (a
        // mapped graph does materialize here: JSON needs the elements).
        Lookup::Found(slot) => match slot.session.lock().unwrap().graph() {
            Ok(graph) => {
                let body = json::to_json(graph);
                Handled::plain(ROUTE, Response::json(200, body))
            }
            Err(message) => Handled::plain(ROUTE, Response::error(500, &message)),
        },
        Lookup::Evicted => Handled::plain(ROUTE, Response::error(410, "session evicted")),
        Lookup::Missing => Handled::plain(ROUTE, Response::error(404, "no such session")),
    }
}

/// Writes the one-line request log to stderr.
fn log_request(
    format: LogFormat,
    method: &str,
    path: &str,
    status: u16,
    micros: u64,
    engine: Option<&'static str>,
) {
    let line = match format {
        LogFormat::Off => return,
        LogFormat::Text => format!(
            "method={method} path={path} status={status} micros={micros} engine={}",
            engine.unwrap_or("-")
        ),
        LogFormat::Json => {
            let mut line = String::with_capacity(96);
            line.push_str("{\"method\":");
            push_json_string(&mut line, method);
            line.push_str(",\"path\":");
            push_json_string(&mut line, path);
            line.push_str(&format!(
                ",\"status\":{status},\"micros\":{micros},\"engine\":"
            ));
            match engine {
                Some(engine) => push_json_string(&mut line, engine),
                None => line.push_str("null"),
            }
            line.push('}');
            line
        }
    };
    let stderr = io::stderr();
    let mut out = stderr.lock();
    let _ = writeln!(out, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_paths_parse() {
        assert_eq!(
            parse_session_path("/sessions/7/deltas"),
            Some((7, "deltas"))
        );
        assert_eq!(parse_session_path("/sessions/12"), Some((12, "")));
        assert_eq!(parse_session_path("/sessions/x/report"), None);
        assert_eq!(parse_session_path("/metrics"), None);
        assert_eq!(session_id_of("/sessions/7/deltas"), Some(7));
        assert_eq!(session_id_of("/validate"), None);
    }

    #[test]
    fn log_formats_parse() {
        assert_eq!("text".parse(), Ok(LogFormat::Text));
        assert_eq!("json".parse(), Ok(LogFormat::Json));
        assert_eq!("off".parse(), Ok(LogFormat::Off));
        let err = "xml".parse::<LogFormat>().unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown log format `xml` (expected text|json|off)"
        );
    }

    #[test]
    fn config_builder_overrides_defaults() {
        let config = ServerConfig::builder()
            .addr("127.0.0.1:0")
            .cores(3)
            .max_connections(17)
            .log_format(LogFormat::Off)
            .compact_after_bytes(0)
            .max_sessions(9)
            .follow("10.0.0.1:7878")
            .build();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.cores, 3);
        assert_eq!(config.max_connections, 17);
        assert_eq!(config.log_format, LogFormat::Off);
        assert_eq!(config.compact_after_bytes, 0);
        assert_eq!(config.max_sessions, Some(9));
        assert_eq!(config.follow.as_deref(), Some("10.0.0.1:7878"));
        // Untouched fields keep their defaults.
        assert_eq!(config.fsync, pg_store::FsyncPolicy::Always);
        assert!(config.data_dir.is_none());
    }
}
