//! JSON interchange for Property Graphs.
//!
//! The format is deliberately simple and GraphQL-value-shaped:
//!
//! ```json
//! {
//!   "nodes": [ {"id": 0, "label": "User", "properties": {"login": "alice"}} ],
//!   "edges": [ {"id": 0, "label": "user", "source": 1, "target": 0,
//!               "properties": {"certainty": 0.9}} ]
//! }
//! ```
//!
//! Two lossy aspects are made explicit and controlled:
//!
//! * JSON has no `ID`/`Enum` kinds — they are encoded as tagged objects
//!   `{"$id": "..."}` / `{"$enum": "..."}` so decode(encode(g)) == g.
//! * Integers are kept exact: whole-number tokens parse as `i64`, and the
//!   printer always writes floats with a `.` or exponent so the
//!   `Int`/`Float` distinction survives a roundtrip.
//!
//! The reader/printer below is self-contained (no external JSON crate):
//! a recursive-descent parser over bytes and a two-space pretty printer.
//! The parsed tree type [`Json`] and the value-level codecs
//! ([`graph_to_value`]/[`graph_from_value`],
//! [`delta_to_value`]/[`delta_from_value`]) are public, so consumers that
//! embed graphs or deltas inside larger documents (the `pg-server` HTTP
//! bodies) reuse this machinery instead of parsing twice.
//!
//! Mutation logs ([`GraphDelta`]) share the machinery: a delta document is
//! `{"ops": [...]}` where each op is a tagged object such as
//! `{"op": "set-node-property", "node": 0, "name": "login", "value": "al"}`
//! — see [`delta_to_json`] / [`delta_from_json`]. Element ids in a delta
//! refer to the graph the delta will be applied to, i.e. the `id` fields
//! of a graph document written by [`to_json`].

use std::collections::BTreeMap;
use std::fmt;

use crate::delta::{DeltaOp, GraphDelta};
use crate::{EdgeId, NodeId, PropertyGraph, Value};

/// Errors raised while decoding a JSON graph document.
#[derive(Debug)]
pub enum JsonError {
    /// The document was not syntactically valid JSON / did not match the
    /// expected shape. The payload describes the problem and its byte
    /// offset.
    Parse(String),
    /// An edge referenced a node id that does not appear in `nodes`.
    DanglingEdge {
        /// The edge's position in the `edges` array.
        edge_index: usize,
        /// The missing node id.
        node: u32,
    },
    /// A property value used a JSON feature the Value model cannot hold
    /// (e.g. a nested object that is not an `$id`/`$enum` tag).
    BadValue(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse(e) => write!(f, "invalid graph JSON: {e}"),
            JsonError::DanglingEdge { edge_index, node } => {
                write!(f, "edge #{edge_index} references unknown node {node}")
            }
            JsonError::BadValue(msg) => write!(f, "unsupported property value: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------------
// Generic JSON tree
// ---------------------------------------------------------------------------

/// Parsed JSON value. Object member order is preserved.
///
/// This is the tree every (de)serializer in this module works over; it is
/// public so consumers with composite payloads — e.g. an HTTP body
/// `{"schema": "...", "graph": {...}}` — can parse once with
/// [`Json::parse`], pick members apart with [`Json::get`]/[`Json::as_str`],
/// and hand sub-trees to [`graph_from_value`] / [`delta_from_value`]
/// instead of re-implementing a JSON parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A whole-number token that fits `i64`.
    Int(i64),
    /// Any other numeric token.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, with member order preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        Parser::new(text).parse_document()
    }

    /// The value's JSON type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Member lookup on an object (`None` for missing keys and for
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => get(members, key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a whole-number token.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Pretty-prints with the module's canonical two-space indentation —
    /// the same layout [`to_json`] emits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        print_json(&mut out, self, 0);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl fmt::Display) -> JsonError {
        JsonError::Parse(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format_args!("expected {:?}", b as char)))
        }
    }

    fn parse_document(mut self) -> Result<Json, JsonError> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after document"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format_args!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format_args!("expected {word:?}")))
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: \uHHHH\uLLLL.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("lone surrogate escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format_args!("bad escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let token =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number token is ASCII");
        if !is_float {
            if let Ok(i) = token.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            // Whole number outside i64: degrade to float like serde_json's
            // lossy path.
        }
        token
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format_args!("bad number token {token:?}")))
    }
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `f` so it re-parses as a float: Rust's shortest-roundtrip
/// `Display`, plus a forced `.0` when that prints a bare integer.
fn push_float(out: &mut String, f: f64) {
    debug_assert!(f.is_finite(), "non-finite floats have no JSON form");
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn print_json(out: &mut String, v: &Json, indent: usize) {
    const STEP: usize = 2;
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => push_float(out, *f),
        Json::Str(s) => escape_into(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (ix, item) in items.iter().enumerate() {
                if ix > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                print_json(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Json::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (ix, (k, val)) in members.iter().enumerate() {
                if ix > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                print_json(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Graph <-> JSON mapping
// ---------------------------------------------------------------------------

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => {
            if f.is_finite() {
                Json::Float(*f)
            } else {
                Json::Null
            }
        }
        Value::String(s) => Json::Str(s.clone()),
        Value::Bool(b) => Json::Bool(*b),
        Value::Id(s) => Json::Object(vec![("$id".to_owned(), Json::Str(s.clone()))]),
        Value::Enum(s) => Json::Object(vec![("$enum".to_owned(), Json::Str(s.clone()))]),
        Value::List(items) => Json::Array(items.iter().map(value_to_json).collect()),
        Value::Null => Json::Null,
    }
}

fn value_from_json(v: &Json) -> Result<Value, JsonError> {
    match v {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Str(s) => Ok(Value::String(s.clone())),
        Json::Array(items) => Ok(Value::List(
            items
                .iter()
                .map(value_from_json)
                .collect::<Result<_, _>>()?,
        )),
        Json::Object(members) => {
            if members.len() == 1 {
                if let (key, Json::Str(s)) = &members[0] {
                    if key == "$id" {
                        return Ok(Value::Id(s.clone()));
                    }
                    if key == "$enum" {
                        return Ok(Value::Enum(s.clone()));
                    }
                }
            }
            let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
            Err(JsonError::BadValue(format!(
                "objects other than $id/$enum tags are not property values: keys {keys:?}"
            )))
        }
    }
}

/// Field lookup in a parsed object (serde-style: unknown members are
/// ignored, missing required members are an error).
fn get<'j>(members: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u32(members: &[(String, Json)], key: &str, ctx: &str) -> Result<u32, JsonError> {
    match get(members, key) {
        Some(Json::Int(i)) if *i >= 0 && *i <= u32::MAX as i64 => Ok(*i as u32),
        Some(other) => Err(JsonError::Parse(format!(
            "{ctx}: field {key:?} must be a u32, got {}",
            other.kind()
        ))),
        None => Err(JsonError::Parse(format!("{ctx}: missing field {key:?}"))),
    }
}

fn get_str<'j>(members: &'j [(String, Json)], key: &str, ctx: &str) -> Result<&'j str, JsonError> {
    match get(members, key) {
        Some(Json::Str(s)) => Ok(s),
        Some(other) => Err(JsonError::Parse(format!(
            "{ctx}: field {key:?} must be a string, got {}",
            other.kind()
        ))),
        None => Err(JsonError::Parse(format!("{ctx}: missing field {key:?}"))),
    }
}

fn get_properties<'j>(
    members: &'j [(String, Json)],
    ctx: &str,
) -> Result<&'j [(String, Json)], JsonError> {
    match get(members, "properties") {
        Some(Json::Object(props)) => Ok(props),
        Some(other) => Err(JsonError::Parse(format!(
            "{ctx}: field \"properties\" must be an object, got {}",
            other.kind()
        ))),
        None => Ok(&[]),
    }
}

fn as_object<'j>(v: &'j Json, ctx: &str) -> Result<&'j [(String, Json)], JsonError> {
    match v {
        Json::Object(members) => Ok(members),
        other => Err(JsonError::Parse(format!(
            "{ctx}: expected an object, got {}",
            other.kind()
        ))),
    }
}

fn as_array<'j>(v: &'j Json, ctx: &str) -> Result<&'j [Json], JsonError> {
    match v {
        Json::Array(items) => Ok(items),
        other => Err(JsonError::Parse(format!(
            "{ctx}: expected an array, got {}",
            other.kind()
        ))),
    }
}

/// Serialises a graph to its canonical (pretty) JSON document.
///
/// Properties are emitted in sorted key order so the output is
/// deterministic regardless of insertion order.
pub fn to_json(g: &PropertyGraph) -> String {
    graph_to_value(g).to_string()
}

/// Builds the [`Json`] tree of a graph document — [`to_json`] without the
/// final rendering, for embedding a graph inside a larger payload.
pub fn graph_to_value(g: &PropertyGraph) -> Json {
    fn props_json<'a>(props: impl Iterator<Item = (&'a str, &'a Value)>) -> Json {
        let sorted: BTreeMap<&str, &Value> = props.collect();
        Json::Object(
            sorted
                .into_iter()
                .map(|(k, v)| (k.to_owned(), value_to_json(v)))
                .collect(),
        )
    }
    let nodes = Json::Array(
        g.nodes()
            .map(|n| {
                let mut members = vec![
                    ("id".to_owned(), Json::Int(n.id.index() as i64)),
                    ("label".to_owned(), Json::Str(n.label().to_owned())),
                ];
                let props = props_json(n.properties());
                if !matches!(&props, Json::Object(m) if m.is_empty()) {
                    members.push(("properties".to_owned(), props));
                }
                Json::Object(members)
            })
            .collect(),
    );
    let edges = Json::Array(
        g.edges()
            .map(|e| {
                let mut members = vec![
                    ("id".to_owned(), Json::Int(e.id.index() as i64)),
                    ("label".to_owned(), Json::Str(e.label().to_owned())),
                    ("source".to_owned(), Json::Int(e.source().index() as i64)),
                    ("target".to_owned(), Json::Int(e.target().index() as i64)),
                ];
                let props = props_json(e.properties());
                if !matches!(&props, Json::Object(m) if m.is_empty()) {
                    members.push(("properties".to_owned(), props));
                }
                Json::Object(members)
            })
            .collect(),
    );
    Json::Object(vec![
        ("nodes".to_owned(), nodes),
        ("edges".to_owned(), edges),
    ])
}

/// Parses a graph from its JSON document. Node ids in the document are
/// arbitrary distinct numbers; they are remapped to dense ids.
pub fn from_json(text: &str) -> Result<PropertyGraph, JsonError> {
    graph_from_value(&Json::parse(text)?)
}

/// Decodes a graph from an already-parsed [`Json`] tree — [`from_json`]
/// without the parsing step, for graphs embedded in a larger document.
pub fn graph_from_value(doc: &Json) -> Result<PropertyGraph, JsonError> {
    let root = as_object(doc, "document")?;
    let nodes = as_array(
        get(root, "nodes")
            .ok_or_else(|| JsonError::Parse("document: missing field \"nodes\"".into()))?,
        "nodes",
    )?;
    let edges = as_array(
        get(root, "edges")
            .ok_or_else(|| JsonError::Parse("document: missing field \"edges\"".into()))?,
        "edges",
    )?;

    let mut g = PropertyGraph::with_capacity(nodes.len(), edges.len());
    let mut remap = std::collections::HashMap::with_capacity(nodes.len());
    for (ix, n) in nodes.iter().enumerate() {
        let ctx = format!("node #{ix}");
        let members = as_object(n, &ctx)?;
        let doc_id = get_u32(members, "id", &ctx)?;
        let label = get_str(members, "label", &ctx)?;
        let id = g.add_node(label.to_owned());
        remap.insert(doc_id, id);
        for (k, v) in get_properties(members, &ctx)? {
            g.set_node_property(id, k.clone(), value_from_json(v)?);
        }
    }
    for (ix, e) in edges.iter().enumerate() {
        let ctx = format!("edge #{ix}");
        let members = as_object(e, &ctx)?;
        let source = get_u32(members, "source", &ctx)?;
        let target = get_u32(members, "target", &ctx)?;
        let label = get_str(members, "label", &ctx)?;
        let src = *remap.get(&source).ok_or(JsonError::DanglingEdge {
            edge_index: ix,
            node: source,
        })?;
        let dst: NodeId = *remap.get(&target).ok_or(JsonError::DanglingEdge {
            edge_index: ix,
            node: target,
        })?;
        let eid = g.add_edge(src, dst, label.to_owned()).expect("remapped");
        for (k, v) in get_properties(members, &ctx)? {
            g.set_edge_property(eid, k.clone(), value_from_json(v)?);
        }
    }
    Ok(g)
}

// ---------------------------------------------------------------------------
// Delta <-> JSON mapping
// ---------------------------------------------------------------------------

fn op_to_json(op: &DeltaOp) -> Json {
    fn tag(name: &str) -> (String, Json) {
        ("op".to_owned(), Json::Str(name.to_owned()))
    }
    fn node(id: NodeId) -> (String, Json) {
        ("node".to_owned(), Json::Int(id.index() as i64))
    }
    fn edge(id: EdgeId) -> (String, Json) {
        ("edge".to_owned(), Json::Int(id.index() as i64))
    }
    fn label(l: &str) -> (String, Json) {
        ("label".to_owned(), Json::Str(l.to_owned()))
    }
    fn name(n: &str) -> (String, Json) {
        ("name".to_owned(), Json::Str(n.to_owned()))
    }
    Json::Object(match op {
        DeltaOp::AddNode { label: l } => vec![tag("add-node"), label(l)],
        DeltaOp::RemoveNode { node: n } => vec![tag("remove-node"), node(*n)],
        DeltaOp::AddEdge {
            source,
            target,
            label: l,
        } => vec![
            tag("add-edge"),
            ("source".to_owned(), Json::Int(source.index() as i64)),
            ("target".to_owned(), Json::Int(target.index() as i64)),
            label(l),
        ],
        DeltaOp::RemoveEdge { edge: e } => vec![tag("remove-edge"), edge(*e)],
        DeltaOp::SetNodeProperty {
            node: n,
            name: k,
            value,
        } => vec![
            tag("set-node-property"),
            node(*n),
            name(k),
            ("value".to_owned(), value_to_json(value)),
        ],
        DeltaOp::RemoveNodeProperty { node: n, name: k } => {
            vec![tag("remove-node-property"), node(*n), name(k)]
        }
        DeltaOp::SetEdgeProperty {
            edge: e,
            name: k,
            value,
        } => vec![
            tag("set-edge-property"),
            edge(*e),
            name(k),
            ("value".to_owned(), value_to_json(value)),
        ],
        DeltaOp::RemoveEdgeProperty { edge: e, name: k } => {
            vec![tag("remove-edge-property"), edge(*e), name(k)]
        }
        DeltaOp::SetNodeLabel { node: n, label: l } => {
            vec![tag("set-node-label"), node(*n), label(l)]
        }
    })
}

fn op_from_json(v: &Json, ctx: &str) -> Result<DeltaOp, JsonError> {
    let members = as_object(v, ctx)?;
    let tag = get_str(members, "op", ctx)?;
    let node = |key: &str| get_u32(members, key, ctx).map(|i| NodeId::from_index(i as usize));
    let edge = |key: &str| get_u32(members, key, ctx).map(|i| EdgeId::from_index(i as usize));
    let string = |key: &str| get_str(members, key, ctx).map(str::to_owned);
    let value = || {
        get(members, "value")
            .ok_or_else(|| JsonError::Parse(format!("{ctx}: missing field \"value\"")))
            .and_then(value_from_json)
    };
    match tag {
        "add-node" => Ok(DeltaOp::AddNode {
            label: string("label")?,
        }),
        "remove-node" => Ok(DeltaOp::RemoveNode {
            node: node("node")?,
        }),
        "add-edge" => Ok(DeltaOp::AddEdge {
            source: node("source")?,
            target: node("target")?,
            label: string("label")?,
        }),
        "remove-edge" => Ok(DeltaOp::RemoveEdge {
            edge: edge("edge")?,
        }),
        "set-node-property" => Ok(DeltaOp::SetNodeProperty {
            node: node("node")?,
            name: string("name")?,
            value: value()?,
        }),
        "remove-node-property" => Ok(DeltaOp::RemoveNodeProperty {
            node: node("node")?,
            name: string("name")?,
        }),
        "set-edge-property" => Ok(DeltaOp::SetEdgeProperty {
            edge: edge("edge")?,
            name: string("name")?,
            value: value()?,
        }),
        "remove-edge-property" => Ok(DeltaOp::RemoveEdgeProperty {
            edge: edge("edge")?,
            name: string("name")?,
        }),
        "set-node-label" => Ok(DeltaOp::SetNodeLabel {
            node: node("node")?,
            label: string("label")?,
        }),
        other => Err(JsonError::Parse(format!("{ctx}: unknown op {other:?}"))),
    }
}

/// Serialises a mutation log to its JSON document (`{"ops": [...]}`).
pub fn delta_to_json(delta: &GraphDelta) -> String {
    delta_to_value(delta).to_string()
}

/// Builds the [`Json`] tree of a mutation log (`{"ops": [...]}`).
pub fn delta_to_value(delta: &GraphDelta) -> Json {
    let ops = Json::Array(delta.ops().iter().map(op_to_json).collect());
    Json::Object(vec![("ops".to_owned(), ops)])
}

/// Parses a mutation log from its JSON document.
///
/// Element ids are taken literally (no remapping): they must denote
/// elements of the graph the delta will be applied to, or elements the
/// delta itself creates (dense continuation ids, see
/// [`DeltaOp`]).
pub fn delta_from_json(text: &str) -> Result<GraphDelta, JsonError> {
    delta_from_value(&Json::parse(text)?)
}

/// Decodes a mutation log from an already-parsed [`Json`] tree.
pub fn delta_from_value(doc: &Json) -> Result<GraphDelta, JsonError> {
    let root = as_object(doc, "document")?;
    let ops = as_array(
        get(root, "ops")
            .ok_or_else(|| JsonError::Parse("document: missing field \"ops\"".into()))?,
        "ops",
    )?;
    let parsed = ops
        .iter()
        .enumerate()
        .map(|(ix, op)| op_from_json(op, &format!("op #{ix}")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(GraphDelta::from_ops(parsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> PropertyGraph {
        let mut g = GraphBuilder::new()
            .node("u", "User")
            .prop("u", "login", "alice")
            .prop("u", "age", 30i64)
            .node("s", "UserSession")
            .edge("s", "u", "user")
            .edge_prop("certainty", 0.75)
            .build()
            .unwrap();
        let u = g.node_ids().next().unwrap();
        g.set_node_property(u, "id", Value::Id("u-17".into()));
        g.set_node_property(u, "nicknames", Value::from(vec!["al", "lice"]));
        g.set_node_property(u, "unit", Value::Enum("METER".into()));
        g
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let text = to_json(&g);
        let g2 = from_json(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn id_and_enum_survive_roundtrip() {
        let g = sample();
        let g2 = from_json(&to_json(&g)).unwrap();
        let u = g2.nodes().find(|n| n.label() == "User").unwrap();
        assert_eq!(u.property("id"), Some(&Value::Id("u-17".into())));
        assert_eq!(u.property("unit"), Some(&Value::Enum("METER".into())));
    }

    #[test]
    fn large_integers_are_exact() {
        let mut g = PropertyGraph::new();
        let n = g.add_node("N");
        let big = (1i64 << 60) + 7;
        g.set_node_property(n, "big", Value::Int(big));
        let g2 = from_json(&to_json(&g)).unwrap();
        let n2 = g2.nodes().next().unwrap();
        assert_eq!(n2.property("big"), Some(&Value::Int(big)));
    }

    #[test]
    fn whole_valued_floats_stay_floats() {
        let mut g = PropertyGraph::new();
        let n = g.add_node("N");
        g.set_node_property(n, "f", Value::Float(120_000_000_000.0));
        g.set_node_property(n, "g", Value::Float(-3.0));
        let g2 = from_json(&to_json(&g)).unwrap();
        let n2 = g2.nodes().next().unwrap();
        assert_eq!(n2.property("f"), Some(&Value::Float(120_000_000_000.0)));
        assert_eq!(n2.property("g"), Some(&Value::Float(-3.0)));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut g = PropertyGraph::new();
        let n = g.add_node("N");
        let tricky = "quote\" slash\\ newline\n tab\t ctrl\u{1} π❤";
        g.set_node_property(n, "s", Value::String(tricky.into()));
        let g2 = from_json(&to_json(&g)).unwrap();
        let n2 = g2.nodes().next().unwrap();
        assert_eq!(n2.property("s"), Some(&Value::String(tricky.into())));
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let text = r#"{"nodes":[{"id":0,"label":"A",
                        "properties":{"s":"\ud83d\ude00ok"}}],"edges":[]}"#;
        let g = from_json(text).unwrap();
        let n = g.nodes().next().unwrap();
        assert_eq!(n.property("s"), Some(&Value::String("😀ok".into())));
    }

    #[test]
    fn dangling_edge_is_reported() {
        let text = r#"{"nodes":[{"id":0,"label":"A"}],
                       "edges":[{"id":0,"label":"rel","source":0,"target":9}]}"#;
        match from_json(text) {
            Err(JsonError::DanglingEdge {
                edge_index: 0,
                node: 9,
            }) => {}
            other => panic!("expected dangling edge error, got {other:?}"),
        }
    }

    #[test]
    fn arbitrary_objects_are_rejected() {
        let text = r#"{"nodes":[{"id":0,"label":"A",
                        "properties":{"bad":{"x":1}}}],"edges":[]}"#;
        assert!(matches!(from_json(text), Err(JsonError::BadValue(_))));
    }

    #[test]
    fn syntax_errors_name_a_position() {
        let err = from_json("{\"nodes\": [,]}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("invalid graph JSON"), "{msg}");
        assert!(msg.contains("byte"), "{msg}");
    }

    #[test]
    fn sparse_document_ids_are_remapped() {
        let text = r#"{"nodes":[{"id":100,"label":"A"},{"id":7,"label":"B"}],
                       "edges":[{"id":3,"label":"rel","source":100,"target":7}]}"#;
        let g = from_json(text).unwrap();
        assert_eq!(g.node_count(), 2);
        let e = g.edges().next().unwrap();
        assert_eq!(g.node_label(e.source()), Some("A"));
        assert_eq!(g.node_label(e.target()), Some("B"));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = PropertyGraph::new();
        assert_eq!(from_json(&to_json(&g)).unwrap(), g);
    }

    #[test]
    fn delta_roundtrip_covers_every_op() {
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let e0 = EdgeId::from_index(0);
        let delta = GraphDelta::new()
            .add_node("User")
            .remove_node(n1)
            .add_edge(n0, n1, "follows")
            .remove_edge(e0)
            .set_node_property(n0, "login", Value::from("alice"))
            .remove_node_property(n0, "login")
            .set_edge_property(e0, "w", Value::Float(0.5))
            .remove_edge_property(e0, "w")
            .set_node_label(n0, "Admin");
        let text = delta_to_json(&delta);
        let back = delta_from_json(&text).unwrap();
        assert_eq!(delta, back);
    }

    #[test]
    fn delta_values_keep_tagged_kinds() {
        let n0 = NodeId::from_index(0);
        let delta = GraphDelta::new()
            .set_node_property(n0, "id", Value::Id("u-17".into()))
            .set_node_property(n0, "unit", Value::Enum("METER".into()))
            .set_node_property(n0, "xs", Value::from(vec![1i64, 2]));
        let back = delta_from_json(&delta_to_json(&delta)).unwrap();
        assert_eq!(delta, back);
    }

    #[test]
    fn delta_parse_errors_are_located() {
        assert!(delta_from_json("{}").is_err());
        let err = delta_from_json(r#"{"ops": [{"op": "warp"}]}"#).unwrap_err();
        assert!(err.to_string().contains("unknown op"), "{err}");
        let err = delta_from_json(r#"{"ops": [{"op": "add-node"}]}"#).unwrap_err();
        assert!(err.to_string().contains("op #0"), "{err}");
    }

    #[test]
    fn embedded_graph_and_delta_decode_from_value_trees() {
        // The server's request shape: graph and delta nested in an
        // envelope, decoded via the public value-level API.
        let g = sample();
        let delta = GraphDelta::new().set_node_property(
            g.node_ids().next().unwrap(),
            "age",
            Value::Int(31),
        );
        let envelope = Json::Object(vec![
            (
                "schema".to_owned(),
                Json::Str("type User { x: Int }".to_owned()),
            ),
            ("graph".to_owned(), graph_to_value(&g)),
            ("delta".to_owned(), delta_to_value(&delta)),
        ]);
        let text = envelope.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("type User { x: Int }")
        );
        let g2 = graph_from_value(parsed.get("graph").unwrap()).unwrap();
        assert_eq!(g, g2);
        let d2 = delta_from_value(parsed.get("delta").unwrap()).unwrap();
        assert_eq!(delta, d2);
        assert!(parsed.get("missing").is_none());
        assert!(parsed.get("schema").unwrap().get("x").is_none());
    }

    #[test]
    fn delta_applies_after_roundtrip() {
        let mut g = sample();
        let u = g.nodes().find(|n| n.label() == "User").unwrap().id;
        let delta = GraphDelta::new()
            .set_node_property(u, "age", Value::Int(31))
            .add_node("UserSession");
        let delta = delta_from_json(&delta_to_json(&delta)).unwrap();
        let eff = delta.apply_to(&mut g).unwrap();
        assert_eq!(g.node_property(u, "age"), Some(&Value::Int(31)));
        assert_eq!(eff.added_nodes.len(), 1);
    }
}
