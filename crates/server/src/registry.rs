//! The concurrent session registry: one incremental validation session
//! per id, each an [`IncrementalEngine`] owning its graph and holding
//! its schema through an `Arc<PgSchema>` (sessions outlive the request
//! that parsed the schema).
//!
//! Locking is two-level: a registry-wide `RwLock` guards only the id →
//! slot map (held for a hash lookup), while each slot has its own
//! `Mutex` serialising deltas and report reads *of that session*.
//! Traffic to different sessions therefore runs fully in parallel
//! across the worker pool; interleaved deltas to one session are
//! serialised, which is exactly the consistency the incremental engine
//! needs — and, when a [`Store`] is attached, exactly the consistency
//! the WAL needs: appends happen inside the session's critical section,
//! so per-session log order equals apply order.
//!
//! With a store attached (`--data-dir`) the registry is durable:
//! session creation, every delta (including ones that fail mid-way —
//! their partial effects are deterministic) and deletion are logged
//! before the response is acknowledged, and [`SessionRegistry::with_store`]
//! (Self::with_store) rebuilds every session on startup. Recovered
//! sessions start *dormant* — graph and SDL in memory, no engine — and
//! are revalidated lazily by the first request that touches them
//! ([`Session::engine`]).
//!
//! With `--max-sessions` the registry is bounded: creating past the cap
//! evicts the least-recently-used session. Evicted ids keep answering
//! [`Lookup::Evicted`] (HTTP `410 Gone`) for the life of the process;
//! durably they are deleted, so after a restart they are
//! indistinguishable from removed sessions (`404`).

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use pg_schema::{IncrementalEngine, PgSchema, ValidationOptions};
use pg_store::{GraphPayload, LazyGraph, Recovered, Store, StoreRecord};
use pgraph::{GraphDelta, PropertyGraph};

/// A session's engine, materialised lazily after recovery.
enum SessionState {
    /// The engine is live (seeded by a full validation pass).
    Ready(Box<IncrementalEngine<Arc<PgSchema>>>),
    /// Recovered from disk but not yet revalidated; the first request
    /// that needs the engine pays for the seeding pass. The graph may
    /// still be a zero-copy view into the memory-mapped snapshot file
    /// ([`LazyGraph::is_mapped`]); it stays that way until something
    /// touches it, and snapshot capture re-ships the mapped bytes
    /// verbatim.
    Dormant {
        /// The recovered graph.
        graph: LazyGraph,
    },
    /// Hydration failed (the stored SDL no longer parses) — terminal.
    Poisoned,
}

/// One validation session.
pub struct Session {
    state: SessionState,
    /// The schema's SDL source, kept verbatim for WAL records and
    /// snapshot capture.
    pub schema_sdl: String,
    options: ValidationOptions,
    /// Deltas successfully applied since the session was created.
    pub deltas_applied: u64,
    /// Sequence number of this session's last WAL record (0 without a
    /// store).
    pub last_seq: u64,
    /// Candidate schema SDL of an open migration window, kept verbatim
    /// for snapshot capture (an open window must survive compaction) and
    /// for rehydrating the window after recovery.
    pub pending_migration: Option<String>,
}

impl Session {
    /// The engine, hydrating a dormant session first (one full
    /// validation pass through the incremental engine's seeding path).
    pub fn engine(&mut self) -> Result<&mut IncrementalEngine<Arc<PgSchema>>, String> {
        if matches!(self.state, SessionState::Dormant { .. }) {
            let SessionState::Dormant { graph } =
                std::mem::replace(&mut self.state, SessionState::Poisoned)
            else {
                unreachable!()
            };
            let schema = PgSchema::parse(&self.schema_sdl)
                .map_err(|e| format!("recovered schema no longer parses: {e}"))?;
            let graph = graph
                .into_graph()
                .map_err(|e| format!("recovered graph failed to materialize: {e}"))?;
            // Schema text compiled from the PG-Schema frontend carries a
            // language pragma; a LOOSE graph type hydrates open-world
            // (strong family off) however it arrived here — recovery,
            // replication, or an LRU round trip.
            let options = pg_pgschema::apply_pragma(&self.options, &self.schema_sdl);
            let mut engine = IncrementalEngine::new(graph, Arc::new(schema), &options);
            // A WAL-recovered (or follower-replicated) open migration
            // window re-opens with the engine: the candidate side picks
            // up exactly where the crash left it.
            if let Some(sdl) = &self.pending_migration {
                let candidate = PgSchema::parse(sdl)
                    .map_err(|e| format!("pending migration schema no longer parses: {e}"))?;
                engine.begin_migration(candidate);
            }
            self.state = SessionState::Ready(Box::new(engine));
        }
        match &mut self.state {
            SessionState::Ready(engine) => Ok(engine),
            _ => Err("session failed hydration".to_owned()),
        }
    }

    /// The session's graph as a snapshot-writer payload, without forcing
    /// hydration *or* materialization: a dormant session whose graph is
    /// still mapped into the snapshot file hands back its verbatim
    /// `PGCS` bytes, so compaction and handoff capture it zero-copy.
    pub fn payload(&self) -> GraphPayload<'_> {
        match &self.state {
            SessionState::Ready(engine) => GraphPayload::Graph(engine.graph()),
            SessionState::Dormant { graph } => GraphPayload::from(graph),
            SessionState::Poisoned => {
                static EMPTY: std::sync::OnceLock<PropertyGraph> = std::sync::OnceLock::new();
                GraphPayload::Graph(EMPTY.get_or_init(PropertyGraph::new))
            }
        }
    }

    /// The session's materialized graph, loading a mapped dormant graph
    /// in place but *not* seeding the engine (serving `GET …/graph` must
    /// not trigger a full revalidation).
    pub fn graph(&mut self) -> Result<&PropertyGraph, String> {
        match &mut self.state {
            SessionState::Ready(engine) => Ok(engine.graph()),
            SessionState::Dormant { graph } => graph
                .load()
                .map(|g| &*g)
                .map_err(|e| format!("recovered graph failed to materialize: {e}")),
            SessionState::Poisoned => {
                static EMPTY: std::sync::OnceLock<PropertyGraph> = std::sync::OnceLock::new();
                Ok(EMPTY.get_or_init(PropertyGraph::new))
            }
        }
    }

    /// True once the engine has been seeded.
    pub fn is_hydrated(&self) -> bool {
        matches!(self.state, SessionState::Ready(_))
    }

    /// Realigns a live engine with `schema_sdl`'s language pragma after
    /// a schema swap (migration commit). When the committed schema
    /// implies a different rule-family set than the engine was seeded
    /// with — a STRICT↔LOOSE cross-language migration — the session is
    /// demoted to dormant, so the next touch re-seeds it under the right
    /// options, exactly as a follower does on a replicated commit.
    pub fn realign_options(&mut self) {
        let SessionState::Ready(engine) = &self.state else {
            return;
        };
        let wanted = pg_pgschema::apply_pragma(&self.options, &self.schema_sdl);
        let have = engine.options();
        if (wanted.weak, wanted.directives, wanted.strong)
            == (have.weak, have.directives, have.strong)
        {
            return;
        }
        let state = std::mem::replace(&mut self.state, SessionState::Poisoned);
        self.state = match state {
            SessionState::Ready(engine) => SessionState::Dormant {
                graph: engine.into_graph().into(),
            },
            other => other,
        };
    }
}

/// A session plus its LRU stamp. The stamp lives outside the session
/// mutex so lookups can bump it without blocking behind an in-flight
/// delta.
pub struct SessionSlot {
    /// The session, serialising all access to its engine and graph.
    pub session: Mutex<Session>,
    last_used: AtomicU64,
}

/// Result of a registry lookup.
pub enum Lookup {
    /// The session is live.
    Found(Arc<SessionSlot>),
    /// The id existed but was evicted by `--max-sessions` (HTTP 410).
    Evicted,
    /// The id never existed or was deleted (HTTP 404).
    Missing,
}

/// What [`SessionRegistry::create`] did.
pub struct CreateOutcome {
    /// The new session's id.
    pub id: u64,
    /// The created slot — handed back so the caller can read the seed
    /// report without a second lookup (which could race with eviction).
    pub slot: Arc<SessionSlot>,
    /// The LRU victim evicted to make room, if the registry was full.
    pub evicted: Option<u64>,
    /// Microseconds spent appending (and fsyncing) the WAL record, when
    /// a store is attached.
    pub wal_micros: Option<u64>,
}

/// What [`SessionRegistry::remove`] found.
pub enum RemoveOutcome {
    /// Removed; carries the WAL append latency when a store is attached.
    Removed(Option<u64>),
    /// The id had already been evicted (HTTP 410).
    Evicted,
    /// No such session (HTTP 404).
    Missing,
}

/// Registry of live sessions, shared by all workers.
pub struct SessionRegistry {
    sessions: RwLock<HashMap<u64, Arc<SessionSlot>>>,
    evicted: Mutex<HashSet<u64>>,
    next_id: AtomicU64,
    clock: AtomicU64,
    store: Option<Arc<Store>>,
    /// Options new sessions validate with; kept registry-wide so
    /// replicated `Create` records (which carry no options) hydrate the
    /// same way locally created sessions do.
    options: ValidationOptions,
    max_sessions: Option<usize>,
    evicted_total: AtomicU64,
    recovered_total: u64,
}

impl SessionRegistry {
    /// An unbounded, purely in-memory registry; ids start at 1.
    pub fn new() -> Self {
        SessionRegistry::in_memory(None)
    }

    /// An in-memory registry, optionally bounded by `--max-sessions`.
    pub fn in_memory(max_sessions: Option<usize>) -> Self {
        SessionRegistry {
            sessions: RwLock::new(HashMap::new()),
            evicted: Mutex::new(HashSet::new()),
            next_id: AtomicU64::new(1),
            clock: AtomicU64::new(0),
            store: None,
            options: ValidationOptions::default(),
            max_sessions,
            evicted_total: AtomicU64::new(0),
            recovered_total: 0,
        }
    }

    /// A durable registry over an opened store, rehydrating every
    /// recovered session as dormant (revalidated lazily on first use).
    /// If recovery brought back more sessions than `max_sessions`
    /// allows, the lowest ids (the oldest sessions) are evicted up
    /// front.
    pub fn with_store(
        store: Arc<Store>,
        recovered: Recovered,
        options: &ValidationOptions,
        max_sessions: Option<usize>,
    ) -> io::Result<Self> {
        let mut map = HashMap::with_capacity(recovered.sessions.len());
        let mut clock = 0u64;
        let recovered_total = recovered.sessions.len() as u64;
        let mut over_cap = Vec::new();
        let keep_from = max_sessions
            .map(|cap| recovered.sessions.len().saturating_sub(cap))
            .unwrap_or(0);
        for (ix, s) in recovered.sessions.into_iter().enumerate() {
            if ix < keep_from {
                over_cap.push(s.id);
                continue;
            }
            let slot = Arc::new(SessionSlot {
                session: Mutex::new(Session {
                    state: SessionState::Dormant { graph: s.graph },
                    schema_sdl: s.schema_sdl,
                    options: *options,
                    deltas_applied: s.deltas_applied,
                    last_seq: s.last_seq,
                    pending_migration: s.pending_migration,
                }),
                last_used: AtomicU64::new(clock),
            });
            clock += 1;
            map.insert(s.id, slot);
        }
        let registry = SessionRegistry {
            sessions: RwLock::new(map),
            evicted: Mutex::new(HashSet::new()),
            next_id: AtomicU64::new(recovered.next_session_id),
            clock: AtomicU64::new(clock),
            store: Some(store),
            options: *options,
            max_sessions,
            evicted_total: AtomicU64::new(0),
            recovered_total,
        };
        for id in over_cap {
            registry.mark_evicted(id)?;
        }
        Ok(registry)
    }

    /// The attached store, if the registry is durable.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Sessions rebuilt from disk at startup.
    pub fn recovered_total(&self) -> u64 {
        self.recovered_total
    }

    /// Sessions evicted by the LRU bound so far.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total.load(Ordering::Relaxed)
    }

    /// Creates a session by seeding an incremental engine with a full
    /// validation pass; logs it durably before returning when a store
    /// is attached. Evicts the least-recently-used session first if the
    /// registry is at its bound.
    pub fn create(
        &self,
        graph: PropertyGraph,
        schema: Arc<PgSchema>,
        schema_sdl: &str,
        options: &ValidationOptions,
    ) -> io::Result<CreateOutcome> {
        // `options` is the registry-wide base; the SDL's language pragma
        // (if any) adjusts the rule families for this session's engine.
        // The base is what the session remembers, so rehydration applies
        // the pragma of whatever schema is current *then*.
        let engine_options = pg_pgschema::apply_pragma(options, schema_sdl);
        let engine = IncrementalEngine::new(graph, schema, &engine_options);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(SessionSlot {
            session: Mutex::new(Session {
                state: SessionState::Ready(Box::new(engine)),
                schema_sdl: schema_sdl.to_owned(),
                options: *options,
                deltas_applied: 0,
                last_seq: 0,
                pending_migration: None,
            }),
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
        });
        // Hold the new session's lock across publication and the WAL
        // append: a delta racing in through the map sees the session but
        // blocks until the Create record is on disk, keeping per-session
        // WAL order equal to apply order.
        let mut session = slot.session.lock().unwrap();
        let evicted = self.evict_if_full()?;
        self.sessions.write().unwrap().insert(id, Arc::clone(&slot));
        let mut wal_micros = None;
        if let Some(store) = &self.store {
            let started = Instant::now();
            let graph = session.graph().expect("fresh session has a live engine");
            match store.append_create(id, schema_sdl, graph) {
                Ok(seq) => {
                    session.last_seq = seq;
                    wal_micros = Some(started.elapsed().as_micros() as u64);
                }
                Err(e) => {
                    self.sessions.write().unwrap().remove(&id);
                    return Err(e);
                }
            }
        }
        drop(session);
        Ok(CreateOutcome {
            id,
            slot,
            evicted,
            wal_micros,
        })
    }

    /// Logs a delta against a session the caller has locked (the lock
    /// proves apply order). Call after `engine.apply`, whether or not it
    /// succeeded — a failed apply still leaves its deterministic partial
    /// effects, which replay reproduces.
    pub fn log_delta(
        &self,
        id: u64,
        session: &mut Session,
        delta: &GraphDelta,
    ) -> io::Result<Option<u64>> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let started = Instant::now();
        let seq = store.append_delta(id, delta)?;
        session.last_seq = seq;
        Ok(Some(started.elapsed().as_micros() as u64))
    }

    /// Durably logs a migration phase transition for this session, as
    /// [`log_delta`](Self::log_delta) does for deltas. `schema_sdl` is
    /// the candidate SDL on [`MigrationPhase::Begin`] and empty
    /// otherwise.
    pub fn log_schema_change(
        &self,
        id: u64,
        session: &mut Session,
        phase: pg_store::MigrationPhase,
        schema_sdl: &str,
    ) -> io::Result<Option<u64>> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let started = Instant::now();
        let seq = store.append_schema_change(id, phase, schema_sdl)?;
        session.last_seq = seq;
        Ok(Some(started.elapsed().as_micros() as u64))
    }

    /// The session with this id. The returned slot is cloned out of the
    /// map, so the registry lock is released before the caller locks the
    /// session; the lookup also stamps the slot for LRU.
    pub fn get(&self, id: u64) -> Lookup {
        if let Some(slot) = self.sessions.read().unwrap().get(&id) {
            slot.last_used.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            return Lookup::Found(Arc::clone(slot));
        }
        if self.evicted.lock().unwrap().contains(&id) {
            Lookup::Evicted
        } else {
            Lookup::Missing
        }
    }

    /// Deletes the session with this id, durably when a store is
    /// attached.
    pub fn remove(&self, id: u64) -> io::Result<RemoveOutcome> {
        let removed = self.sessions.write().unwrap().remove(&id);
        match removed {
            Some(_) => {
                let mut wal_micros = None;
                if let Some(store) = &self.store {
                    let started = Instant::now();
                    store.append_delete(id)?;
                    wal_micros = Some(started.elapsed().as_micros() as u64);
                }
                Ok(RemoveOutcome::Removed(wal_micros))
            }
            None if self.evicted.lock().unwrap().contains(&id) => Ok(RemoveOutcome::Evicted),
            None => Ok(RemoveOutcome::Missing),
        }
    }

    /// Number of live sessions (the `/metrics` gauge).
    pub fn len(&self) -> usize {
        self.sessions.read().unwrap().len()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sessions with an open migration window (the
    /// `pgschemad_migration_windows_open` gauge). Takes each session's
    /// lock briefly; called only from `/metrics` rendering.
    pub fn open_migrations(&self) -> usize {
        let slots: Vec<_> = self.sessions.read().unwrap().values().cloned().collect();
        slots
            .iter()
            .filter(|slot| slot.session.lock().unwrap().pending_migration.is_some())
            .count()
    }

    /// Runs one compaction cycle: rotate the WAL, capture every live
    /// session under its own lock, write the snapshot, drop superseded
    /// segments. Returns `Ok(None)` when another compaction is in
    /// flight or no store is attached.
    pub fn compact(&self) -> io::Result<Option<pg_store::CompactionOutcome>> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let Some(mut compaction) = store.try_begin_compaction()? else {
            return Ok(None);
        };
        let slots: Vec<(u64, Arc<SessionSlot>)> = self
            .sessions
            .read()
            .unwrap()
            .iter()
            .map(|(id, slot)| (*id, Arc::clone(slot)))
            .collect();
        for (id, slot) in slots {
            let session = slot.session.lock().unwrap();
            compaction.add_session(
                id,
                session.last_seq,
                session.deltas_applied,
                &session.schema_sdl,
                session.payload(),
                session.pending_migration.as_deref(),
            );
        }
        let outcome = compaction.finish(self.next_id.load(Ordering::Relaxed))?;
        Ok(Some(outcome))
    }

    /// Applies one WAL record received from the replication leader to
    /// the live session map. The record's frame is already in the local
    /// WAL ([`Store::append_replicated`] put it there), so this touches
    /// memory only — no appends, no eviction (the leader logs `Delete`
    /// records for its own evictions, and this follower replays those).
    ///
    /// Application is seq-gated exactly like recovery replay: a record
    /// whose `seq` does not exceed the session's `last_seq` is a
    /// duplicate (snapshot-bootstrapped state, or redelivery after a
    /// reconnect) and is skipped.
    pub fn apply_replicated(&self, seq: u64, record: StoreRecord) {
        match record {
            StoreRecord::Create {
                session,
                schema_sdl,
                graph,
            } => {
                self.next_id.fetch_max(session + 1, Ordering::Relaxed);
                if let Lookup::Found(slot) = self.get(session) {
                    if slot.session.lock().unwrap().last_seq >= seq {
                        return;
                    }
                }
                let slot = Arc::new(SessionSlot {
                    session: Mutex::new(Session {
                        state: SessionState::Dormant {
                            graph: graph.into(),
                        },
                        schema_sdl,
                        options: self.options,
                        deltas_applied: 0,
                        last_seq: seq,
                        pending_migration: None,
                    }),
                    last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
                });
                self.sessions.write().unwrap().insert(session, slot);
            }
            StoreRecord::Delta { session, delta } => {
                let Lookup::Found(slot) = self.get(session) else {
                    return;
                };
                let mut s = slot.session.lock().unwrap();
                if seq <= s.last_seq {
                    return;
                }
                // Mirror recovery's rule 4: a delta that fails part-way
                // keeps its deterministic partial effects, and only a
                // full application counts towards `deltas_applied`.
                let applied = match &mut s.state {
                    SessionState::Ready(engine) => engine.apply(&delta).is_ok(),
                    SessionState::Dormant { graph } => match graph.load() {
                        Ok(g) => delta.apply_to(g).is_ok(),
                        Err(_) => false,
                    },
                    SessionState::Poisoned => false,
                };
                if applied {
                    s.deltas_applied += 1;
                }
                s.last_seq = seq;
            }
            StoreRecord::Delete { session } => {
                let Lookup::Found(slot) = self.get(session) else {
                    return;
                };
                if slot.session.lock().unwrap().last_seq >= seq {
                    return;
                }
                self.sessions.write().unwrap().remove(&session);
            }
            StoreRecord::SchemaChange {
                session,
                phase,
                schema_sdl,
            } => {
                let Lookup::Found(slot) = self.get(session) else {
                    return;
                };
                let mut s = slot.session.lock().unwrap();
                if seq <= s.last_seq {
                    return;
                }
                match phase {
                    pg_store::MigrationPhase::Begin => s.pending_migration = Some(schema_sdl),
                    pg_store::MigrationPhase::Commit => {
                        if let Some(sdl) = s.pending_migration.take() {
                            s.schema_sdl = sdl;
                            // Demote to dormant so the next read re-seeds
                            // the engine under the committed schema — the
                            // follower then serves the new schema's report.
                            let state = std::mem::replace(&mut s.state, SessionState::Poisoned);
                            s.state = match state {
                                SessionState::Ready(engine) => SessionState::Dormant {
                                    graph: engine.into_graph().into(),
                                },
                                other => other,
                            };
                        }
                    }
                    pg_store::MigrationPhase::Abort => s.pending_migration = None,
                }
                s.last_seq = seq;
            }
        }
    }

    /// Captures every live session into a snapshot blob for a
    /// bootstrapping follower (`GET /wal/snapshot`). Unlike
    /// [`SessionRegistry::compact`] this neither rotates the WAL nor
    /// deletes anything — the blob's `base_seq` is sampled *before* the
    /// capture, so a session that absorbs records mid-capture is still
    /// consistent: the receiver tails from `base_seq + 1` and its
    /// per-session seq gating skips what the snapshot already contains.
    /// `None` without a store.
    pub fn handoff_snapshot(&self) -> Option<Vec<u8>> {
        let store = self.store.as_ref()?;
        let mut handoff = store.begin_handoff();
        let slots: Vec<(u64, Arc<SessionSlot>)> = self
            .sessions
            .read()
            .unwrap()
            .iter()
            .map(|(id, slot)| (*id, Arc::clone(slot)))
            .collect();
        for (id, slot) in slots {
            let session = slot.session.lock().unwrap();
            handoff.add_session(
                id,
                session.last_seq,
                session.deltas_applied,
                &session.schema_sdl,
                session.payload(),
                session.pending_migration.as_deref(),
            );
        }
        Some(handoff.finish(self.next_id.load(Ordering::Relaxed)))
    }

    /// Syncs buffered WAL appends (graceful-shutdown path).
    pub fn sync_store(&self) -> io::Result<()> {
        match &self.store {
            Some(store) => store.sync(),
            None => Ok(()),
        }
    }

    /// Evicts the least-recently-used session if the registry is at its
    /// bound; returns the victim's id.
    fn evict_if_full(&self) -> io::Result<Option<u64>> {
        let Some(cap) = self.max_sessions else {
            return Ok(None);
        };
        let victim = {
            let sessions = self.sessions.read().unwrap();
            if sessions.len() < cap.max(1) {
                return Ok(None);
            }
            sessions
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(id, _)| *id)
        };
        match victim {
            Some(id) => {
                self.mark_evicted(id)?;
                Ok(Some(id))
            }
            None => Ok(None),
        }
    }

    fn mark_evicted(&self, id: u64) -> io::Result<()> {
        self.sessions.write().unwrap().remove(&id);
        self.evicted.lock().unwrap().insert(id);
        self.evicted_total.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            store.append_delete(id)?;
        }
        Ok(())
    }
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

/// The reactor core that owns session `id`'s connections.
///
/// Session ids are sequential, so the raw modulo would stripe neighbours
/// across cores but correlate with any id-based client sharding; a
/// Fibonacci-hash mix scatters them while staying deterministic, which is
/// what lets every core compute the same answer with no coordination.
/// The registry (and behind it the WAL) stays shared — this is cache and
/// lock *affinity*, not data partitioning: all traffic for one session
/// lands on one core, so its engine state stays hot in that core's cache
/// and its session mutex is rarely contended.
pub fn home_core(id: u64, cores: usize) -> usize {
    if cores <= 1 {
        return 0;
    }
    let mixed = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((mixed >> 32) as usize) % cores
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::{GraphBuilder, GraphDelta, Value};

    const SDL: &str = "type User { login: String! @required }";

    fn session_parts() -> (PropertyGraph, Arc<PgSchema>) {
        let schema = PgSchema::parse(SDL).unwrap();
        let graph = GraphBuilder::new()
            .node("u", "User")
            .prop("u", "login", "alice")
            .build()
            .unwrap();
        (graph, Arc::new(schema))
    }

    fn create(reg: &SessionRegistry) -> u64 {
        let (graph, schema) = session_parts();
        reg.create(graph, schema, SDL, &ValidationOptions::default())
            .unwrap()
            .id
    }

    #[test]
    fn create_get_remove() {
        let reg = SessionRegistry::new();
        let id = create(&reg);
        assert_eq!(reg.len(), 1);
        let Lookup::Found(slot) = reg.get(id) else {
            panic!("session exists");
        };
        assert!(slot
            .session
            .lock()
            .unwrap()
            .engine()
            .unwrap()
            .report()
            .conforms());
        assert!(matches!(reg.get(id + 1), Lookup::Missing));
        assert!(matches!(
            reg.remove(id).unwrap(),
            RemoveOutcome::Removed(None)
        ));
        assert!(matches!(reg.remove(id).unwrap(), RemoveOutcome::Missing));
        assert!(reg.is_empty());
    }

    #[test]
    fn sessions_absorb_deltas_through_the_arc_schema() {
        let reg = SessionRegistry::new();
        let (graph, schema) = session_parts();
        let u = graph.node_ids().next().unwrap();
        let id = reg
            .create(graph, schema, SDL, &ValidationOptions::default())
            .unwrap()
            .id;
        let Lookup::Found(slot) = reg.get(id) else {
            panic!("session exists");
        };
        let mut s = slot.session.lock().unwrap();
        let outcome = s
            .engine()
            .unwrap()
            .apply(&GraphDelta::new().set_node_property(u, "login", Value::Int(3)))
            .unwrap();
        assert_eq!(outcome.violations_added, 1);
        assert!(!s.engine().unwrap().report().conforms());
    }

    #[test]
    fn lru_eviction_answers_evicted() {
        let reg = SessionRegistry::in_memory(Some(2));
        let a = create(&reg);
        let b = create(&reg);
        // Touch `a` so `b` is the least recently used.
        assert!(matches!(reg.get(a), Lookup::Found(_)));
        let c = create(&reg);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.evicted_total(), 1);
        assert!(matches!(reg.get(b), Lookup::Evicted));
        assert!(matches!(reg.get(a), Lookup::Found(_)));
        assert!(matches!(reg.get(c), Lookup::Found(_)));
        // Deleting an evicted id reports Evicted, not Missing.
        assert!(matches!(reg.remove(b).unwrap(), RemoveOutcome::Evicted));
    }

    #[test]
    fn cap_of_one_always_keeps_the_newest() {
        let reg = SessionRegistry::in_memory(Some(1));
        let a = create(&reg);
        let b = create(&reg);
        assert!(matches!(reg.get(a), Lookup::Evicted));
        assert!(matches!(reg.get(b), Lookup::Found(_)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn replicated_records_are_seq_gated_and_keep_sessions_dormant() {
        let reg = SessionRegistry::new();
        let (graph, _) = session_parts();
        let u = graph.node_ids().next().unwrap();
        reg.apply_replicated(
            1,
            StoreRecord::Create {
                session: 7,
                schema_sdl: SDL.to_owned(),
                graph,
            },
        );
        assert!(matches!(reg.get(7), Lookup::Found(_)));
        // A redelivered create must not reset the session.
        let delta = GraphDelta::new().set_node_property(u, "login", Value::Int(3));
        reg.apply_replicated(
            2,
            StoreRecord::Delta {
                session: 7,
                delta: delta.clone(),
            },
        );
        reg.apply_replicated(2, StoreRecord::Delta { session: 7, delta });
        reg.apply_replicated(
            1,
            StoreRecord::Create {
                session: 7,
                schema_sdl: SDL.to_owned(),
                graph: PropertyGraph::new(),
            },
        );
        let Lookup::Found(slot) = reg.get(7) else {
            panic!("session exists");
        };
        {
            let s = slot.session.lock().unwrap();
            assert_eq!(s.deltas_applied, 1, "duplicate delta must be skipped");
            assert_eq!(s.last_seq, 2);
            assert!(!s.is_hydrated(), "replication must not seed engines");
        }
        // A delete older than the session's state is a duplicate too.
        reg.apply_replicated(2, StoreRecord::Delete { session: 7 });
        assert!(matches!(reg.get(7), Lookup::Found(_)));
        reg.apply_replicated(3, StoreRecord::Delete { session: 7 });
        assert!(matches!(reg.get(7), Lookup::Missing));
        // Replicated ids advance the allocator past the leader's.
        assert_eq!(create(&reg), 8);
    }

    #[test]
    fn home_core_is_deterministic_and_spreads_sequential_ids() {
        assert_eq!(home_core(42, 1), 0);
        for cores in [2usize, 3, 4, 7] {
            let mut per_core = vec![0usize; cores];
            for id in 1..=1000u64 {
                let home = home_core(id, cores);
                assert!(home < cores);
                assert_eq!(home, home_core(id, cores)); // stable
                per_core[home] += 1;
            }
            // Sequential ids should not pile onto one core: every core
            // gets a reasonable share of 1000 sessions.
            for &n in &per_core {
                assert!(n > 1000 / cores / 2, "skewed spread: {per_core:?}");
            }
        }
    }
}
