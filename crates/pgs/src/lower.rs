//! Lowering: PG-Schema AST → SDL document → [`PgSchema`].
//!
//! The compiler translates the PG-Schema subset into the paper's SDL
//! dialect and hands the result to the *existing* schema core
//! (`pg_schema::PgSchema`), so every engine, metric and durability path
//! works for PG-Schema inputs with zero kernel changes. The lowering
//! table (DESIGN §PG-Schema frontend):
//!
//! | PG-Schema                        | SDL                              |
//! |----------------------------------|----------------------------------|
//! | `name T`                         | `name: T! @required`             |
//! | `OPTIONAL name T`                | `name: T!`                       |
//! | `name T ARRAY`                   | `name: [T!]! @required`          |
//! | `OPTIONAL name T ARRAY`          | `name: [T!]!`                    |
//! | `ABSTRACT (L {…})`               | `interface L {…}`                |
//! | `(: P & L {…})`                  | `type L implements P {…}`        |
//! | edge, `OUTGOING 0..1`            | `label: Tgt`                     |
//! | edge, `OUTGOING 1..1`            | `label: Tgt! @required`          |
//! | edge, `OUTGOING 0..*` (default)  | `label: [Tgt]`                   |
//! | edge, `OUTGOING 1..*`            | `label: [Tgt] @required`         |
//! | `INCOMING 0..1`                  | `@uniqueForTarget`               |
//! | `INCOMING 1..*`                  | `@requiredForTarget`             |
//! | `INCOMING 1..1`                  | both of the above                |
//! | `DISTINCT` / `NO LOOPS`          | `@distinct` / `@noLoops`         |
//! | edge prop `p T` / `OPTIONAL p T` | argument `p: T!` / `p: T`        |
//! | `FOR (x : L) KEY x.a, x.b`       | `@key(fields: ["a", "b"])` on L  |
//!
//! Constructs outside the subset (per-type `OPEN`, other cardinality
//! bounds, inheritance between abstract types) fail with explicit
//! [`ParseErrorKind::UnsupportedConstruct`] errors carrying spans.

use std::collections::HashMap;

use gql_schema::directives as dir;
use gql_sdl::ast::{
    ConstValue, Definition, DirectiveUse, Document, FieldDef, InputValueDef, InterfaceTypeDef,
    ObjectTypeDef, ScalarTypeDef, Type, TypeDef,
};
use pg_schema::PgSchema;

use crate::ast::{Cardinality, EdgeType, GraphType, NodeType, PropDef, TypeMode};
use crate::error::{ParseError, ParseErrorKind};
use crate::token::{Pos, Span};

/// The five SDL builtin scalars and their PG-Schema keyword spellings.
/// Any other property type name is carried verbatim as a custom scalar.
pub const SCALAR_MAP: &[(&str, &str)] = &[
    ("STRING", "String"),
    ("INT", "Int"),
    ("FLOAT", "Float"),
    ("BOOL", "Boolean"),
    ("BOOLEAN", "Boolean"),
    ("ID", "ID"),
];

/// A compiled PG-Schema document: the lowered SDL document, its
/// canonical text (pragma line first — see [`crate::pragma_line`]), and
/// the schema the validation engines consume.
#[derive(Debug)]
pub struct Compiled {
    /// The schema, identical in behaviour to one built from SDL.
    pub schema: PgSchema,
    /// The lowered SDL document.
    pub document: Document,
    /// Canonical lowered SDL text, first line the language pragma. This
    /// is the form sessions persist (WAL, snapshots, replication), so a
    /// PG-Schema session rehydrates with the same semantics anywhere.
    pub sdl: String,
    /// The graph type's mode; `Loose` disables the strong rule family.
    pub mode: TypeMode,
    /// The graph type's name (SDL has no equivalent; kept for tooling).
    pub name: String,
}

/// Compiles PG-Schema source text.
pub fn compile(source: &str) -> Result<Compiled, ParseError> {
    lower(&crate::parser::parse(source)?)
}

/// Lowers a parsed graph type.
pub fn lower(gt: &GraphType) -> Result<Compiled, ParseError> {
    Lowerer::new(gt)?.run()
}

fn err(kind: ParseErrorKind, span: Span) -> ParseError {
    ParseError::new(kind, span.start)
}

fn unsupported(what: impl Into<String>, span: Span) -> ParseError {
    err(ParseErrorKind::UnsupportedConstruct(what.into()), span)
}

fn invalid(what: impl Into<String>, span: Span) -> ParseError {
    err(ParseErrorKind::Invalid(what.into()), span)
}

fn span0() -> gql_sdl::Span {
    gql_sdl::Span::at(Pos::start())
}

fn mark(name: &str) -> DirectiveUse {
    DirectiveUse {
        name: name.to_owned(),
        args: Vec::new(),
        span: span0(),
    }
}

/// One resolved node: its label, supertypes, and declaration.
struct Resolved<'a> {
    node: &'a NodeType,
    label: String,
    parents: Vec<String>,
}

struct Lowerer<'a> {
    gt: &'a GraphType,
    nodes: Vec<Resolved<'a>>,
    /// label → (index into `nodes`, is_abstract)
    by_label: HashMap<String, (usize, bool)>,
    /// Custom scalar names in first-use order.
    scalars: Vec<String>,
    /// label → its edges, in declaration order.
    edges: HashMap<String, Vec<&'a EdgeType>>,
}

impl<'a> Lowerer<'a> {
    /// Resolves label conjunctions. Conjuncts naming a previously
    /// declared node type are supertype references (the referent must be
    /// `ABSTRACT`); exactly one conjunct must be fresh — it becomes the
    /// label, which doubles as the SDL type name.
    fn new(gt: &'a GraphType) -> Result<Self, ParseError> {
        let mut nodes = Vec::new();
        let mut by_label: HashMap<String, (usize, bool)> = HashMap::new();
        for node in &gt.nodes {
            if node.open {
                return Err(unsupported(
                    "a per-type OPEN marker (make the whole graph type LOOSE instead)",
                    node.span,
                ));
            }
            let mut parents = Vec::new();
            let mut fresh = Vec::new();
            for l in &node.labels {
                match by_label.get(l) {
                    Some((_, true)) => parents.push(l.clone()),
                    Some((_, false)) => {
                        return Err(invalid(
                            format!(
                                "label `{l}` names a non-abstract node type; only \
                                 ABSTRACT types can appear as extra conjuncts"
                            ),
                            node.span,
                        ))
                    }
                    None => fresh.push(l.clone()),
                }
            }
            let label = match fresh.len() {
                1 => fresh.remove(0),
                0 => {
                    return Err(invalid(
                        format!(
                            "node type `{}` declares no new label — every conjunct \
                             names an existing type",
                            node.labels.join(" & ")
                        ),
                        node.span,
                    ))
                }
                _ => {
                    return Err(invalid(
                        format!(
                            "label conjunction `{}` declares {} new labels; exactly \
                             one conjunct may be new, the rest must name previously \
                             declared ABSTRACT types",
                            node.labels.join(" & "),
                            fresh.len()
                        ),
                        node.span,
                    ))
                }
            };
            if node.is_abstract && !parents.is_empty() {
                return Err(unsupported(
                    "an ABSTRACT node type inheriting other types (SDL interfaces \
                     cannot implement interfaces)",
                    node.span,
                ));
            }
            by_label.insert(label.clone(), (nodes.len(), node.is_abstract));
            nodes.push(Resolved {
                node,
                label,
                parents,
            });
        }
        Ok(Lowerer {
            gt,
            nodes,
            by_label,
            scalars: Vec::new(),
            edges: HashMap::new(),
        })
    }

    fn run(mut self) -> Result<Compiled, ParseError> {
        self.index_edges()?;
        let mut definitions = Vec::new();
        for i in 0..self.nodes.len() {
            definitions.push(self.lower_node(i)?);
        }
        self.attach_keys(&mut definitions)?;
        for s in &self.scalars {
            definitions.push(Definition::Type(TypeDef::Scalar(ScalarTypeDef {
                description: None,
                name: s.clone(),
                directives: Vec::new(),
                span: span0(),
            })));
        }
        let document = Document { definitions };
        let sdl = format!(
            "{}\n{}",
            crate::pragma_line(self.gt.mode),
            gql_sdl::print_document(&document)
        );
        let schema = PgSchema::parse(&sdl).map_err(|e| {
            invalid(
                format!("lowered schema rejected by the SDL core: {e}"),
                self.gt.span,
            )
        })?;
        Ok(Compiled {
            schema,
            document,
            sdl,
            mode: self.gt.mode,
            name: self.gt.name.clone(),
        })
    }

    fn index_edges(&mut self) -> Result<(), ParseError> {
        for edge in &self.gt.edges {
            for endpoint in [&edge.source, &edge.target] {
                if !self.by_label.contains_key(endpoint) {
                    return Err(invalid(
                        format!("edge endpoint `{endpoint}` is not a declared node type"),
                        edge.span,
                    ));
                }
            }
            let sibs = self.edges.entry(edge.source.clone()).or_default();
            if sibs.iter().any(|e| e.label == edge.label) {
                return Err(invalid(
                    format!(
                        "duplicate edge label `{}` on source `{}`",
                        edge.label, edge.source
                    ),
                    edge.span,
                ));
            }
            sibs.push(edge);
        }
        Ok(())
    }

    fn scalar(&mut self, prop: &PropDef) -> String {
        for (kw, sdl) in SCALAR_MAP {
            if prop.ty == *kw {
                return (*sdl).to_owned();
            }
        }
        if !self.scalars.contains(&prop.ty) {
            self.scalars.push(prop.ty.clone());
        }
        prop.ty.clone()
    }

    /// `name T` → `name: T! @required`; `OPTIONAL name T` → `name: T!`;
    /// `ARRAY` wraps as `[T!]!`. The non-null inner/outer wrapping means
    /// a present property value must conform to the scalar (no nulls),
    /// while presence itself is governed by `@required` — exactly the
    /// paper's reading of mandatory vs optional properties.
    fn node_prop(&mut self, prop: &PropDef) -> FieldDef {
        let base = Type::NonNull(Box::new(Type::Named(self.scalar(prop))));
        let ty = if prop.array {
            Type::NonNull(Box::new(Type::List(Box::new(base))))
        } else {
            base
        };
        FieldDef {
            description: None,
            name: prop.name.clone(),
            args: Vec::new(),
            ty,
            directives: if prop.optional {
                Vec::new()
            } else {
                vec![mark(dir::REQUIRED)]
            },
            span: span0(),
        }
    }

    /// Edge properties become field arguments; §3.5 marks a property
    /// mandatory iff the argument's outer type is non-null.
    fn edge_prop(&mut self, prop: &PropDef) -> InputValueDef {
        let inner = Type::NonNull(Box::new(Type::Named(self.scalar(prop))));
        let ty = match (prop.array, prop.optional) {
            (false, false) => inner,
            (false, true) => Type::Named(self.scalar(prop)),
            (true, false) => Type::NonNull(Box::new(Type::List(Box::new(inner)))),
            (true, true) => Type::List(Box::new(inner)),
        };
        InputValueDef {
            description: None,
            name: prop.name.clone(),
            ty,
            default: None,
            directives: Vec::new(),
            span: span0(),
        }
    }

    fn edge_field(&mut self, edge: &EdgeType) -> Result<FieldDef, ParseError> {
        let target = Type::Named(edge.target.clone());
        let out = edge.outgoing.unwrap_or(Cardinality {
            min: 0,
            max: None,
            span: edge.span,
        });
        let (ty, required) = match (out.min, out.max) {
            (0, Some(1)) => (target, false),
            (1, Some(1)) => (Type::NonNull(Box::new(target)), true),
            (0, None) => (Type::List(Box::new(target)), false),
            (1, None) => (Type::List(Box::new(target)), true),
            (min, max) => {
                return Err(unsupported(
                    format!(
                        "OUTGOING cardinality {min}..{} (supported: 0..1, 1..1, 0..*, 1..*)",
                        max.map_or("*".to_owned(), |m| m.to_string())
                    ),
                    out.span,
                ))
            }
        };
        let mut directives = Vec::new();
        if required {
            directives.push(mark(dir::REQUIRED));
        }
        if edge.distinct {
            directives.push(mark(dir::DISTINCT));
        }
        if edge.no_loops {
            directives.push(mark(dir::NO_LOOPS));
        }
        if let Some(inc) = edge.incoming {
            match (inc.min, inc.max) {
                (0, None) => {}
                (0, Some(1)) => directives.push(mark(dir::UNIQUE_FOR_TARGET)),
                (1, None) => directives.push(mark(dir::REQUIRED_FOR_TARGET)),
                (1, Some(1)) => {
                    directives.push(mark(dir::UNIQUE_FOR_TARGET));
                    directives.push(mark(dir::REQUIRED_FOR_TARGET));
                }
                (min, max) => {
                    return Err(unsupported(
                        format!(
                            "INCOMING cardinality {min}..{} (supported: 0..1, 1..1, 0..*, 1..*)",
                            max.map_or("*".to_owned(), |m| m.to_string())
                        ),
                        inc.span,
                    ))
                }
            }
        }
        let args = edge.props.iter().map(|p| self.edge_prop(p)).collect();
        Ok(FieldDef {
            description: None,
            name: edge.label.clone(),
            args,
            ty,
            directives,
            span: span0(),
        })
    }

    /// The fields a type contributes: its props, then its edges.
    fn own_fields(&mut self, i: usize) -> Result<Vec<FieldDef>, ParseError> {
        let props = self.nodes[i].node.props.clone();
        let label = self.nodes[i].label.clone();
        let mut fields: Vec<FieldDef> = props.iter().map(|p| self.node_prop(p)).collect();
        let edges: Vec<EdgeType> = self
            .edges
            .get(&label)
            .map(|es| es.iter().map(|e| (*e).clone()).collect())
            .unwrap_or_default();
        for edge in &edges {
            fields.push(self.edge_field(edge)?);
        }
        Ok(fields)
    }

    fn lower_node(&mut self, i: usize) -> Result<Definition, ParseError> {
        let label = self.nodes[i].label.clone();
        let parents = self.nodes[i].parents.clone();
        let is_abstract = self.nodes[i].node.is_abstract;
        let own = self.own_fields(i)?;
        if is_abstract {
            return Ok(Definition::Type(TypeDef::Interface(InterfaceTypeDef {
                description: None,
                name: label,
                directives: Vec::new(),
                fields: own,
                span: span0(),
            })));
        }
        // SDL requires implementors to redeclare every interface field:
        // inherited copies come first (in parent order), with same-named
        // own fields — overrides, e.g. a subtype tightening an edge
        // cardinality — substituted in place.
        let mut fields: Vec<FieldDef> = Vec::new();
        for p in &parents {
            let pi = self.by_label[p].0;
            for f in self.own_fields(pi)? {
                match own.iter().find(|o| o.name == f.name) {
                    Some(over) => fields.push(over.clone()),
                    None => fields.push(f),
                }
            }
        }
        for f in own {
            if !fields.iter().any(|g| g.name == f.name) {
                fields.push(f);
            }
        }
        Ok(Definition::Type(TypeDef::Object(ObjectTypeDef {
            description: None,
            name: label,
            implements: parents,
            directives: Vec::new(),
            fields,
            span: span0(),
        })))
    }

    fn attach_keys(&self, definitions: &mut [Definition]) -> Result<(), ParseError> {
        for key in &self.gt.keys {
            let Some((i, _)) = self.by_label.get(&key.label) else {
                return Err(invalid(
                    format!("KEY constraint names undeclared node type `{}`", key.label),
                    key.span,
                ));
            };
            let fields = ConstValue::List(
                key.fields
                    .iter()
                    .map(|f| ConstValue::String(f.clone()))
                    .collect(),
            );
            let use_ = DirectiveUse {
                name: dir::KEY.to_owned(),
                args: vec![("fields".to_owned(), fields)],
                span: span0(),
            };
            match &mut definitions[*i] {
                Definition::Type(TypeDef::Object(o)) => o.directives.push(use_),
                Definition::Type(TypeDef::Interface(d)) => d.directives.push(use_),
                _ => unreachable!("node indices point at object/interface defs"),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sdl_of(src: &str) -> String {
        let c = compile(src).unwrap();
        c.sdl
    }

    #[test]
    fn the_four_property_shapes() {
        let sdl = sdl_of(
            "CREATE GRAPH TYPE G {\n\
               (Person {\n\
                 name STRING,\n\
                 OPTIONAL nick STRING,\n\
                 tags STRING ARRAY,\n\
                 OPTIONAL alts STRING ARRAY\n\
               })\n\
             }",
        );
        assert!(sdl.contains("name: String! @required"), "{sdl}");
        assert!(sdl.contains("nick: String!\n"), "{sdl}");
        assert!(sdl.contains("tags: [String!]! @required"), "{sdl}");
        assert!(sdl.contains("alts: [String!]!\n"), "{sdl}");
    }

    #[test]
    fn edge_cardinalities_and_clauses() {
        let sdl = sdl_of(
            "CREATE GRAPH TYPE G {\n\
               (A), (B),\n\
               (:A)-[:one]->(:B) OUTGOING 0..1,\n\
               (:A)-[:must]->(:B) OUTGOING 1..1,\n\
               (:A)-[:many]->(:B),\n\
               (:A)-[:some]->(:B) OUTGOING 1..* DISTINCT NO LOOPS INCOMING 1..1\n\
             }",
        );
        assert!(sdl.contains("one: B\n"), "{sdl}");
        assert!(sdl.contains("must: B! @required"), "{sdl}");
        assert!(sdl.contains("many: [B]\n"), "{sdl}");
        assert!(
            sdl.contains(
                "some: [B] @required @distinct @noLoops @uniqueForTarget @requiredForTarget"
            ),
            "{sdl}"
        );
    }

    #[test]
    fn edge_props_become_arguments() {
        let sdl = sdl_of(
            "CREATE GRAPH TYPE G {\n\
               (A), (B),\n\
               (:A)-[:r { weight FLOAT, OPTIONAL note STRING }]->(:B)\n\
             }",
        );
        assert!(
            sdl.contains("r(weight: Float!, note: String): [B]"),
            "{sdl}"
        );
    }

    #[test]
    fn abstract_types_lower_to_interfaces_with_field_copies() {
        let c = compile(
            "CREATE GRAPH TYPE G {\n\
               ABSTRACT (Message { body STRING }),\n\
               (: Message & Post { title STRING }),\n\
               (U)\n\
             }",
        )
        .unwrap();
        assert!(c.sdl.contains("interface Message {"), "{}", c.sdl);
        assert!(
            c.sdl.contains("type Post implements Message {"),
            "{}",
            c.sdl
        );
        // The implementor redeclares the inherited field before its own.
        let post = c.sdl.split("type Post").nth(1).unwrap();
        let body_at = post.find("body: String!").unwrap();
        let title_at = post.find("title: String!").unwrap();
        assert!(body_at < title_at);
    }

    #[test]
    fn subtype_edge_overrides_the_inherited_one() {
        let sdl = sdl_of(
            "CREATE GRAPH TYPE G {\n\
               (T),\n\
               ABSTRACT (IT),\n\
               (: IT & O),\n\
               (:IT)-[:f]->(:T) INCOMING 0..1,\n\
               (:O)-[:f]->(:T) INCOMING 1..*\n\
             }",
        );
        let iface = sdl.split("interface IT").nth(1).unwrap();
        assert!(iface.contains("f: [T] @uniqueForTarget"), "{sdl}");
        let obj = sdl.split("type O implements IT").nth(1).unwrap();
        assert!(obj.contains("f: [T] @requiredForTarget"), "{sdl}");
    }

    #[test]
    fn keys_and_custom_scalars() {
        let sdl = sdl_of(
            "CREATE GRAPH TYPE G {\n\
               (S { id ID, at Time }),\n\
               FOR (x : S) KEY x.id\n\
             }",
        );
        assert!(sdl.contains("type S @key(fields: [\"id\"])"), "{sdl}");
        assert!(sdl.contains("at: Time! @required"), "{sdl}");
        assert!(sdl.contains("scalar Time"), "{sdl}");
    }

    #[test]
    fn the_pragma_is_the_first_line_and_survives_reparsing() {
        let c = compile("CREATE GRAPH TYPE G LOOSE { (A { x STRING }) }").unwrap();
        assert!(c.sdl.starts_with(crate::PRAGMA_PREFIX), "{}", c.sdl);
        assert_eq!(c.mode, TypeMode::Loose);
        // The pragma rides in the SDL as a comment, so the core parses
        // the persisted text unchanged…
        assert!(PgSchema::parse(&c.sdl).is_ok());
        // …and the frontend recovers the mode from it.
        assert_eq!(
            crate::pragma_of(&c.sdl),
            Some((crate::SchemaLanguage::PgSchema, TypeMode::Loose))
        );
    }

    #[test]
    fn open_marker_is_rejected_with_policy_message() {
        let e = compile("CREATE GRAPH TYPE G { (A OPEN { x STRING }) }").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnsupportedConstruct(_)));
        assert!(e.to_string().contains("LOOSE"), "{e}");
    }

    #[test]
    fn out_of_range_cardinality_is_rejected_with_span() {
        let e = compile("CREATE GRAPH TYPE G {\n  (A), (B),\n  (:A)-[:r]->(:B) OUTGOING 2..5\n}")
            .unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnsupportedConstruct(_)));
        assert_eq!(e.pos.line, 3);
    }

    #[test]
    fn unknown_endpoints_and_duplicate_labels_are_invalid() {
        let e = compile("CREATE GRAPH TYPE G { (A), (:A)-[:r]->(:Nope) }").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Invalid(_)));
        let e = compile("CREATE GRAPH TYPE G { (A), (B), (: A & B) }").unwrap_err();
        assert!(e.to_string().contains("non-abstract"), "{e}");
    }

    #[test]
    fn validation_goes_through_the_existing_core() {
        use pgraph::PropertyGraph;
        let c = compile(
            "CREATE GRAPH TYPE G {\n\
               (Person { name STRING })\n\
             }",
        )
        .unwrap();
        let mut g = PropertyGraph::new();
        g.add_node("Person"); // missing mandatory `name`
        let report = pg_schema::validate(&g, &c.schema, &pg_schema::ValidationOptions::default());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.to_string().contains("name")));
    }
}
