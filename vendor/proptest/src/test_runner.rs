//! Case runner, configuration, and the deterministic per-case RNG.

use std::fmt;

/// Test configuration, as in `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold; the payload explains why.
    Fail(String),
    /// The case was rejected by a precondition.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Outcome type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `cases` deterministic cases of one property, panicking (as the
/// test harness expects) on the first failure with the generated inputs.
pub fn run_cases<F>(name: &str, config: &Config, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    let mut rejected = 0u32;
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case);
        match case_fn(&mut rng) {
            Ok(()) => {}
            Err((TestCaseError::Reject(_), _)) => rejected += 1,
            Err((TestCaseError::Fail(msg), inputs)) => panic!(
                "proptest property `{name}` failed at case {case}/{}:\n{msg}\ninputs:\n{inputs}",
                config.cases
            ),
        }
    }
    if rejected == config.cases && config.cases > 0 {
        panic!("proptest property `{name}`: all {rejected} cases were rejected");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 4);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        run_cases("demo", &Config::with_cases(5), |rng| {
            let x = rng.below(100);
            if x < u64::MAX {
                Err((TestCaseError::fail("always fails"), format!("  x = {x}\n")))
            } else {
                Ok(())
            }
        });
    }
}
