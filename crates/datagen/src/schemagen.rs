//! Random schema generation.
//!
//! Emits SDL text (so the whole front-end is exercised) describing a
//! consistent schema with `num_types` object types, a band of scalar
//! attribute fields, and a band of relationship fields whose directive
//! flags are drawn with the configured probabilities.
//!
//! Fields that carry `@uniqueForTarget`/`@requiredForTarget` create
//! cross-node obligations that make random *graph* generation a
//! constraint-satisfaction problem; [`SchemaGenParams::benchmarkable`]
//! zeroes those probabilities, which guarantees [`crate::GraphGen`]
//! succeeds on the first attempt (used by the scaling benchmarks).

use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters for [`SchemaGen`].
#[derive(Debug, Clone, Copy)]
pub struct SchemaGenParams {
    /// Number of object types.
    pub num_types: usize,
    /// Scalar attribute fields per type.
    pub attrs_per_type: usize,
    /// Relationship fields per type.
    pub rels_per_type: usize,
    /// Probability an attribute/relationship is `@required`.
    pub p_required: f64,
    /// Probability a relationship field is list-typed.
    pub p_list: f64,
    /// Probability of `@distinct` on a list relationship.
    pub p_distinct: f64,
    /// Probability of `@noLoops` on a self-targeting relationship.
    pub p_noloops: f64,
    /// Probability of `@uniqueForTarget`.
    pub p_unique_for_target: f64,
    /// Probability of `@requiredForTarget`.
    pub p_required_for_target: f64,
    /// Probability a type gets a single-field `@key`.
    pub p_key: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SchemaGenParams {
    fn default() -> Self {
        SchemaGenParams {
            num_types: 8,
            attrs_per_type: 4,
            rels_per_type: 2,
            p_required: 0.4,
            p_list: 0.6,
            p_distinct: 0.3,
            p_noloops: 0.5,
            p_unique_for_target: 0.15,
            p_required_for_target: 0.1,
            p_key: 0.3,
            seed: 0,
        }
    }
}

impl SchemaGenParams {
    /// A parameterisation whose schemas admit straightforward conforming
    /// graph generation (no target-side obligations).
    pub fn benchmarkable(num_types: usize, seed: u64) -> Self {
        SchemaGenParams {
            num_types,
            p_unique_for_target: 0.0,
            p_required_for_target: 0.0,
            seed,
            ..Default::default()
        }
    }
}

/// The random schema generator.
pub struct SchemaGen {
    params: SchemaGenParams,
}

const SCALARS: [&str; 5] = ["Int", "Float", "String", "Boolean", "ID"];

impl SchemaGen {
    /// Creates a generator.
    pub fn new(params: SchemaGenParams) -> Self {
        SchemaGen { params }
    }

    /// Emits the SDL text of one random schema.
    pub fn generate(&self) -> String {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(p.seed);
        let mut out = String::new();
        for t in 0..p.num_types {
            let keyed = rng.gen_bool(p.p_key);
            if keyed {
                out.push_str(&format!("type T{t} @key(fields: [\"a{t}_0\"]) {{\n"));
            } else {
                out.push_str(&format!("type T{t} {{\n"));
            }
            for a in 0..p.attrs_per_type {
                let scalar = SCALARS[rng.gen_range(0..SCALARS.len())];
                // Key fields must exist and should be high-entropy: force
                // attribute 0 to be a required ID when keyed.
                let (scalar, required) = if a == 0 && keyed {
                    ("ID", true)
                } else {
                    (scalar, rng.gen_bool(p.p_required))
                };
                let listy = scalar != "Boolean" && rng.gen_bool(0.2);
                let ty = if listy {
                    format!("[{scalar}!]!")
                } else {
                    format!("{scalar}!")
                };
                out.push_str(&format!(
                    "    a{t}_{a}: {ty}{}\n",
                    if required { " @required" } else { "" }
                ));
            }
            for r in 0..p.rels_per_type {
                let target = rng.gen_range(0..p.num_types);
                let list = rng.gen_bool(p.p_list);
                let ty = if list {
                    format!("[T{target}]")
                } else {
                    format!("T{target}")
                };
                let mut directives = String::new();
                if rng.gen_bool(p.p_required) {
                    directives.push_str(" @required");
                }
                if list && rng.gen_bool(p.p_distinct) {
                    directives.push_str(" @distinct");
                }
                if target == t && rng.gen_bool(p.p_noloops) {
                    directives.push_str(" @noLoops");
                }
                if rng.gen_bool(p.p_unique_for_target) {
                    directives.push_str(" @uniqueForTarget");
                }
                if rng.gen_bool(p.p_required_for_target) {
                    directives.push_str(" @requiredForTarget");
                }
                // Edge properties on some relationships.
                let args = if rng.gen_bool(0.3) {
                    "(weight: Float! note: String)"
                } else {
                    ""
                };
                out.push_str(&format!("    r{t}_{r}{args}: {ty}{directives}\n"));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// A fixed, hand-designed schema used across examples and benchmarks: a
/// small social-network catalogue exercising every §3 feature.
pub fn social_schema() -> &'static str {
    r#"
    type User @key(fields: ["id"]) {
        id: ID! @required
        login: String! @required
        nicknames: [String!]!
        follows(since: Int! weight: Float): [User] @distinct @noLoops
        authored: [Post]
    }
    type Post @key(fields: ["id"]) {
        id: ID! @required
        title: String! @required
        tags: [String!]!
        inThread: Thread
    }
    type Thread {
        topic: String! @required
        posts: [Post] @distinct
    }
    "#
}

/// A second fixed schema combining Examples 3.6 and 3.8: it carries the
/// target-side directives (`@uniqueForTarget`, `@requiredForTarget`) and a
/// `@required` relationship that [`social_schema`] deliberately avoids, so
/// the two together give every defect class of `crate::inject` a site.
pub fn library_schema() -> &'static str {
    r#"
    type Author {
        name: String! @required
        favoriteBook: Book
        relatedAuthor: [Author] @distinct @noLoops
    }
    type Book @key(fields: ["isbn"]) {
        isbn: ID! @required
        title: String! @required
        author(role: String!): [Author] @required @distinct
    }
    type BookSeries {
        seriesTitle: String! @required
        contains: [Book] @uniqueForTarget
    }
    type Publisher {
        name: String! @required
        published: [Book] @uniqueForTarget @requiredForTarget
    }
    "#
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_schema::PgSchema;

    #[test]
    fn generated_schemas_parse_build_and_are_consistent() {
        for seed in 0..20 {
            let sdl = SchemaGen::new(SchemaGenParams {
                seed,
                ..Default::default()
            })
            .generate();
            let schema =
                PgSchema::parse(&sdl).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{sdl}"));
            assert_eq!(schema.schema().object_types().count(), 8);
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let p = SchemaGenParams::default();
        let a = SchemaGen::new(p).generate();
        let b = SchemaGen::new(p).generate();
        assert_eq!(a, b);
        let c = SchemaGen::new(SchemaGenParams { seed: 1, ..p }).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn benchmarkable_schemas_have_no_target_obligations() {
        let sdl = SchemaGen::new(SchemaGenParams::benchmarkable(6, 3)).generate();
        assert!(!sdl.contains("uniqueForTarget"));
        assert!(!sdl.contains("requiredForTarget"));
        let schema = PgSchema::parse(&sdl).unwrap();
        assert!(schema
            .constraint_sites()
            .iter()
            .all(|s| !s.rel.unique_for_target && !s.rel.required_for_target));
    }

    #[test]
    fn size_parameters_are_respected() {
        let sdl = SchemaGen::new(SchemaGenParams {
            num_types: 3,
            attrs_per_type: 2,
            rels_per_type: 1,
            ..Default::default()
        })
        .generate();
        let schema = PgSchema::parse(&sdl).unwrap();
        for t in schema.schema().object_types().collect::<Vec<_>>() {
            assert_eq!(schema.attributes(t).len(), 2);
            assert_eq!(schema.relationships(t).len(), 1);
        }
    }

    #[test]
    fn social_schema_is_valid() {
        let schema = PgSchema::parse(social_schema()).unwrap();
        assert_eq!(schema.schema().object_types().count(), 3);
        assert_eq!(schema.keys().len(), 2);
    }
}
