//! The GraphQL lexical analyser (spec §2.1, June 2018 edition).
//!
//! Whitespace, line terminators, commas, comments and a leading BOM are
//! *ignored tokens*; everything else becomes a [`Token`]. The lexer is a
//! plain hand-rolled scanner over the source `char` stream — GraphQL's
//! lexical grammar is regular, so no lookahead beyond one character is
//! needed except for `...` and the `"""` fence.

use crate::error::{ParseError, ParseErrorKind};
use crate::token::{Pos, Span, Token, TokenKind};

/// Streaming tokenizer. Usually used through [`crate::parse`], but exposed
/// for tooling (syntax highlighting, token-level tests).
pub struct Lexer<'a> {
    src: &'a str,
    chars: std::str::CharIndices<'a>,
    /// One-char lookahead: (byte offset, char).
    peeked: Option<(usize, char)>,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        let mut lx = Lexer {
            src,
            chars: src.char_indices(),
            peeked: None,
            line: 1,
            column: 1,
        };
        lx.peeked = lx.chars.next();
        // Skip a UTF-8 byte-order mark if present (an ignored token).
        if let Some((_, '\u{FEFF}')) = lx.peeked {
            lx.bump();
        }
        lx
    }

    /// Tokenises the whole input, ending with an `Eof` token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            column: self.column,
            offset: self.peeked.map_or(self.src.len(), |(o, _)| o),
        }
    }

    fn peek(&self) -> Option<char> {
        self.peeked.map(|(_, c)| c)
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next().map(|(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.peeked?;
        self.peeked = self.chars.next();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_ignored(&mut self) {
        loop {
            match self.peek() {
                Some(' ' | '\t' | ',' | '\n') => {
                    self.bump();
                }
                Some('\r') => {
                    self.bump();
                    // CRLF counts as one line terminator; '\n' handling in
                    // bump() already advanced the line if it follows.
                    if self.peek() != Some('\n') {
                        self.line += 1;
                        self.column = 1;
                    }
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' || c == '\r' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    /// Produces the next significant token.
    pub fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_ignored();
        let start = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::at(start),
            });
        };
        let kind = match c {
            '!' => self.punct(TokenKind::Bang),
            '$' => self.punct(TokenKind::Dollar),
            '&' => self.punct(TokenKind::Amp),
            '(' => self.punct(TokenKind::ParenL),
            ')' => self.punct(TokenKind::ParenR),
            ':' => self.punct(TokenKind::Colon),
            '=' => self.punct(TokenKind::Eq),
            '@' => self.punct(TokenKind::At),
            '[' => self.punct(TokenKind::BracketL),
            ']' => self.punct(TokenKind::BracketR),
            '{' => self.punct(TokenKind::BraceL),
            '}' => self.punct(TokenKind::BraceR),
            '|' => self.punct(TokenKind::Pipe),
            '.' => {
                self.bump();
                if self.peek() == Some('.') && self.peek2() == Some('.') {
                    self.bump();
                    self.bump();
                    Ok(TokenKind::Spread)
                } else {
                    Err(ParseError::new(
                        ParseErrorKind::UnexpectedCharacter('.'),
                        start,
                    ))
                }
            }
            '"' => self.string(start),
            c if c == '_' || c.is_ascii_alphabetic() => Ok(self.name()),
            c if c == '-' || c.is_ascii_digit() => self.number(start),
            other => {
                self.bump();
                Err(ParseError::new(
                    ParseErrorKind::UnexpectedCharacter(other),
                    start,
                ))
            }
        }?;
        Ok(Token {
            kind,
            span: Span {
                start,
                end: self.pos(),
            },
        })
    }

    fn punct(&mut self, kind: TokenKind) -> Result<TokenKind, ParseError> {
        self.bump();
        Ok(kind)
    }

    fn name(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_ascii_alphanumeric() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Name(s)
    }

    fn number(&mut self, start: Pos) -> Result<TokenKind, ParseError> {
        let mut text = String::new();
        if self.peek() == Some('-') {
            text.push('-');
            self.bump();
        }
        // IntegerPart: 0 | NonZeroDigit Digit*
        match self.peek() {
            Some('0') => {
                text.push('0');
                self.bump();
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.bad_number(text, start));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            _ => return Err(self.bad_number(text, start)),
        }
        let mut is_float = false;
        if self.peek() == Some('.') {
            // Only a FractionalPart if a digit follows; `1.` is malformed,
            // and `1...` would be a spread after an int (not valid SDL
            // anyway, but the lexer must not eat the dots).
            if matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else {
                text.push('.');
                self.bump();
                return Err(self.bad_number(text, start));
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            text.push('e');
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                text.push(self.bump().unwrap());
            }
            let mut any = false;
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    any = true;
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            if !any {
                return Err(self.bad_number(text, start));
            }
        }
        // Spec: a number may not be immediately followed by a name start.
        if matches!(self.peek(), Some(c) if c == '_' || c.is_ascii_alphabetic()) {
            text.push(self.peek().unwrap());
            return Err(self.bad_number(text, start));
        }
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| self.bad_number(text.clone(), start))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| self.bad_number(text.clone(), start))
        }
    }

    fn bad_number(&self, text: String, start: Pos) -> ParseError {
        ParseError::new(ParseErrorKind::BadNumber(text), start)
    }

    fn string(&mut self, start: Pos) -> Result<TokenKind, ParseError> {
        self.bump(); // opening quote
        if self.peek() == Some('"') {
            self.bump();
            if self.peek() == Some('"') {
                self.bump();
                return self.block_string(start);
            }
            // Empty string "".
            return Ok(TokenKind::Str {
                value: String::new(),
                block: false,
            });
        }
        let mut value = String::new();
        loop {
            match self.peek() {
                None | Some('\n') | Some('\r') => {
                    return Err(ParseError::new(ParseErrorKind::UnterminatedString, start));
                }
                Some('"') => {
                    self.bump();
                    return Ok(TokenKind::Str {
                        value,
                        block: false,
                    });
                }
                Some('\\') => {
                    self.bump();
                    let esc = self.bump().ok_or_else(|| {
                        ParseError::new(ParseErrorKind::UnterminatedString, start)
                    })?;
                    match esc {
                        '"' => value.push('"'),
                        '\\' => value.push('\\'),
                        '/' => value.push('/'),
                        'b' => value.push('\u{0008}'),
                        'f' => value.push('\u{000C}'),
                        'n' => value.push('\n'),
                        'r' => value.push('\r'),
                        't' => value.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            let mut digits = String::new();
                            for _ in 0..4 {
                                let d = self.bump().ok_or_else(|| {
                                    ParseError::new(ParseErrorKind::UnterminatedString, start)
                                })?;
                                digits.push(d);
                                code = code * 16
                                    + d.to_digit(16).ok_or_else(|| {
                                        ParseError::new(
                                            ParseErrorKind::BadEscape(format!("\\u{digits}")),
                                            start,
                                        )
                                    })?;
                            }
                            value.push(char::from_u32(code).ok_or_else(|| {
                                ParseError::new(
                                    ParseErrorKind::BadEscape(format!("\\u{digits}")),
                                    start,
                                )
                            })?);
                        }
                        other => {
                            return Err(ParseError::new(
                                ParseErrorKind::BadEscape(format!("\\{other}")),
                                start,
                            ));
                        }
                    }
                }
                Some(c) => {
                    value.push(c);
                    self.bump();
                }
            }
        }
    }

    fn block_string(&mut self, start: Pos) -> Result<TokenKind, ParseError> {
        // We are just past the opening `"""`.
        let mut raw = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(ParseError::new(ParseErrorKind::UnterminatedString, start));
                }
                Some('"') => {
                    // Possible fence.
                    if self.peek2() == Some('"') {
                        let mut it = self.chars.clone();
                        it.next();
                        if it.next().map(|(_, c)| c) == Some('"') {
                            self.bump();
                            self.bump();
                            self.bump();
                            return Ok(TokenKind::Str {
                                value: dedent_block(&raw),
                                block: true,
                            });
                        }
                    }
                    raw.push('"');
                    self.bump();
                }
                Some('\\') => {
                    // Only `\"""` is an escape in block strings.
                    if self.peek2() == Some('"') {
                        let mut it = self.chars.clone();
                        it.next();
                        let third = it.next().map(|(_, c)| c);
                        let fourth = it.next().map(|(_, c)| c);
                        if third == Some('"') && fourth == Some('"') {
                            self.bump();
                            self.bump();
                            self.bump();
                            self.bump();
                            raw.push_str("\"\"\"");
                            continue;
                        }
                    }
                    raw.push('\\');
                    self.bump();
                }
                Some(c) => {
                    raw.push(c);
                    self.bump();
                }
            }
        }
    }
}

/// Implements the spec's `BlockStringValue` algorithm: strip the common
/// indentation of all lines but the first, then drop leading/trailing blank
/// lines.
fn dedent_block(raw: &str) -> String {
    let lines: Vec<&str> = raw
        .split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .collect();
    let mut common: Option<usize> = None;
    for line in lines.iter().skip(1) {
        let indent = line.len() - line.trim_start_matches([' ', '\t']).len();
        if indent < line.len() {
            common = Some(common.map_or(indent, |c| c.min(indent)));
        }
    }
    let mut out: Vec<String> = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if i == 0 {
            out.push((*line).to_owned());
        } else {
            let cut = common.unwrap_or(0).min(line.len());
            out.push(line[cut..].to_owned());
        }
    }
    while out.first().is_some_and(|l| l.trim().is_empty()) {
        out.remove(0);
    }
    while out.last().is_some_and(|l| l.trim().is_empty()) {
        out.pop();
    }
    out.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn punctuators() {
        let ks = kinds("! $ & ( ) ... : = @ [ ] { } |");
        assert_eq!(
            ks,
            vec![
                TokenKind::Bang,
                TokenKind::Dollar,
                TokenKind::Amp,
                TokenKind::ParenL,
                TokenKind::ParenR,
                TokenKind::Spread,
                TokenKind::Colon,
                TokenKind::Eq,
                TokenKind::At,
                TokenKind::BracketL,
                TokenKind::BracketR,
                TokenKind::BraceL,
                TokenKind::BraceR,
                TokenKind::Pipe,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn names_and_keywords_are_names() {
        assert_eq!(
            kinds("type User implements Node"),
            vec![
                TokenKind::Name("type".into()),
                TokenKind::Name("User".into()),
                TokenKind::Name("implements".into()),
                TokenKind::Name("Node".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn commas_and_comments_are_ignored() {
        assert_eq!(
            kinds("a, b # trailing comment\n , ,c"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::Name("b".into()),
                TokenKind::Name("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn bom_is_skipped() {
        assert_eq!(
            kinds("\u{FEFF}x"),
            vec![TokenKind::Name("x".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn integers() {
        assert_eq!(
            kinds("0 -0 42 -17"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Int(-17),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn leading_zero_is_rejected() {
        assert!(matches!(
            Lexer::new("017").tokenize(),
            Err(ParseError {
                kind: ParseErrorKind::BadNumber(_),
                ..
            })
        ));
    }

    #[test]
    fn floats() {
        assert_eq!(
            kinds("1.5 -0.25 2e3 1.5e-2"),
            vec![
                TokenKind::Float(1.5),
                TokenKind::Float(-0.25),
                TokenKind::Float(2000.0),
                TokenKind::Float(0.015),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dangling_dot_or_exponent_is_rejected() {
        assert!(Lexer::new("1.").tokenize().is_err());
        assert!(Lexer::new("1e").tokenize().is_err());
        assert!(Lexer::new("1eX").tokenize().is_err());
    }

    #[test]
    fn number_followed_by_name_is_rejected() {
        assert!(Lexer::new("1x").tokenize().is_err());
    }

    #[test]
    fn simple_strings() {
        assert_eq!(
            kinds(r#""hello" "" "a\"b""#),
            vec![
                TokenKind::Str {
                    value: "hello".into(),
                    block: false
                },
                TokenKind::Str {
                    value: "".into(),
                    block: false
                },
                TokenKind::Str {
                    value: "a\"b".into(),
                    block: false
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""\t\n\\A""#),
            vec![
                TokenKind::Str {
                    value: "\t\n\\A".into(),
                    block: false
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn bad_escape_is_rejected() {
        assert!(matches!(
            Lexer::new(r#""\q""#).tokenize(),
            Err(ParseError {
                kind: ParseErrorKind::BadEscape(_),
                ..
            })
        ));
        assert!(Lexer::new(r#""\uZZZZ""#).tokenize().is_err());
    }

    #[test]
    fn newline_in_string_is_rejected() {
        assert!(matches!(
            Lexer::new("\"ab\ncd\"").tokenize(),
            Err(ParseError {
                kind: ParseErrorKind::UnterminatedString,
                ..
            })
        ));
    }

    #[test]
    fn block_strings_dedent() {
        let src = "\"\"\"\n    Hello,\n      World!\n\n    Yours,\n      GraphQL.\n  \"\"\"";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Str {
                    value: "Hello,\n  World!\n\nYours,\n  GraphQL.".into(),
                    block: true
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn block_string_triple_quote_escape() {
        let src = r#""""contains \""" fence""""#;
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Str {
                    value: "contains \"\"\" fence".into(),
                    block: true
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = Lexer::new("a\n  bb").tokenize().unwrap();
        assert_eq!(toks[0].span.start.line, 1);
        assert_eq!(toks[0].span.start.column, 1);
        assert_eq!(toks[1].span.start.line, 2);
        assert_eq!(toks[1].span.start.column, 3);
    }

    #[test]
    fn crlf_advances_lines() {
        let toks = Lexer::new("a\r\nb\rc").tokenize().unwrap();
        assert_eq!(toks[1].span.start.line, 2);
        assert_eq!(toks[2].span.start.line, 3);
    }

    #[test]
    fn unknown_character_is_reported_with_position() {
        let err = Lexer::new("a ^").tokenize().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedCharacter('^'));
        assert_eq!(err.pos.column, 3);
    }

    #[test]
    fn lone_dots_are_rejected() {
        assert!(Lexer::new("..").tokenize().is_err());
        assert!(Lexer::new(".").tokenize().is_err());
    }
}
