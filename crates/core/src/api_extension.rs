//! Extending an SDL-based Property Graph schema into a GraphQL *API*
//! schema — the "natural next step" §3.6 of the paper sketches:
//!
//! > "From a technical perspective, the only thing that needs to be added
//! > … is the query type, and perhaps also the mutation type. … to enable
//! > bidirectional traversal … the schema of the GraphQL API has to
//! > explicitly mention potential edges also from the perspective of the
//! > target nodes."
//!
//! [`extend_to_api_schema`] takes a parsed PG-schema document and emits a
//! complete GraphQL API schema document:
//!
//! * a `Query` root with, per object type `T`, a collection field
//!   `allT: [T]` and — when `T` carries a single-field `@key` over a
//!   scalar — a lookup field `t(key: K!): T`;
//! * inverse relationship fields on every possible *target* type: for a
//!   relationship definition `f: … ` on source type `S` whose base covers
//!   target type `T`, the field `rev_f_from_S: [S]` is added to `T`
//!   (names are disambiguated by source type, since several source types
//!   may declare the same edge label — Example 3.11);
//! * optionally a `Mutation` root with `createT` stubs;
//! * a `schema { query: … }` block.
//!
//! The output is an ordinary [`gql_sdl::ast::Document`]: printable,
//! re-parseable, and a *consistent* GraphQL schema per Definition 4.5
//! (tested). The PG-schema directives are left in place so the API schema
//! still documents the integrity constraints.

use gql_sdl::ast::{
    Definition, Document, FieldDef, InputValueDef, ObjectTypeDef, OperationKind, SchemaDef, Type,
    TypeDef,
};
use gql_sdl::{Pos, Span};

use crate::pgschema::{PgSchema, PgSchemaError};

/// An error extending a PG schema into an API schema.
///
/// Replaces the stringly-typed error of earlier revisions; the
/// [`Display`](std::fmt::Display) renderings are unchanged, so code that
/// matched on the message text keeps working via `to_string()`.
#[derive(Debug)]
#[non_exhaustive]
pub enum ApiExtensionError {
    /// The input document does not build into a consistent PG schema
    /// (the extension is only defined over consistent schemas,
    /// Definition 4.5).
    InvalidSchema(PgSchemaError),
    /// The document already defines the named root operation type; the
    /// extension would clash with it.
    RootTypeExists(&'static str),
}

impl std::fmt::Display for ApiExtensionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiExtensionError::InvalidSchema(e) => write!(f, "{e}"),
            ApiExtensionError::RootTypeExists(name) => {
                write!(f, "document already defines a {name} root type")
            }
        }
    }
}

impl std::error::Error for ApiExtensionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApiExtensionError::InvalidSchema(e) => Some(e),
            ApiExtensionError::RootTypeExists(_) => None,
        }
    }
}

impl From<PgSchemaError> for ApiExtensionError {
    fn from(e: PgSchemaError) -> Self {
        ApiExtensionError::InvalidSchema(e)
    }
}

/// Options for [`extend_to_api_schema`].
#[derive(Debug, Clone)]
pub struct ApiExtensionOptions {
    /// Also generate a `Mutation` type with `createT` stubs.
    pub include_mutation: bool,
    /// Prefix for inverse relationship fields (default `rev_`).
    pub inverse_prefix: String,
}

impl Default for ApiExtensionOptions {
    fn default() -> Self {
        ApiExtensionOptions {
            include_mutation: false,
            inverse_prefix: "rev_".to_owned(),
        }
    }
}

fn span() -> Span {
    Span::at(Pos::start())
}

fn lower_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Produces the extended API document. Fails with
/// [`ApiExtensionError::InvalidSchema`] if the input document does not
/// build into a consistent PG schema, or
/// [`ApiExtensionError::RootTypeExists`] if a type named
/// `Query`/`Mutation` already exists.
pub fn extend_to_api_schema(
    doc: &Document,
    options: &ApiExtensionOptions,
) -> Result<Document, ApiExtensionError> {
    let schema = PgSchema::from_document(doc)?;
    let s = schema.schema();
    if doc.type_def("Query").is_some() {
        return Err(ApiExtensionError::RootTypeExists("Query"));
    }
    if doc.type_def("Mutation").is_some() {
        return Err(ApiExtensionError::RootTypeExists("Mutation"));
    }

    let mut out = doc.clone();

    // Inverse fields: group by (target object type) the list of (source
    // type name, field name) pairs whose relationship can reach it.
    for def in &mut out.definitions {
        let Definition::Type(TypeDef::Object(obj)) = def else {
            continue;
        };
        let Some(target_id) = s.type_id(&obj.name) else {
            continue;
        };
        let mut inverse_fields = Vec::new();
        for src in s.object_types().collect::<Vec<_>>() {
            for rel in schema.relationships(src) {
                if !schema.label_subtype_wrapped(&obj.name, &rel.ty) {
                    continue;
                }
                let src_name = s.type_name(src);
                inverse_fields.push(FieldDef {
                    description: Some(format!(
                        "Incoming `{}` edges from {} nodes (generated inverse field).",
                        rel.name, src_name
                    )),
                    name: format!("{}{}_from_{}", options.inverse_prefix, rel.name, src_name),
                    args: Vec::new(),
                    ty: Type::List(Box::new(Type::Named(src_name.to_owned()))),
                    directives: Vec::new(),
                    span: span(),
                });
            }
        }
        // Keep deterministic order and avoid duplicates with existing
        // fields.
        inverse_fields.sort_by(|a, b| a.name.cmp(&b.name));
        inverse_fields.retain(|f| obj.fields.iter().all(|g| g.name != f.name));
        obj.fields.extend(inverse_fields);
        let _ = target_id;
    }

    // Query root.
    let mut query_fields = Vec::new();
    for t in s.object_types().collect::<Vec<_>>() {
        let name = s.type_name(t).to_owned();
        query_fields.push(FieldDef {
            description: Some(format!("All nodes labelled {name}.")),
            name: format!("all{name}"),
            args: Vec::new(),
            ty: Type::List(Box::new(Type::Named(name.clone()))),
            directives: Vec::new(),
            span: span(),
        });
        // Key-based lookup for single-field scalar keys.
        if let Some(key) = schema
            .keys()
            .iter()
            .find(|k| k.site == t && k.fields.len() == 1)
        {
            if let Some(attr) = schema.attribute(&name, &key.fields[0]) {
                let key_ty = s.type_name(attr.ty.base).to_owned();
                query_fields.push(FieldDef {
                    description: Some(format!("Lookup one {name} by its key.")),
                    name: lower_first(&name),
                    args: vec![InputValueDef {
                        description: None,
                        name: key.fields[0].clone(),
                        ty: Type::NonNull(Box::new(Type::Named(key_ty))),
                        default: None,
                        directives: Vec::new(),
                        span: span(),
                    }],
                    ty: Type::Named(name.clone()),
                    directives: Vec::new(),
                    span: span(),
                });
            }
        }
    }
    out.definitions
        .push(Definition::Type(TypeDef::Object(ObjectTypeDef {
            description: Some("Generated root query type (§3.6).".to_owned()),
            name: "Query".to_owned(),
            implements: Vec::new(),
            directives: Vec::new(),
            fields: query_fields,
            span: span(),
        })));

    let mut operations = vec![(OperationKind::Query, "Query".to_owned())];
    if options.include_mutation {
        let mutation_fields = s
            .object_types()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| {
                let name = s.type_name(t).to_owned();
                FieldDef {
                    description: Some(format!("Create a new {name} node.")),
                    name: format!("create{name}"),
                    args: Vec::new(),
                    ty: Type::Named(name),
                    directives: Vec::new(),
                    span: span(),
                }
            })
            .collect();
        out.definitions
            .push(Definition::Type(TypeDef::Object(ObjectTypeDef {
                description: Some("Generated root mutation type (§3.6).".to_owned()),
                name: "Mutation".to_owned(),
                implements: Vec::new(),
                directives: Vec::new(),
                fields: mutation_fields,
                span: span(),
            })));
        operations.push((OperationKind::Mutation, "Mutation".to_owned()));
    }
    out.definitions.push(Definition::Schema(SchemaDef {
        directives: Vec::new(),
        operations,
        span: span(),
    }));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_sdl::{parse, print_document};

    fn extend(src: &str, options: &ApiExtensionOptions) -> Document {
        extend_to_api_schema(&parse(src).unwrap(), options).unwrap()
    }

    const SOCIAL: &str = r#"
        type User @key(fields: ["id"]) {
            id: ID! @required
            login: String! @required
            follows: [User] @distinct @noLoops
        }
        type Post { title: String! author: User }
    "#;

    #[test]
    fn adds_query_root_and_schema_block() {
        let doc = extend(SOCIAL, &ApiExtensionOptions::default());
        let query = doc.object_types().find(|o| o.name == "Query").unwrap();
        let names: Vec<&str> = query.fields.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"allUser"));
        assert!(names.contains(&"allPost"));
        assert!(names.contains(&"user")); // key lookup
        assert!(!names.contains(&"post")); // Post has no key
        assert!(matches!(
            doc.definitions.last(),
            Some(Definition::Schema(_))
        ));
    }

    #[test]
    fn adds_inverse_fields_for_bidirectional_traversal() {
        let doc = extend(SOCIAL, &ApiExtensionOptions::default());
        let user = doc.object_types().find(|o| o.name == "User").unwrap();
        let names: Vec<&str> = user.fields.iter().map(|f| f.name.as_str()).collect();
        // Incoming follows edges (from Users) and author edges (from Posts).
        assert!(names.contains(&"rev_follows_from_User"), "{names:?}");
        assert!(names.contains(&"rev_author_from_Post"), "{names:?}");
    }

    #[test]
    fn example_3_11_gets_one_inverse_per_source_type() {
        let doc = extend(
            r#"
            type Person { name: String! }
            type Car { brand: String! owner: Person }
            type Motorcycle { brand: String! owner: Person }
            "#,
            &ApiExtensionOptions::default(),
        );
        let person = doc.object_types().find(|o| o.name == "Person").unwrap();
        let names: Vec<&str> = person.fields.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"rev_owner_from_Car"));
        assert!(names.contains(&"rev_owner_from_Motorcycle"));
    }

    #[test]
    fn interface_and_union_targets_fan_out_to_members() {
        let doc = extend(
            r#"
            type Person { favoriteFood: Food }
            union Food = Pizza | Pasta
            type Pizza { n: Int }
            type Pasta { n: Int }
            "#,
            &ApiExtensionOptions::default(),
        );
        for ty in ["Pizza", "Pasta"] {
            let o = doc.object_types().find(|o| o.name == ty).unwrap();
            assert!(
                o.fields
                    .iter()
                    .any(|f| f.name == "rev_favoriteFood_from_Person"),
                "{ty} lacks inverse field"
            );
        }
    }

    #[test]
    fn output_is_a_consistent_schema_and_roundtrips() {
        let doc = extend(
            SOCIAL,
            &ApiExtensionOptions {
                include_mutation: true,
                ..Default::default()
            },
        );
        let printed = print_document(&doc);
        let reparsed = parse(&printed).expect("extended schema parses");
        let (schema, diags) = gql_schema::build_schema_with_diagnostics(&reparsed);
        let schema = schema.expect("extended schema builds");
        assert!(gql_schema::consistency::check(&schema).is_empty());
        // Only the schema-block warning is expected.
        assert!(diags
            .iter()
            .all(|d| d.severity == gql_schema::Severity::Warning));
        assert!(printed.contains("mutation: Mutation"));
    }

    #[test]
    fn existing_roots_are_rejected() {
        let err = extend_to_api_schema(
            &parse("type Query { x: Int }").unwrap(),
            &ApiExtensionOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ApiExtensionError::RootTypeExists("Query")));
        assert!(err.to_string().contains("already defines"));
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn inconsistent_input_is_rejected() {
        let err = extend_to_api_schema(
            &parse("interface I { f: Int } type T implements I { g: Int }").unwrap(),
            &ApiExtensionOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ApiExtensionError::InvalidSchema(_)));
        assert!(err.to_string().contains("inconsistent"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
