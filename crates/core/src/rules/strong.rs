//! Kernels for strong satisfaction — rules SS1–SS4 (Definition 5.3).
//!
//! Like the weak kernels, these run entirely over interned symbols; the
//! per-label "is this justified?" questions are precompiled into
//! [`SymSchema`](super::symschema::SymSchema) rows.

use crate::report::{Rule, Violation};

use super::{Scope, Sink};

/// SS1: every node label is an object type of the schema — one scan over
/// the scope's nodes.
pub(crate) fn ss1(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::SS1, |sink| {
        let ss = scope.ss;
        for n in scope.nodes() {
            if sink.at_limit() {
                return;
            }
            sink.node_visited();
            if !ss.row(n.label).is_object {
                sink.push(Violation::UnjustifiedNode {
                    node: n.id,
                    label: scope.syms.resolve(n.label).to_owned(),
                });
            }
        }
    });
}

/// SS2: every node property is backed by an attribute definition — one
/// scan over the scope's nodes.
pub(crate) fn ss2(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::SS2, |sink| {
        let ss = scope.ss;
        for n in scope.nodes() {
            if sink.at_limit() {
                return;
            }
            sink.node_visited();
            let row = ss.row(n.label);
            for (prop, _) in n.props.iter() {
                if row.attr(prop).is_none() {
                    sink.push(Violation::UnjustifiedNodeProperty {
                        node: n.id,
                        prop: scope.syms.resolve(prop).to_owned(),
                    });
                }
            }
        }
    });
}

/// SS3: every edge property is backed by a relationship argument — one
/// scan over the scope's edges.
pub(crate) fn ss3(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::SS3, |sink| {
        let ss = scope.ss;
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            let rel = ss.relationship(scope.label_sym(e.src), e.label);
            for (prop, _) in e.props.iter() {
                let justified = rel.is_some_and(|rd| rd.edge_prop(prop).is_some());
                if !justified {
                    sink.push(Violation::UnjustifiedEdgeProperty {
                        edge: e.id,
                        prop: scope.syms.resolve(prop).to_owned(),
                    });
                }
            }
        }
    });
}

/// SS4: every edge is backed by a relationship definition — one scan
/// over the scope's edges.
pub(crate) fn ss4(scope: &Scope<'_, '_>, sink: &mut Sink<'_>) {
    sink.rule(Rule::SS4, |sink| {
        let ss = scope.ss;
        for e in scope.edges() {
            if sink.at_limit() {
                return;
            }
            sink.edge_visited();
            let src_label = scope.label_sym(e.src);
            if ss.relationship(src_label, e.label).is_none() {
                sink.push(Violation::UnjustifiedEdge {
                    edge: e.id,
                    label: scope.syms.resolve(e.label).to_owned(),
                    source_label: src_label
                        .map_or_else(String::new, |l| scope.syms.resolve(l).to_owned()),
                });
            }
        }
    });
}
