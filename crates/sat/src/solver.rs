//! A DPLL solver: unit propagation, pure-literal elimination, and
//! branching on the most frequent unassigned variable.
//!
//! Complete and deterministic. Intended for the instance sizes of the
//! Theorem 2 reduction experiments (tens of variables), where it is an
//! adequate and dependency-free oracle.

use crate::cnf::{Cnf, Lit};

/// Statistics of one solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals assigned by unit propagation.
    pub propagations: u64,
    /// Number of conflicts (backtracks).
    pub conflicts: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unset,
    True,
    False,
}

struct Dpll<'a> {
    cnf: &'a Cnf,
    assign: Vec<Assign>,
    stats: SolveStats,
}

impl Dpll<'_> {
    fn lit_value(&self, l: Lit) -> Assign {
        match self.assign[l.var()] {
            Assign::Unset => Assign::Unset,
            Assign::True => {
                if l.is_neg() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
            Assign::False => {
                if l.is_neg() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
        }
    }

    fn set(&mut self, l: Lit) {
        self.assign[l.var()] = if l.is_neg() {
            Assign::False
        } else {
            Assign::True
        };
    }

    /// Applies unit propagation and pure-literal elimination to a fixpoint.
    /// Returns the literals assigned (for undo) or `None` on conflict.
    fn simplify(&mut self) -> Option<Vec<usize>> {
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut changed = false;
            // Unit propagation.
            for clause in self.cnf.clauses() {
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut open = 0usize;
                for &l in clause {
                    match self.lit_value(l) {
                        Assign::True => {
                            satisfied = true;
                            break;
                        }
                        Assign::False => {}
                        Assign::Unset => {
                            open += 1;
                            unassigned = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match open {
                    0 => {
                        self.stats.conflicts += 1;
                        for v in trail {
                            self.assign[v] = Assign::Unset;
                        }
                        return None;
                    }
                    1 => {
                        let l = unassigned.expect("open == 1");
                        self.set(l);
                        trail.push(l.var());
                        self.stats.propagations += 1;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if changed {
                continue;
            }
            // Pure-literal elimination: a variable occurring with only one
            // polarity in non-satisfied clauses can be fixed.
            let n = self.cnf.num_vars();
            let mut pos = vec![false; n];
            let mut neg = vec![false; n];
            for clause in self.cnf.clauses() {
                if clause.iter().any(|&l| self.lit_value(l) == Assign::True) {
                    continue;
                }
                for &l in clause {
                    if self.lit_value(l) == Assign::Unset {
                        if l.is_neg() {
                            neg[l.var()] = true;
                        } else {
                            pos[l.var()] = true;
                        }
                    }
                }
            }
            for v in 0..n {
                if self.assign[v] == Assign::Unset && (pos[v] ^ neg[v]) {
                    let l = if pos[v] { Lit::pos(v) } else { Lit::neg(v) };
                    self.set(l);
                    trail.push(v);
                    self.stats.propagations += 1;
                    changed = true;
                }
            }
            if !changed {
                return Some(trail);
            }
        }
    }

    fn all_satisfied(&self) -> bool {
        self.cnf
            .clauses()
            .iter()
            .all(|c| c.iter().any(|&l| self.lit_value(l) == Assign::True))
    }

    /// Picks the unassigned variable occurring most often in open clauses.
    fn pick_branch_var(&self) -> Option<usize> {
        let mut counts = vec![0u32; self.cnf.num_vars()];
        for clause in self.cnf.clauses() {
            if clause.iter().any(|&l| self.lit_value(l) == Assign::True) {
                continue;
            }
            for &l in clause {
                if self.lit_value(l) == Assign::Unset {
                    counts[l.var()] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(v, &c)| c > 0 && self.assign[v] == Assign::Unset)
            .max_by_key(|&(_, &c)| c)
            .map(|(v, _)| v)
    }

    fn search(&mut self) -> bool {
        let Some(trail) = self.simplify() else {
            return false;
        };
        if self.all_satisfied() {
            return true;
        }
        let Some(v) = self.pick_branch_var() else {
            // No open clauses have unassigned vars, yet not all satisfied:
            // conflict (shouldn't happen after simplify, but be safe).
            for t in trail {
                self.assign[t] = Assign::Unset;
            }
            return false;
        };
        for value in [Assign::True, Assign::False] {
            self.stats.decisions += 1;
            self.assign[v] = value;
            if self.search() {
                return true;
            }
            self.assign[v] = Assign::Unset;
        }
        for t in trail {
            self.assign[t] = Assign::Unset;
        }
        false
    }
}

/// Decides satisfiability; returns a model if satisfiable.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    solve_with_stats(cnf).0
}

/// Like [`solve`], also returning run statistics.
pub fn solve_with_stats(cnf: &Cnf) -> (Option<Vec<bool>>, SolveStats) {
    let mut dpll = Dpll {
        cnf,
        assign: vec![Assign::Unset; cnf.num_vars()],
        stats: SolveStats::default(),
    };
    if dpll.search() {
        let model: Vec<bool> = dpll
            .assign
            .iter()
            .map(|a| matches!(a, Assign::True))
            .collect();
        debug_assert!(cnf.eval(&model));
        (Some(model), dpll.stats)
    } else {
        (None, dpll.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(lits: &[i32]) -> Vec<Lit> {
        lits.iter()
            .map(|&v| {
                let var = v.unsigned_abs() as usize - 1;
                if v > 0 {
                    Lit::pos(var)
                } else {
                    Lit::neg(var)
                }
            })
            .collect()
    }

    fn cnf(num_vars: usize, clauses: &[&[i32]]) -> Cnf {
        let mut c = Cnf::new(num_vars);
        for cl in clauses {
            c.add_clause(clause(cl));
        }
        c
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(solve(&Cnf::new(0)).is_some());
        assert!(solve(&Cnf::new(3)).is_some());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut c = Cnf::new(1);
        c.add_clause([]);
        assert!(solve(&c).is_none());
    }

    #[test]
    fn unit_clauses_propagate() {
        let c = cnf(3, &[&[1], &[-1, 2], &[-2, 3]]);
        let m = solve(&c).unwrap();
        assert_eq!(m, vec![true, true, true]);
    }

    #[test]
    fn simple_unsat_core() {
        let c = cnf(1, &[&[1], &[-1]]);
        assert!(solve(&c).is_none());
    }

    #[test]
    fn paper_theorem_2_example_formula_is_sat() {
        // (A ∨ ¬B ∨ C) ∧ (¬A ∨ ¬C) ∧ (D ∨ B), vars A=1 B=2 C=3 D=4.
        let c = cnf(4, &[&[1, -2, 3], &[-1, -3], &[4, 2]]);
        let m = solve(&c).unwrap();
        assert!(c.eval(&m));
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // p1 in h1, p2 in h1, not both: x1 ∧ x2 ∧ (¬x1 ∨ ¬x2).
        let c = cnf(2, &[&[1], &[2], &[-1, -2]]);
        assert!(solve(&c).is_none());
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Variables x(p,h) = 1 + p*2 + h for p in 0..3, h in 0..2.
        let var = |p: i32, h: i32| 1 + p * 2 + h;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for p in 0..3 {
            clauses.push(vec![var(p, 0), var(p, 1)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    clauses.push(vec![-var(p1, h), -var(p2, h)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let c = cnf(6, &refs);
        assert!(solve(&c).is_none());
    }

    #[test]
    fn models_satisfy_their_formulas() {
        let c = cnf(
            5,
            &[&[1, 2, -3], &[-1, 4], &[3, -4, 5], &[-2, -5], &[2, 3, 4]],
        );
        let (model, stats) = solve_with_stats(&c);
        let m = model.unwrap();
        assert!(c.eval(&m));
        assert!(stats.decisions + stats.propagations > 0);
    }

    #[test]
    fn pure_literal_elimination_solves_without_branching() {
        // All-positive occurrences: solvable purely.
        let c = cnf(3, &[&[1, 2], &[2, 3], &[1, 3]]);
        let (model, stats) = solve_with_stats(&c);
        assert!(model.is_some());
        assert_eq!(stats.decisions, 0);
    }

    #[test]
    fn exhaustive_check_on_all_3var_formulas() {
        // Randomised-ish exhaustiveness: compare DPLL against brute force
        // over a set of small formulas.
        let formulas: Vec<Cnf> = vec![
            cnf(3, &[&[1, 2], &[-1, -2], &[2, 3], &[-3]]),
            cnf(3, &[&[1], &[-1, 2], &[-2, 3], &[-3, -1]]),
            cnf(
                3,
                &[&[1, 2, 3], &[-1, -2, -3], &[1, -2], &[2, -3], &[3, -1]],
            ),
            cnf(2, &[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]),
        ];
        for c in formulas {
            let brute = (0..1u32 << c.num_vars()).any(|bits| {
                let m: Vec<bool> = (0..c.num_vars()).map(|i| bits >> i & 1 == 1).collect();
                c.eval(&m)
            });
            assert_eq!(solve(&c).is_some(), brute, "formula: {c}");
        }
    }
}
